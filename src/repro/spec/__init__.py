"""repro.spec — declarative scenario specs, statically checked.

A scenario spec is a TOML/JSON file describing one simulation setup
(plus optional ``[axes]`` sweeps); this package is its toolchain:

* :mod:`repro.spec.schema` — every knob declared once (type, domain,
  default, Scenario/CLI bindings); pure data, stdlib-only;
* :mod:`repro.spec.compile` — load → normalize → check → compile; an
  invalid spec is rejected with pointed diagnostics *before any
  simulation import*;
* :mod:`repro.spec.constraints` — the C2xx/W3xx cross-parameter rules
  and the :class:`RegistryView` they resolve names against;
* :mod:`repro.spec.lattice` — expand/sample the valid scenario lattice
  with durable content-addressed ids.

The R7xx lint rules (:mod:`repro.lint.rules.spec_integrity`) hold this
schema and the code it describes together; ``docs/scenarios.md`` is
the user-facing guide.

Layering: sits above ``repro.obs`` and the registries; nothing inside
``repro.core``/``matching``/``benefit``/``obs`` may import it
(enforced by lint rule R301).  Keep this module import-light — the
checker must not pull in the simulation stack.
"""

from __future__ import annotations

from repro.spec.compile import (
    CheckResult,
    CompiledStream,
    SpecError,
    check_spec,
    compile_slo,
    compile_spec,
    compile_stream,
    dump_spec,
    load_spec,
    normalize,
)
from repro.spec.constraints import (
    CONSTRAINTS,
    Constraint,
    RegistryView,
    SpecDiagnostic,
    run_constraints,
)
from repro.spec.lattice import (
    DroppedPoint,
    Lattice,
    LatticePoint,
    expand,
    sample,
    scenario_id,
)
from repro.spec.schema import (
    KNOBS,
    SCENARIO_KNOBS,
    SPEC_SCHEMA_VERSION,
    Domain,
    Knob,
    NormalizedSpec,
    cli_flag_map,
    defaults,
    knob_names,
    scenario_field_coverage,
)

__all__ = [
    "CONSTRAINTS",
    "KNOBS",
    "SCENARIO_KNOBS",
    "SPEC_SCHEMA_VERSION",
    "CheckResult",
    "CompiledStream",
    "Constraint",
    "Domain",
    "DroppedPoint",
    "Knob",
    "Lattice",
    "LatticePoint",
    "NormalizedSpec",
    "RegistryView",
    "SpecDiagnostic",
    "SpecError",
    "check_spec",
    "cli_flag_map",
    "compile_slo",
    "compile_spec",
    "compile_stream",
    "defaults",
    "dump_spec",
    "expand",
    "knob_names",
    "load_spec",
    "normalize",
    "run_constraints",
    "sample",
    "scenario_id",
    "scenario_field_coverage",
]
