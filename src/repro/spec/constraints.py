"""Cross-parameter validity rules checked before any compute.

The schema (:mod:`repro.spec.schema`) polices one knob at a time; the
constraints here police *combinations* — the invalid corners of the
scenario lattice that today fail at round 1 of a long run (a typo'd
``solver_kwargs`` key, gold questions with nobody learning from them,
a Jacobi auction on a rectangular market).  Each constraint declares
the knobs it reads in a literal tuple; the R703 lint rule statically
verifies every referenced knob is schema-declared, so the catalogue
can never drift from the schema.

Registry-dependent facts (which solvers exist, what their constructors
accept, which aggregators and resilience profiles are registered) are
snapshot into a :class:`RegistryView` — importing *registries* is
cheap and pulls in no simulation machinery, which is what keeps
``python -m repro spec check`` usable as a pre-compute gate.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.spec.schema import NormalizedSpec

#: Individual fault-rate knobs (``faults.rate`` is the uniform knob).
FAULT_RATE_KNOBS = (
    "faults.no_show_rate",
    "faults.answer_drop_rate",
    "faults.task_cancel_rate",
    "faults.solver_failure_rate",
)

#: Solvers that optimize the *edge-decomposed* objective; exact only
#: for the linear combiner (see ``MutualCombiner.decomposes_over_edges``).
EDGE_DECOMPOSING_SOLVERS = frozenset(
    {
        "flow",
        "auction",
        "budgeted-flow",
        "incremental-flow",
        "online-batch",
        "online-greedy",
        "online-two-phase",
        "pruned-greedy",
        "stable-matching",
    }
)


@dataclass(frozen=True)
class RegistryView:
    """A static snapshot of every runtime registry the checker needs.

    ``solver_params`` maps a solver name to the keyword names its
    constructor accepts (``None`` when it takes ``**kwargs`` and
    nothing can be checked).  Tests substitute hand-built views to
    exercise constraints in isolation.
    """

    solvers: tuple[str, ...]
    aggregators: tuple[str, ...]
    workloads: tuple[str, ...]
    resilience_profiles: tuple[str, ...]
    combiners: tuple[str, ...]
    solver_params: dict[str, frozenset[str] | None] = field(
        default_factory=dict
    )

    @classmethod
    def live(cls) -> "RegistryView":
        """The running process's registries.

        Imports are function-local and registry-only: solvers,
        aggregators, workloads, profiles — no simulation engine, no
        market construction.
        """
        from repro.core.solvers import accepted_solver_kwargs, list_solvers
        from repro.crowd.aggregation import aggregator_names
        from repro.datagen.traces import workload_registry
        from repro.resilience.policy import RESILIENCE_PROFILES
        from repro.types import Combiner

        solvers = tuple(list_solvers())
        return cls(
            solvers=solvers,
            aggregators=aggregator_names(),
            workloads=tuple(sorted(workload_registry())),
            resilience_profiles=tuple(sorted(RESILIENCE_PROFILES)),
            # COVERAGE is set-valued and has no per-edge combiner
            # object (see repro.benefit.mutual.make_combiner).
            combiners=tuple(
                sorted(
                    kind.value
                    for kind in Combiner
                    if kind is not Combiner.COVERAGE
                )
            ),
            solver_params={
                name: accepted_solver_kwargs(name) for name in solvers
            },
        )

    def registry_values(self, registry: str) -> tuple[str, ...]:
        """The name set published under a schema ``Domain.registry``."""
        try:
            return getattr(self, registry)
        except AttributeError:
            raise ValueError(
                f"unknown registry reference {registry!r}"
            ) from None


@dataclass(frozen=True, order=True)
class SpecDiagnostic:
    """One checker finding: ``code [severity] knob: message``."""

    code: str
    knob: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        return f"{self.code} [{self.severity}] {self.knob}: {self.message}"


@dataclass(frozen=True)
class Constraint:
    """One declarative cross-parameter rule.

    ``knobs`` is a *literal* tuple of every knob the predicate reads —
    R703 checks it against the schema, and ``spec expand`` uses it to
    explain which axes participated in a rejection.  ``check`` returns
    a message when violated, ``None`` when satisfied.
    """

    id: str
    knobs: tuple[str, ...]
    summary: str
    check: Callable[[NormalizedSpec, RegistryView], str | None]
    severity: str = "error"

    def evaluate(
        self, spec: NormalizedSpec, view: RegistryView
    ) -> SpecDiagnostic | None:
        message = self.check(spec, view)
        if message is None:
            return None
        return SpecDiagnostic(
            code=self.id,
            knob=self.knobs[0],
            message=message,
            severity=self.severity,
        )


# -- predicates -------------------------------------------------------------


def _gold_needs_estimator(spec: NormalizedSpec, view: RegistryView):
    if not spec.is_set("scenario.gold_fraction"):
        return None
    if spec["estimator.enabled"]:
        return None
    if not float(spec["scenario.gold_fraction"]) > 0:  # type: ignore[arg-type]
        return None
    return (
        "gold_fraction is set but no estimator is enabled — gold "
        "answers would be generated and thrown away; set "
        "estimator.enabled = true or drop the knob"
    )


def _solver_kwargs_match_signature(spec: NormalizedSpec, view: RegistryView):
    kwargs = spec["scenario.solver_kwargs"]
    if not kwargs:
        return None
    solver = str(spec["scenario.solver"])
    if solver not in view.solver_params:
        return None  # unresolvable solver is D103's finding, not ours
    accepted = view.solver_params[solver]
    if accepted is None:
        return None
    unknown = sorted(set(kwargs) - accepted)  # type: ignore[arg-type]
    if not unknown:
        return None
    return (
        f"solver {solver!r} does not accept solver_kwargs key(s) "
        f"{', '.join(repr(key) for key in unknown)}; accepted: "
        f"{', '.join(sorted(accepted)) or '(none)'}"
    )


def _jacobi_needs_square(spec: NormalizedSpec, view: RegistryView):
    kwargs = spec["scenario.solver_kwargs"] or {}
    if str(spec["scenario.solver"]) != "auction":
        return None
    if kwargs.get("mode") != "jacobi":  # type: ignore[union-attr]
        return None
    workers, tasks = spec["market.workers"], spec["market.tasks"]
    if workers == tasks:
        return None
    return (
        f"auction mode='jacobi' (batched bidding) only runs on square "
        f"instances; this market is {workers}x{tasks}, so every solve "
        "would silently fall back to the sequential gauss-seidel path"
    )


def _faults_need_explicit_seed(spec: NormalizedSpec, view: RegistryView):
    rates = ("faults.rate",) + FAULT_RATE_KNOBS
    if not any(float(spec[name]) > 0 for name in rates):  # type: ignore[arg-type]
        return None
    if spec.is_set("faults.seed"):
        return None
    return (
        "a fault plan is configured but faults.seed is not set — "
        "fault draws must be pinned for the run to be reproducible; "
        "set faults.seed explicitly"
    )


def _lam_only_for_linear(spec: NormalizedSpec, view: RegistryView):
    if not spec.is_set("scenario.lam"):
        return None
    if str(spec["scenario.combiner"]) == "linear":
        return None
    return (
        f"scenario.lam is set but the {spec['scenario.combiner']!r} "
        "combiner has no lambda — the knob would be silently ignored"
    )


def _drift_floor_below_ceiling(spec: NormalizedSpec, view: RegistryView):
    if not spec["drift.enabled"]:
        return None
    floor, ceiling = spec["drift.floor"], spec["drift.ceiling"]
    if float(floor) <= float(ceiling):  # type: ignore[arg-type]
        return None
    return f"drift.floor {floor} exceeds drift.ceiling {ceiling}"


def _no_double_resilience(spec: NormalizedSpec, view: RegistryView):
    if str(spec["scenario.solver"]) != "resilient":
        return None
    if str(spec["scenario.resilience"]) == "off":
        return None
    return (
        "scenario.solver = 'resilient' with a resilience profile "
        "wraps the resilient executor in itself; name the primary "
        "solver and keep scenario.resilience, or use solver "
        "'resilient' with resilience 'off'"
    )


def _nonlinear_combiner_edge_solver(spec: NormalizedSpec, view: RegistryView):
    combiner = str(spec["scenario.combiner"])
    if combiner == "linear":
        return None
    solver = str(spec["scenario.solver"])
    if solver not in EDGE_DECOMPOSING_SOLVERS:
        return None
    return (
        f"the {combiner!r} combiner does not decompose over edges; "
        f"solver {solver!r} optimizes the per-edge surrogate, not the "
        "combined objective — greedy/local-search/exact optimize it "
        "directly"
    )


def _resume_needs_checkpoint_dir(
    spec: NormalizedSpec, view: RegistryView
):
    if not spec["runtime.resume"]:
        return None
    if str(spec["runtime.checkpoint_dir"]):
        return None
    return (
        "runtime.resume is on but runtime.checkpoint_dir is empty — "
        "there is no checkpoint directory to resume from; set "
        "runtime.checkpoint_dir (or --checkpoint)"
    )


#: Bases the sharded wrapper accepts.  Mirrors
#: ``repro.core.solvers.sharded.SUPPORTED_BASES`` — duplicated as a
#: literal because the spec layer must stay importable without the
#: core (a test pins the two in sync).
SHARDABLE_SOLVERS = (
    "auction",
    "flow",
    "greedy",
    "local-search",
    "pruned-greedy",
)

#: Bases the warm wrapper accepts when the solver is NOT sharded
#: (sharded wrapping is composed by the compiler itself).  Mirrors
#: ``repro.core.solvers.warm.SUPPORTED_BASES`` minus "hungarian"
#: (internal-only) and "sharded" (composed, not configured).
WARMABLE_SOLVERS = (
    "auction",
    "flow",
    "greedy",
    "local-search",
    "pruned-greedy",
)

#: Knobs that only matter once sharding.enabled / sharding.warm is on.
SHARDING_DETAIL_KNOBS = (
    "sharding.strategy",
    "sharding.shards",
    "sharding.refine",
    "sharding.parallel_workers",
    "sharding.churn_threshold",
    "sharding.exact",
)


def _sharding_knobs_need_enable(spec: NormalizedSpec, view: RegistryView):
    if spec["sharding.enabled"] or spec["sharding.warm"]:
        return None
    ignored = [
        name for name in SHARDING_DETAIL_KNOBS if spec.is_set(name)
    ]
    if not ignored:
        return None
    return (
        f"sharding knob(s) {', '.join(ignored)} are set but both "
        "sharding.enabled and sharding.warm are false — they would be "
        "silently ignored; enable a wrapper or drop the knobs"
    )


def _sharding_base_supported(spec: NormalizedSpec, view: RegistryView):
    solver = str(spec["scenario.solver"])
    if spec["sharding.enabled"] and solver not in SHARDABLE_SOLVERS:
        return (
            f"sharding.enabled wraps scenario.solver in the sharded "
            f"solver, but {solver!r} is not a supported base "
            f"(supported: {', '.join(SHARDABLE_SOLVERS)})"
        )
    if (
        spec["sharding.warm"]
        and not spec["sharding.enabled"]
        and solver not in WARMABLE_SOLVERS
    ):
        return (
            f"sharding.warm wraps scenario.solver in the warm-start "
            f"solver, but {solver!r} is not a supported base "
            f"(supported: {', '.join(WARMABLE_SOLVERS)})"
        )
    return None


def _batch_window_needs_micro_batch(
    spec: NormalizedSpec, view: RegistryView
):
    if not spec.is_set("stream.batch_window"):
        return None
    if str(spec["stream.policy"]) == "micro-batch":
        return None
    return (
        f"stream.batch_window is set but stream.policy is "
        f"{spec['stream.policy']!r} — only the micro-batch policy "
        "flushes windows, so the knob would be silently ignored; "
        "set stream.policy = 'micro-batch' or drop the knob"
    )


def _sample_fraction_needs_sample_price(
    spec: NormalizedSpec, view: RegistryView
):
    if not spec.is_set("stream.sample_fraction"):
        return None
    if str(spec["stream.policy"]) == "sample-price":
        return None
    return (
        f"stream.sample_fraction is set but stream.policy is "
        f"{spec['stream.policy']!r} — only the sample-price policy "
        "calibrates on a sample, so the knob would be silently "
        "ignored; set stream.policy = 'sample-price' or drop the knob"
    )


def _slo_horizons_ordered(spec: NormalizedSpec, view: RegistryView):
    short = int(spec["slo.short_windows"])  # type: ignore[arg-type]
    long = int(spec["slo.long_windows"])  # type: ignore[arg-type]
    if long >= short:
        return None
    return (
        f"slo.long_windows {long} is shorter than slo.short_windows "
        f"{short} — burn-rate alerting needs the long horizon to "
        "cover at least the short one"
    )


def _slo_latency_percentiles_ordered(
    spec: NormalizedSpec, view: RegistryView
):
    p95, p99 = spec["slo.latency_p95"], spec["slo.latency_p99"]
    if p95 is None or p99 is None:
        return None
    if float(p99) >= float(p95):  # type: ignore[arg-type]
        return None
    return (
        f"slo.latency_p99 {p99} is below slo.latency_p95 {p95} — p99 "
        "is never smaller than p95, so the p95 rule could never pass "
        "while the p99 rule does"
    )


def _estimator_without_gold(spec: NormalizedSpec, view: RegistryView):
    if not spec["estimator.enabled"]:
        return None
    if float(spec["scenario.gold_fraction"]) > 0:  # type: ignore[arg-type]
        return None
    return (
        "estimator.enabled with gold_fraction 0: skills are learned "
        "only from aggregated labels (self-confirming for small "
        "committees); consider a small gold fraction"
    )


CONSTRAINTS: tuple[Constraint, ...] = (
    Constraint(
        id="C201",
        knobs=("scenario.gold_fraction", "estimator.enabled"),
        summary="gold_fraction requires an enabled estimator",
        check=_gold_needs_estimator,
    ),
    Constraint(
        id="C202",
        knobs=("scenario.solver_kwargs", "scenario.solver"),
        summary="solver_kwargs keys must match the solver's signature",
        check=_solver_kwargs_match_signature,
    ),
    Constraint(
        id="C203",
        knobs=(
            "scenario.solver",
            "scenario.solver_kwargs",
            "market.workers",
            "market.tasks",
        ),
        summary="jacobi auction mode requires a square market",
        check=_jacobi_needs_square,
    ),
    Constraint(
        id="C204",
        knobs=(
            "faults.rate",
            "faults.no_show_rate",
            "faults.answer_drop_rate",
            "faults.task_cancel_rate",
            "faults.solver_failure_rate",
            "faults.seed",
        ),
        summary="fault plans require an explicit seed",
        check=_faults_need_explicit_seed,
    ),
    Constraint(
        id="C205",
        knobs=("scenario.lam", "scenario.combiner"),
        summary="lam only configures the linear combiner",
        check=_lam_only_for_linear,
    ),
    Constraint(
        id="C206",
        knobs=("drift.enabled", "drift.floor", "drift.ceiling"),
        summary="drift floor must not exceed its ceiling",
        check=_drift_floor_below_ceiling,
    ),
    Constraint(
        id="C207",
        knobs=("scenario.solver", "scenario.resilience"),
        summary="no resilient executor wrapped in itself",
        check=_no_double_resilience,
    ),
    Constraint(
        id="C208",
        knobs=("runtime.resume", "runtime.checkpoint_dir"),
        summary="resume requires a checkpoint directory",
        check=_resume_needs_checkpoint_dir,
    ),
    Constraint(
        id="C209",
        knobs=(
            "sharding.enabled",
            "sharding.warm",
            "sharding.strategy",
            "sharding.shards",
            "sharding.refine",
            "sharding.parallel_workers",
            "sharding.churn_threshold",
            "sharding.exact",
        ),
        summary="sharding detail knobs require an enabled wrapper",
        check=_sharding_knobs_need_enable,
    ),
    Constraint(
        id="C210",
        knobs=(
            "sharding.enabled",
            "sharding.warm",
            "scenario.solver",
        ),
        summary="sharding/warm wrappers support specific base solvers",
        check=_sharding_base_supported,
    ),
    Constraint(
        id="C211",
        knobs=("stream.batch_window", "stream.policy"),
        summary="batch_window only configures the micro-batch policy",
        check=_batch_window_needs_micro_batch,
    ),
    Constraint(
        id="C212",
        knobs=("stream.sample_fraction", "stream.policy"),
        summary="sample_fraction only configures the sample-price policy",
        check=_sample_fraction_needs_sample_price,
    ),
    Constraint(
        id="C213",
        knobs=("slo.short_windows", "slo.long_windows"),
        summary="the long burn-rate horizon must cover the short one",
        check=_slo_horizons_ordered,
    ),
    Constraint(
        id="C214",
        knobs=("slo.latency_p95", "slo.latency_p99"),
        summary="latency p99 ceiling must not undercut the p95 ceiling",
        check=_slo_latency_percentiles_ordered,
    ),
    Constraint(
        id="W301",
        knobs=("scenario.combiner", "scenario.solver"),
        summary="non-linear combiner with an edge-decomposing solver",
        check=_nonlinear_combiner_edge_solver,
        severity="warning",
    ),
    Constraint(
        id="W302",
        knobs=("estimator.enabled", "scenario.gold_fraction"),
        summary="estimator without any gold supervision",
        check=_estimator_without_gold,
        severity="warning",
    ),
)


def run_constraints(
    spec: NormalizedSpec, view: RegistryView
) -> list[SpecDiagnostic]:
    """Evaluate the whole catalogue; diagnostics in catalogue order."""
    diagnostics = []
    for constraint in CONSTRAINTS:
        diagnostic = constraint.evaluate(spec, view)
        if diagnostic is not None:
            diagnostics.append(diagnostic)
    return diagnostics
