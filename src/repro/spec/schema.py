"""The declarative scenario schema: every knob, declared exactly once.

A *spec* is a TOML or JSON file describing one simulation scenario
(market shape, solver, combiner, estimator/gold loop, drift, faults,
resilience) plus an optional ``[axes]`` section turning scalar knobs
into swept dimensions.  This module is the single source of truth for
which knobs exist, their types, domains, and defaults — the compiler
(:mod:`repro.spec.compile`), the constraint engine
(:mod:`repro.spec.constraints`), the lattice generator
(:mod:`repro.spec.lattice`), and the R7xx config-integrity lint rules
(:mod:`repro.lint.rules.spec_integrity`) all read it and nothing else.

Deliberately **data only**: no imports beyond the stdlib, so the lint
rules can load the schema without dragging in solvers, markets, or
numpy.  Domains that depend on runtime registries (solver names,
aggregators, workloads, resilience profiles) are *named references*
resolved against a :class:`repro.spec.constraints.RegistryView` at
check time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Spec files must carry this header (``schema = "repro-spec/1"``).
SPEC_SCHEMA_VERSION = "repro-spec/1"

#: Sentinel: the knob's scenario-side default equals ``Knob.default``.
SAME_AS_DEFAULT = object()


@dataclass(frozen=True)
class Domain:
    """The legal value set of one knob.

    ``kind``:

    * ``"any"`` — anything of the knob's type;
    * ``"range"`` — numeric closed interval ``[low, high]``;
    * ``"choice"`` — one of ``choices``;
    * ``"registry"`` — one of ``choices`` *plus* the names published by
      the runtime registry ``registry`` (``"solvers"``,
      ``"aggregators"``, ``"workloads"``, ``"resilience_profiles"``,
      ``"combiners"``), resolved at check time.
    """

    kind: str = "any"
    low: float = -math.inf
    high: float = math.inf
    choices: tuple = ()
    registry: str = ""

    def render(self) -> str:
        if self.kind == "range":
            return f"[{self.low:g}, {self.high:g}]"
        if self.kind == "choice":
            return "{" + ", ".join(str(c) for c in self.choices) + "}"
        if self.kind == "registry":
            extra = "".join(f"{c} | " for c in self.choices)
            return f"{{{extra}<{self.registry}>}}"
        return "any"


ANY = Domain()
UNIT_INTERVAL = Domain(kind="range", low=0.0, high=1.0)
POSITIVE = Domain(kind="range", low=1e-12)
NON_NEGATIVE = Domain(kind="range", low=0.0)
AT_LEAST_ONE = Domain(kind="range", low=1)


@dataclass(frozen=True)
class Knob:
    """One scenario knob: name, type, domain, default — declared once.

    ``scenario_field`` names the :class:`repro.sim.scenario.Scenario`
    dataclass field this knob (possibly together with siblings in its
    section) configures; the R701 lint rule uses it to prove every
    dataclass field is schema-covered.  ``scenario_default`` is the
    *dataclass-side* default when it differs in spelling from the
    spec-side one (e.g. ``resilience`` is ``"off"`` in specs but
    ``None`` on the dataclass); R704 compares against it.
    ``cli_flag`` binds the knob to a ``simulate`` CLI option for the
    R702 drift check.  ``axis=False`` bars the knob from ``[axes]``
    (tables and structural knobs cannot be swept).
    """

    name: str
    type: str  # "str" | "int" | "float" | "bool" | "table"
    default: object
    domain: Domain = ANY
    required: bool = False
    scenario_field: str | None = None
    scenario_default: object = SAME_AS_DEFAULT
    cli_flag: str | None = None
    axis: bool = True
    description: str = ""


#: ``Scenario`` fields deliberately not spec-expressible.  Every entry
#: needs a reason; R701 treats the key set as covered so that *new*
#: fields still demand an explicit schema decision.
UNSPECCED_SCENARIO_FIELDS: dict[str, str] = {
    "task_refresh": (
        "a Callable task source; code-only by nature, specs reuse the "
        "market's initial tasks each round"
    ),
}

#: ``simulate`` CLI options that configure the *run harness*, not the
#: scenario; R702 accepts them without a schema binding.
CLI_OPERATIONAL_FLAGS = frozenset(
    {"--trace", "--live", "--register", "--registry", "--profile"}
)

SCENARIO_KNOBS: tuple[Knob, ...] = (
    # -- market ----------------------------------------------------------
    Knob(
        name="market.workload",
        type="str",
        default=None,
        domain=Domain(kind="registry", registry="workloads"),
        required=True,
        scenario_field="market",
        description="generator from repro.datagen's workload registry",
    ),
    Knob(
        name="market.workers",
        type="int",
        default=100,
        domain=AT_LEAST_ONE,
        description="worker population size",
    ),
    Knob(
        name="market.tasks",
        type="int",
        default=50,
        domain=AT_LEAST_ONE,
        description="tasks posted per round",
    ),
    Knob(
        name="market.seed",
        type="int",
        default=0,
        description="seed of the market generator's RNG stream",
    ),
    # -- run harness -----------------------------------------------------
    Knob(
        name="run.seed",
        type="int",
        default=0,
        cli_flag="--seed",
        description="seed of the simulation run itself",
    ),
    # -- run durability --------------------------------------------------
    Knob(
        name="runtime.checkpoint_dir",
        type="str",
        default="",
        cli_flag="--checkpoint",
        axis=False,
        description=(
            "checkpoint directory for resumable runs; empty disables "
            "checkpointing"
        ),
    ),
    Knob(
        name="runtime.resume",
        type="bool",
        default=False,
        cli_flag="--resume",
        axis=False,
        description=(
            "skip work already recorded in the checkpoint directory"
        ),
    ),
    Knob(
        name="runtime.task_timeout",
        type="float",
        default=0.0,
        domain=NON_NEGATIVE,
        axis=False,
        description=(
            "per-task wall-clock bound (seconds) under the supervised "
            "pool; 0 disables the timeout"
        ),
    ),
    Knob(
        name="runtime.max_point_retries",
        type="int",
        default=2,
        domain=NON_NEGATIVE,
        axis=False,
        description=(
            "retries (with seeded backoff) for a sweep point that "
            "raises, before it is quarantined"
        ),
    ),
    Knob(
        name="runtime.quarantine_after",
        type="int",
        default=3,
        domain=AT_LEAST_ONE,
        axis=False,
        description=(
            "definite crashes (kill/hang) after which a poison point "
            "is quarantined instead of retried"
        ),
    ),
    # -- scenario core ---------------------------------------------------
    Knob(
        name="scenario.solver",
        type="str",
        default="flow",
        domain=Domain(kind="registry", registry="solvers"),
        scenario_field="solver_name",
        cli_flag="--solver",
        description="registered solver used each round",
    ),
    Knob(
        name="scenario.solver_kwargs",
        type="table",
        default=None,
        scenario_field="solver_kwargs",
        scenario_default=None,
        axis=False,
        description=(
            "constructor arguments for the solver, checked against "
            "its registered signature"
        ),
    ),
    Knob(
        name="scenario.combiner",
        type="str",
        default="linear",
        domain=Domain(kind="registry", registry="combiners"),
        scenario_field="combiner",
        scenario_default=None,
        description="mutual-benefit combiner (linear/egalitarian/nash)",
    ),
    Knob(
        name="scenario.lam",
        type="float",
        default=0.5,
        domain=UNIT_INTERVAL,
        cli_flag="--lam",
        description="requester-vs-worker weight of the linear combiner",
    ),
    Knob(
        name="scenario.n_rounds",
        type="int",
        default=10,
        domain=AT_LEAST_ONE,
        scenario_field="n_rounds",
        cli_flag="--rounds",
        description="number of assignment rounds",
    ),
    Knob(
        name="scenario.aggregator",
        type="str",
        default="majority",
        domain=Domain(kind="registry", registry="aggregators"),
        scenario_field="aggregator",
        description="answer aggregator from the aggregator registry",
    ),
    Knob(
        name="scenario.gold_fraction",
        type="float",
        default=0.1,
        domain=UNIT_INTERVAL,
        scenario_field="gold_fraction",
        description=(
            "fraction of tasks whose ground truth feeds the estimator"
        ),
    ),
    Knob(
        name="scenario.workers_decline",
        type="bool",
        default=False,
        scenario_field="workers_decline",
        description="workers refuse negative-benefit assignments",
    ),
    Knob(
        name="scenario.resilience",
        type="str",
        default="off",
        domain=Domain(
            kind="registry",
            registry="resilience_profiles",
            choices=("off",),
        ),
        scenario_field="resilience",
        scenario_default=None,
        cli_flag="--resilience",
        description="resilient-executor profile, or 'off' for bare",
    ),
    # -- retention -------------------------------------------------------
    Knob(
        name="retention.enabled",
        type="bool",
        default=True,
        scenario_field="retention",
        scenario_default=None,
        cli_flag="--no-retention",
        description="worker churn driven by received benefit",
    ),
    Knob(
        name="retention.smoothing",
        type="float",
        default=0.3,
        domain=UNIT_INTERVAL,
        description="weight of the newest round in satisfaction",
    ),
    Knob(
        name="retention.expectation",
        type="float",
        default=0.5,
        domain=NON_NEGATIVE,
        description="per-round benefit a worker considers fair",
    ),
    Knob(
        name="retention.sharpness",
        type="float",
        default=4.0,
        domain=POSITIVE,
        description="slope of the logistic stay/leave link",
    ),
    Knob(
        name="retention.base_stay",
        type="float",
        default=0.9,
        domain=UNIT_INTERVAL,
        description="staying probability at exactly-met expectations",
    ),
    Knob(
        name="retention.rejoin_probability",
        type="float",
        default=0.02,
        domain=UNIT_INTERVAL,
        description="per-round chance an inactive worker returns",
    ),
    # -- estimator -------------------------------------------------------
    Knob(
        name="estimator.enabled",
        type="bool",
        default=False,
        scenario_field="estimator",
        scenario_default=None,
        description=(
            "plan on Beta-posterior skill estimates instead of truth"
        ),
    ),
    Knob(
        name="estimator.prior_a",
        type="float",
        default=7.0,
        domain=POSITIVE,
        description="Beta prior pseudo-successes",
    ),
    Knob(
        name="estimator.prior_b",
        type="float",
        default=3.0,
        domain=POSITIVE,
        description="Beta prior pseudo-failures",
    ),
    Knob(
        name="estimator.per_category",
        type="bool",
        default=True,
        description="one posterior per (worker, category) vs pooled",
    ),
    # -- drift -----------------------------------------------------------
    Knob(
        name="drift.enabled",
        type="bool",
        default=False,
        scenario_field="drift",
        scenario_default=None,
        description="learning-by-doing skill drift between rounds",
    ),
    Knob(
        name="drift.learning_rate",
        type="float",
        default=0.08,
        domain=UNIT_INTERVAL,
        description="progress toward the ceiling per completed task",
    ),
    Knob(
        name="drift.decay_rate",
        type="float",
        default=0.01,
        domain=UNIT_INTERVAL,
        description="regression toward the floor per idle round",
    ),
    Knob(
        name="drift.ceiling",
        type="float",
        default=0.98,
        domain=UNIT_INTERVAL,
        description="asymptote of practice",
    ),
    Knob(
        name="drift.floor",
        type="float",
        default=0.5,
        domain=UNIT_INTERVAL,
        description="asymptote of rust",
    ),
    # -- faults ----------------------------------------------------------
    Knob(
        name="faults.rate",
        type="float",
        default=0.0,
        domain=UNIT_INTERVAL,
        scenario_field="fault_plan",
        scenario_default=None,
        cli_flag="--fault-rate",
        description=(
            "uniform fault plan: edge faults at rate, task/solver "
            "faults at rate/2 (individual rates override)"
        ),
    ),
    Knob(
        name="faults.seed",
        type="int",
        default=0,
        cli_flag="--fault-seed",
        description="seed of the fault plan's own random stream",
    ),
    Knob(
        name="faults.no_show_rate",
        type="float",
        default=0.0,
        domain=UNIT_INTERVAL,
        description="per-edge silent non-delivery probability",
    ),
    Knob(
        name="faults.answer_drop_rate",
        type="float",
        default=0.0,
        domain=UNIT_INTERVAL,
        description="per-edge answer-loss probability",
    ),
    Knob(
        name="faults.task_cancel_rate",
        type="float",
        default=0.0,
        domain=UNIT_INTERVAL,
        description="per-task mid-round cancellation probability",
    ),
    Knob(
        name="faults.solver_failure_rate",
        type="float",
        default=0.0,
        domain=UNIT_INTERVAL,
        description="per-round forced solver-failure probability",
    ),
    # -- sharding / warm starts ------------------------------------------
    # These knobs have no scenario_field: the compiler *wraps* the
    # configured solver (sharded and/or warm) instead of adding engine
    # fields — the engine stays solver-agnostic.
    Knob(
        name="sharding.enabled",
        type="bool",
        default=False,
        description=(
            "wrap the scenario solver in the sharded partition-solve-"
            "refine wrapper"
        ),
    ),
    Knob(
        name="sharding.strategy",
        type="str",
        default="category",
        domain=Domain(
            kind="choice", choices=("category", "balanced", "none")
        ),
        description="shard plan: per-category, balanced k-way, or single",
    ),
    Knob(
        name="sharding.shards",
        type="int",
        default=0,
        domain=NON_NEGATIVE,
        description=(
            "shard count for the balanced strategy (0 = sqrt of the "
            "category count)"
        ),
    ),
    Knob(
        name="sharding.refine",
        type="bool",
        default=True,
        description="run the cross-shard boundary refinement pass",
    ),
    Knob(
        name="sharding.parallel_workers",
        type="int",
        default=0,
        domain=NON_NEGATIVE,
        description=(
            "solve shards on a supervised process pool of this size "
            "(0/1 = serial; auto-serial inside sweep pool workers)"
        ),
    ),
    Knob(
        name="sharding.warm",
        type="bool",
        default=False,
        description=(
            "wrap the (possibly sharded) solver in the warm-start "
            "wrapper: fingerprint replay + dual-state delta-solving"
        ),
    ),
    Knob(
        name="sharding.churn_threshold",
        type="float",
        default=0.25,
        domain=UNIT_INTERVAL,
        description=(
            "maximum membership-churn fraction for warm delta-solves"
        ),
    ),
    Knob(
        name="sharding.exact",
        type="bool",
        default=True,
        description=(
            "restrict warm starts to the bit-identical replay tier "
            "(False additionally enables approximate dual-state "
            "delta-solves)"
        ),
    ),
    # -- streaming dispatch ----------------------------------------------
    # These knobs have no scenario_field: ``python -m repro stream``
    # compiles them into a DispatchConfig for repro.stream, not into
    # the round engine's Scenario (round mode builds a Scenario from
    # stream.round_* plus the shared [scenario] knobs).
    Knob(
        name="stream.policy",
        type="str",
        default="greedy",
        domain=Domain(
            kind="choice",
            choices=("greedy", "sample-price", "micro-batch", "round"),
        ),
        description=(
            "dispatch policy: arrival-instant greedy, sample-and-"
            "price, warm-started micro-batch re-solves, or round-"
            "engine delegation"
        ),
    ),
    Knob(
        name="stream.task_rate",
        type="float",
        default=4.0,
        domain=POSITIVE,
        description="Poisson task-posting rate (tasks per time unit)",
    ),
    Knob(
        name="stream.worker_rate",
        type="float",
        default=1.0,
        domain=POSITIVE,
        description="Poisson worker-login rate (logins per time unit)",
    ),
    Knob(
        name="stream.deadline",
        type="float",
        default=10.0,
        domain=POSITIVE,
        description="time a posted task stays open before expiring",
    ),
    Knob(
        name="stream.session_length",
        type="float",
        default=5.0,
        domain=POSITIVE,
        description="duration of each worker login session",
    ),
    Knob(
        name="stream.batch_window",
        type="float",
        default=1.0,
        domain=POSITIVE,
        description=(
            "micro-batch flush period (micro-batch policy only)"
        ),
    ),
    Knob(
        name="stream.sample_fraction",
        type="float",
        default=0.2,
        domain=UNIT_INTERVAL,
        description=(
            "fraction of worker arrivals forming the price-"
            "calibration sample (sample-price policy only)"
        ),
    ),
    Knob(
        name="stream.max_open_tasks",
        type="int",
        default=0,
        domain=NON_NEGATIVE,
        description=(
            "backpressure bound on the open-task queue; arrivals "
            "beyond it are dropped and counted (0 = unbounded)"
        ),
    ),
    Knob(
        name="stream.writer_batch",
        type="int",
        default=256,
        domain=AT_LEAST_ONE,
        description="assignment-record writer flush batch size",
    ),
    Knob(
        name="stream.round_rounds",
        type="int",
        default=10,
        domain=AT_LEAST_ONE,
        description="round count when policy = 'round'",
    ),
    # -- SLO monitoring ---------------------------------------------------
    # Like the stream knobs these have no scenario_field: ``python -m
    # repro monitor`` compiles them into the SLO rule catalogue
    # (repro.obs.slo) evaluated against the run's live telemetry.
    # Threshold knobs default to None, meaning "rule disabled".
    Knob(
        name="slo.window",
        type="float",
        default=1.0,
        domain=POSITIVE,
        description=(
            "telemetry aggregation window width (event-time units "
            "for stream mode, rounds for sim mode)"
        ),
    ),
    Knob(
        name="slo.latency_p95",
        type="float",
        default=None,
        domain=POSITIVE,
        description="per-window assignment-wait p95 ceiling",
    ),
    Knob(
        name="slo.latency_p99",
        type="float",
        default=None,
        domain=POSITIVE,
        description="per-window assignment-wait p99 ceiling",
    ),
    Knob(
        name="slo.throughput_floor",
        type="float",
        default=None,
        domain=POSITIVE,
        description=(
            "assignments-per-time-unit floor (counter rate over the "
            "window)"
        ),
    ),
    Knob(
        name="slo.drop_rate",
        type="float",
        default=None,
        domain=POSITIVE,
        description="backpressure drop rate ceiling (drops per time unit)",
    ),
    Knob(
        name="slo.gini_ceiling",
        type="float",
        default=None,
        domain=UNIT_INTERVAL,
        description=(
            "per-window worker-benefit Gini coefficient ceiling"
        ),
    ),
    Knob(
        name="slo.participation_floor",
        type="float",
        default=None,
        domain=UNIT_INTERVAL,
        description=(
            "floor on the fraction of online workers assigned work "
            "per window"
        ),
    ),
    Knob(
        name="slo.starvation_ceiling",
        type="float",
        default=None,
        domain=UNIT_INTERVAL,
        description=(
            "ceiling on the fraction of online workers unassigned "
            "for two consecutive windows"
        ),
    ),
    Knob(
        name="slo.short_windows",
        type="int",
        default=3,
        domain=AT_LEAST_ONE,
        description="short burn-rate horizon (windows)",
    ),
    Knob(
        name="slo.long_windows",
        type="int",
        default=6,
        domain=AT_LEAST_ONE,
        description="long burn-rate horizon (windows)",
    ),
)

#: Name -> knob, the lookup every consumer uses.
KNOBS: dict[str, Knob] = {knob.name: knob for knob in SCENARIO_KNOBS}

#: Sections a spec file may contain (top level of the TOML/JSON tree).
SECTIONS: tuple[str, ...] = tuple(
    sorted({knob.name.split(".", 1)[0] for knob in SCENARIO_KNOBS})
) + ("axes",)


def knob_names() -> tuple[str, ...]:
    """Sorted declared knob names."""
    return tuple(sorted(KNOBS))


def scenario_field_coverage() -> frozenset[str]:
    """``Scenario`` dataclass fields the schema claims to configure."""
    return frozenset(
        knob.scenario_field
        for knob in SCENARIO_KNOBS
        if knob.scenario_field is not None
    ) | frozenset(UNSPECCED_SCENARIO_FIELDS)


def cli_flag_map() -> dict[str, str]:
    """``--flag`` -> knob name for every CLI-bound knob."""
    return {
        knob.cli_flag: knob.name
        for knob in SCENARIO_KNOBS
        if knob.cli_flag is not None
    }


def defaults() -> dict[str, object]:
    """Effective value of every knob before the file says anything."""
    return {knob.name: knob.default for knob in SCENARIO_KNOBS}


@dataclass(frozen=True)
class NormalizedSpec:
    """A spec reduced to flat dotted knobs plus explicitness.

    ``values`` holds the *effective* value of every declared knob
    (file value where given, schema default otherwise); ``explicit``
    records which knobs the file actually set — several constraints
    (gold-without-estimator, faults-without-seed) key on intent, not
    on effective values.  ``axes`` maps swept knob names to their
    value lists.
    """

    values: dict[str, object] = field(default_factory=dict)
    explicit: frozenset[str] = frozenset()
    axes: dict[str, list] = field(default_factory=dict)

    def is_set(self, name: str) -> bool:
        return name in self.explicit

    def __getitem__(self, name: str) -> object:
        return self.values[name]
