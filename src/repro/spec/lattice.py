"""Enumerate and sample the valid scenario lattice of a spec.

A spec's ``[axes]`` section turns scalar knobs into swept dimensions;
the lattice is their cartesian product.  :func:`expand` enumerates it,
runs the full static checker on every point, and returns only the
checker-clean scenarios — invalid corners (a jacobi auction landing on
a rectangular market, gold without an estimator) are *dropped and
counted*, never silently emitted.  :func:`sample` draws a seeded
subset for CI smoke runs where the full product is too much.

Every point carries a durable content-addressed id (``sc-`` plus
:func:`repro.obs.registry.content_id` over the effective knob values)
so sweep results, traces, and registry entries from different runs and
machines agree on which scenario they describe, plus a sparse payload
that recompiles to the identical scenario via
:func:`repro.spec.compile.compile_spec`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path

from repro.obs.registry import content_id
from repro.spec.compile import (
    CheckResult,
    SpecError,
    _registry_diagnostics,
    check_spec,
    dump_spec,
    load_spec,
    normalize,
)
from repro.spec.constraints import RegistryView, SpecDiagnostic
from repro.spec.schema import NormalizedSpec
from repro.utils.rng import SeedLike, as_rng


def scenario_id(spec: NormalizedSpec) -> str:
    """Durable id of a concrete (axis-free) scenario.

    Content-addressed over the *effective* values of every declared
    knob, so the id survives file formatting, knob ordering, and
    explicit-vs-default spelling of the same configuration.
    """
    return "sc-" + content_id(spec.values)


@dataclass(frozen=True)
class LatticePoint:
    """One checker-clean scenario from an expanded spec."""

    id: str
    axis_values: dict[str, object]
    payload: dict
    spec: NormalizedSpec
    warnings: tuple[SpecDiagnostic, ...] = ()


@dataclass(frozen=True)
class DroppedPoint:
    """An enumerated combination the checker rejected."""

    axis_values: dict[str, object]
    diagnostics: tuple[SpecDiagnostic, ...]


@dataclass(frozen=True)
class Lattice:
    """The outcome of expanding one spec's axes."""

    base: NormalizedSpec
    points: tuple[LatticePoint, ...]
    dropped: tuple[DroppedPoint, ...]

    @property
    def enumerated(self) -> int:
        return len(self.points) + len(self.dropped)


def _point_spec(
    base: NormalizedSpec, assignment: dict[str, object]
) -> NormalizedSpec:
    """The base spec with one axis assignment pinned (axes consumed)."""
    values = dict(base.values)
    values.update(assignment)
    return NormalizedSpec(
        values=values,
        explicit=base.explicit | frozenset(assignment),
        axes={},
    )


def expand(source, view: RegistryView | None = None) -> Lattice:
    """Enumerate the spec's axis product, keeping checker-clean points.

    The base spec must be structurally sound (D1xx clean, registry
    names resolved — including every axis value); cross-parameter
    constraints are then judged *per point*, because whether a corner
    is valid depends on the full assignment, not the base.  Points come
    back in deterministic order: axes sorted by knob name, values in
    file order.
    """
    if isinstance(source, NormalizedSpec):
        spec, diagnostics = source, []
    else:
        payload = (
            load_spec(source)
            if isinstance(source, (str, Path))
            else source
        )
        spec, diagnostics = normalize(payload)
    if view is None:
        view = RegistryView.live()
    diagnostics = list(diagnostics)
    if spec is not None:
        diagnostics.extend(_registry_diagnostics(spec, view))
    errors = [d for d in diagnostics if d.severity == "error"]
    if spec is None or errors:
        raise SpecError(
            CheckResult(spec=spec, diagnostics=tuple(diagnostics)),
            source=str(source)
            if isinstance(source, (str, Path))
            else "spec",
        )

    names = sorted(spec.axes)
    combos = itertools.product(*(spec.axes[name] for name in names))
    points: list[LatticePoint] = []
    dropped: list[DroppedPoint] = []
    for combo in combos:
        assignment = dict(zip(names, combo))
        candidate = _point_spec(spec, assignment)
        result = check_spec(candidate, view=view)
        if result.ok:
            points.append(
                LatticePoint(
                    id=scenario_id(candidate),
                    axis_values=assignment,
                    payload=dump_spec(candidate),
                    spec=candidate,
                    warnings=result.warnings,
                )
            )
        else:
            dropped.append(
                DroppedPoint(
                    axis_values=assignment, diagnostics=result.errors
                )
            )
    return Lattice(
        base=spec, points=tuple(points), dropped=tuple(dropped)
    )


def sample(
    source,
    k: int,
    seed: SeedLike = None,
    view: RegistryView | None = None,
) -> Lattice:
    """A seeded size-``k`` subsample of :func:`expand`'s clean points.

    Sampling is without replacement over the already-filtered valid
    points (so the draw never spends budget on rejected corners) and
    deterministic given ``seed``; order follows the full enumeration.
    """
    lattice = expand(source, view=view)
    if k >= len(lattice.points):
        return lattice
    rng = as_rng(seed)
    chosen = sorted(
        rng.choice(len(lattice.points), size=k, replace=False).tolist()
    )
    return Lattice(
        base=lattice.base,
        points=tuple(lattice.points[i] for i in chosen),
        dropped=lattice.dropped,
    )
