"""Load, normalize, statically check, and compile scenario specs.

The pipeline is strictly staged so each stage stays cheap and
import-light:

1. :func:`load_spec` — parse a ``.toml``/``.json`` file into a raw
   payload (stdlib only);
2. :func:`normalize` — flatten the payload onto the declared knob set,
   reporting structural ``D1xx`` diagnostics (unknown sections/knobs,
   type and domain violations, malformed axes);
3. :func:`check_spec` — resolve registry-valued domains against a
   :class:`~repro.spec.constraints.RegistryView` and run the ``C2xx``
   cross-parameter constraints.  **No simulation import happens here**,
   which is what lets ``python -m repro spec check`` gate CI without
   building a single market;
4. :func:`compile_spec` — the only stage that imports the simulation
   stack, turning a *checked* spec into a concrete
   :class:`repro.sim.scenario.Scenario`.

:func:`dump_spec` inverts normalization *sparsely* — only explicitly
set knobs are emitted — so compile → dump → recompile is the identity
on both effective values and explicitness (several constraints key on
the latter).

Structural diagnostic codes:

=====  ==================================================================
D101   missing or wrong ``schema`` version header
D102   unknown section or knob (or a section that is not a table)
D103   required knob not set
D104   value has the wrong type for its knob
D105   value outside the knob's domain (static or registry-resolved)
D106   malformed ``[axes]`` entry
=====  ==================================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.spec.constraints import (
    RegistryView,
    SpecDiagnostic,
    run_constraints,
)
from repro.spec.schema import (
    KNOBS,
    SCENARIO_KNOBS,
    SECTIONS,
    SPEC_SCHEMA_VERSION,
    Knob,
    NormalizedSpec,
    defaults,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.scenario import Scenario

#: Raw payloads, paths, or already-normalized specs are all accepted
#: by the check/compile entry points.
SpecSource = "str | Path | dict | NormalizedSpec"


class SpecError(ConfigurationError):
    """A spec failed its static check; carries the diagnostics."""

    def __init__(self, result: "CheckResult", source: str = "spec"):
        self.result = result
        lines = [diag.render() for diag in result.errors]
        super().__init__(
            f"{source} failed validation with {len(lines)} error(s):\n  "
            + "\n  ".join(lines)
        )


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a static spec check.

    ``spec`` is the normalized spec when structure was sound enough to
    build one (even if constraints then failed), ``None`` when the file
    was structurally unusable.
    """

    spec: NormalizedSpec | None
    diagnostics: tuple[SpecDiagnostic, ...]

    @property
    def errors(self) -> tuple[SpecDiagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> tuple[SpecDiagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        if not self.diagnostics:
            return "ok"
        return "\n".join(diag.render() for diag in self.diagnostics)


def load_spec(path: str | Path) -> dict:
    """Parse a spec file into a raw payload, dispatching on suffix."""
    path = Path(path)
    if path.suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError:
            raise ConfigurationError(
                "TOML specs need Python 3.11+ (stdlib tomllib); on older "
                "interpreters re-save the spec as .json"
            ) from None
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    if path.suffix == ".json":
        return json.loads(path.read_text(encoding="utf-8"))
    raise ConfigurationError(
        f"unrecognized spec suffix {path.suffix!r} for {path}; "
        "use .toml or .json"
    )


def _type_error(knob: Knob, value: object) -> str | None:
    expected = knob.type
    if expected == "bool":
        ok = isinstance(value, bool)
    elif expected == "int":
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif expected == "float":
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif expected == "str":
        ok = isinstance(value, str)
    elif expected == "table":
        ok = isinstance(value, dict) and all(
            isinstance(key, str) for key in value
        )
    else:  # pragma: no cover - schema bug, not a user error
        raise ConfigurationError(
            f"knob {knob.name!r} declares unknown type {expected!r}"
        )
    if ok:
        return None
    return (
        f"expected {expected}, got {type(value).__name__} ({value!r})"
    )


def _domain_error(knob: Knob, value: object) -> str | None:
    """Static domain check; registry domains resolve in check_spec."""
    domain = knob.domain
    if domain.kind == "range":
        if not domain.low <= value <= domain.high:  # type: ignore[operator]
            return f"value {value!r} outside domain {domain.render()}"
        return None
    if domain.kind == "choice" and value not in domain.choices:
        return f"value {value!r} not one of {domain.render()}"
    return None


def _flatten_axes(body: dict, prefix: str = "") -> list[tuple[str, object]]:
    """``{"scenario": {"lam": [...]}}`` and ``{"scenario.lam": [...]}``
    both flatten to ``[("scenario.lam", [...])]``."""
    flat: list[tuple[str, object]] = []
    for key, value in body.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.extend(_flatten_axes(value, prefix=f"{name}."))
        else:
            flat.append((name, value))
    return flat


def normalize(
    payload: dict,
) -> tuple[NormalizedSpec | None, list[SpecDiagnostic]]:
    """Flatten a raw payload onto the schema, collecting D1xx findings.

    Returns ``(spec, diagnostics)``; ``spec`` is ``None`` only when the
    payload is not even a table.
    """
    diagnostics: list[SpecDiagnostic] = []

    def structural(code: str, knob: str, message: str) -> None:
        diagnostics.append(
            SpecDiagnostic(code=code, knob=knob, message=message)
        )

    if not isinstance(payload, dict):
        structural(
            "D102",
            "(root)",
            f"spec root must be a table, got {type(payload).__name__}",
        )
        return None, diagnostics

    declared = payload.get("schema")
    if declared != SPEC_SCHEMA_VERSION:
        structural(
            "D101",
            "schema",
            f"spec must declare schema = {SPEC_SCHEMA_VERSION!r}, "
            + (f"got {declared!r}" if declared else "none found"),
        )

    values = defaults()
    explicit: set[str] = set()
    axes: dict[str, list] = {}

    for section, body in payload.items():
        if section == "schema":
            continue
        if section not in SECTIONS:
            structural(
                "D102",
                section,
                f"unknown section [{section}]; known sections: "
                + ", ".join(SECTIONS),
            )
            continue
        if not isinstance(body, dict):
            structural(
                "D102",
                section,
                f"section [{section}] must be a table, got "
                f"{type(body).__name__}",
            )
            continue
        if section == "axes":
            _normalize_axes(body, axes, structural)
            continue
        for key, value in body.items():
            name = f"{section}.{key}"
            knob = KNOBS.get(name)
            if knob is None:
                known = ", ".join(
                    k.name for k in SCENARIO_KNOBS
                    if k.name.startswith(section + ".")
                )
                structural(
                    "D102", name, f"unknown knob; [{section}] has: {known}"
                )
                continue
            message = _type_error(knob, value)
            if message is not None:
                structural("D104", name, message)
                continue
            message = _domain_error(knob, value)
            if message is not None:
                structural("D105", name, message)
                continue
            values[name] = value
            explicit.add(name)

    for knob in SCENARIO_KNOBS:
        if knob.required and knob.name not in explicit:
            structural(
                "D103",
                knob.name,
                f"required knob is not set ({knob.description})",
            )

    for name in sorted(set(axes) & explicit):
        structural(
            "D106",
            name,
            "knob appears both as a scalar and as an axis; pick one",
        )

    spec = NormalizedSpec(
        values=values, explicit=frozenset(explicit), axes=axes
    )
    return spec, diagnostics


def _normalize_axes(body: dict, axes: dict, structural) -> None:
    for name, value in _flatten_axes(body):
        knob = KNOBS.get(name)
        if knob is None:
            structural("D106", name, "axis over an undeclared knob")
            continue
        if not knob.axis:
            structural(
                "D106",
                name,
                f"knob cannot be swept ({knob.type} knobs are structural)",
            )
            continue
        if not isinstance(value, list) or not value:
            structural(
                "D106",
                name,
                f"axis must be a non-empty list, got {value!r}",
            )
            continue
        bad = False
        for item in value:
            message = _type_error(knob, item) or _domain_error(knob, item)
            if message is not None:
                structural("D106", name, f"axis value {item!r}: {message}")
                bad = True
        if not bad:
            axes[name] = list(value)


def _registry_diagnostics(
    spec: NormalizedSpec, view: RegistryView
) -> list[SpecDiagnostic]:
    """D105 findings for registry-valued knobs, including axis values."""
    diagnostics = []
    for name in sorted(spec.explicit | set(spec.axes)):
        knob = KNOBS[name]
        if knob.domain.kind != "registry":
            continue
        allowed = set(knob.domain.choices) | set(
            view.registry_values(knob.domain.registry)
        )
        candidates = [spec[name]] if spec.is_set(name) else []
        candidates.extend(spec.axes.get(name, ()))
        for value in candidates:
            if value in allowed:
                continue
            known = ", ".join(str(a) for a in sorted(allowed, key=str))
            diagnostics.append(
                SpecDiagnostic(
                    code="D105",
                    knob=name,
                    message=(
                        f"{value!r} is not in the {knob.domain.registry} "
                        f"registry; known: {known}"
                    ),
                )
            )
    return diagnostics


def check_spec(
    source, view: RegistryView | None = None
) -> CheckResult:
    """Statically check a spec from a path, payload, or normalized form.

    Structure first (D1xx), then registry resolution (D105), then —
    only on structurally sound specs — the cross-parameter constraints
    (C2xx errors and W3xx warnings).  Never imports simulation code.
    """
    if isinstance(source, NormalizedSpec):
        spec, diagnostics = source, []
    else:
        payload = (
            load_spec(source)
            if isinstance(source, (str, Path))
            else source
        )
        spec, diagnostics = normalize(payload)
        if spec is None:
            return CheckResult(spec=None, diagnostics=tuple(diagnostics))
    if view is None:
        view = RegistryView.live()
    diagnostics = list(diagnostics)
    diagnostics.extend(_registry_diagnostics(spec, view))
    if not any(d.severity == "error" for d in diagnostics):
        diagnostics.extend(run_constraints(spec, view))
    return CheckResult(spec=spec, diagnostics=tuple(diagnostics))


def dump_spec(spec: NormalizedSpec) -> dict:
    """The sparse payload form: explicitly set knobs and axes only.

    ``normalize(dump_spec(s))`` reproduces ``s`` exactly — values,
    explicitness, and axes — which the round-trip tests pin down.
    """
    payload: dict = {"schema": SPEC_SCHEMA_VERSION}
    for name in sorted(spec.explicit):
        section, key = name.split(".", 1)
        payload.setdefault(section, {})[key] = spec.values[name]
    if spec.axes:
        payload["axes"] = {
            name: list(values) for name, values in sorted(spec.axes.items())
        }
    return payload


def compile_spec(
    source, view: RegistryView | None = None
) -> "Scenario":
    """Compile a checked spec into a concrete Scenario.

    The only spec-stage function that imports the simulation stack;
    raises :class:`SpecError` (with every diagnostic) before touching
    it if the spec does not pass :func:`check_spec`.
    """
    result = check_spec(source, view=view)
    if not result.ok:
        name = source if isinstance(source, (str, Path)) else "spec"
        raise SpecError(result, source=str(name))
    spec = result.spec
    assert spec is not None

    from repro.benefit.mutual import make_combiner
    from repro.crowd.estimation import BetaSkillEstimator
    from repro.datagen.traces import workload_registry
    from repro.market.drift import SkillDriftModel
    from repro.market.retention import RetentionModel
    from repro.sim.scenario import Scenario

    workload = workload_registry()[str(spec["market.workload"])]
    market = workload(
        int(spec["market.workers"]),  # type: ignore[arg-type]
        int(spec["market.tasks"]),  # type: ignore[arg-type]
        seed=int(spec["market.seed"]),  # type: ignore[arg-type]
    )
    retention = None
    if spec["retention.enabled"]:
        retention = RetentionModel(
            smoothing=float(spec["retention.smoothing"]),  # type: ignore[arg-type]
            expectation=float(spec["retention.expectation"]),  # type: ignore[arg-type]
            sharpness=float(spec["retention.sharpness"]),  # type: ignore[arg-type]
            base_stay=float(spec["retention.base_stay"]),  # type: ignore[arg-type]
            rejoin_probability=float(spec["retention.rejoin_probability"]),  # type: ignore[arg-type]
        )
    estimator = None
    if spec["estimator.enabled"]:
        estimator = BetaSkillEstimator(
            prior_a=float(spec["estimator.prior_a"]),  # type: ignore[arg-type]
            prior_b=float(spec["estimator.prior_b"]),  # type: ignore[arg-type]
            per_category=bool(spec["estimator.per_category"]),
        )
    drift = None
    if spec["drift.enabled"]:
        drift = SkillDriftModel(
            learning_rate=float(spec["drift.learning_rate"]),  # type: ignore[arg-type]
            decay_rate=float(spec["drift.decay_rate"]),  # type: ignore[arg-type]
            ceiling=float(spec["drift.ceiling"]),  # type: ignore[arg-type]
            floor=float(spec["drift.floor"]),  # type: ignore[arg-type]
        )
    resilience = (
        None
        if str(spec["scenario.resilience"]) == "off"
        else str(spec["scenario.resilience"])
    )
    solver_name, solver_kwargs = _wrap_solver(spec)
    return Scenario(
        market=market,
        solver_name=solver_name,
        solver_kwargs=solver_kwargs,
        combiner=make_combiner(
            str(spec["scenario.combiner"]), float(spec["scenario.lam"])  # type: ignore[arg-type]
        ),
        n_rounds=int(spec["scenario.n_rounds"]),  # type: ignore[arg-type]
        retention=retention,
        aggregator=str(spec["scenario.aggregator"]),
        estimator=estimator,
        gold_fraction=float(spec["scenario.gold_fraction"]),  # type: ignore[arg-type]
        workers_decline=bool(spec["scenario.workers_decline"]),
        drift=drift,
        fault_plan=_fault_plan(spec),
        resilience=resilience,
    )


@dataclass(frozen=True)
class CompiledStream:
    """A checked spec compiled for the streaming dispatch service.

    ``scenario`` is populated only when ``stream.policy = "round"`` —
    it is the engine scenario the dispatcher delegates to, built by
    :func:`compile_spec` on the same source so round mode through the
    stream CLI is bit-identical to ``simulate`` on that spec.
    """

    market: object
    config: object
    combiner: object
    scenario: object | None = None


def compile_stream(
    source, view: RegistryView | None = None
) -> CompiledStream:
    """Compile a checked spec into streaming-dispatch inputs.

    Reads the ``[market]`` knobs for the population, ``[stream]`` for
    the :class:`~repro.stream.dispatch.DispatchConfig`, and the shared
    ``[scenario]`` combiner/lam (and, in round mode, the full scenario
    via :func:`compile_spec`).
    """
    result = check_spec(source, view=view)
    if not result.ok:
        name = source if isinstance(source, (str, Path)) else "spec"
        raise SpecError(result, source=str(name))
    spec = result.spec
    assert spec is not None

    from repro.benefit.mutual import make_combiner
    from repro.datagen.traces import workload_registry
    from repro.stream.dispatch import DispatchConfig

    workload = workload_registry()[str(spec["market.workload"])]
    market = workload(
        int(spec["market.workers"]),  # type: ignore[arg-type]
        int(spec["market.tasks"]),  # type: ignore[arg-type]
        seed=int(spec["market.seed"]),  # type: ignore[arg-type]
    )
    config = DispatchConfig(
        policy=str(spec["stream.policy"]),
        task_rate=float(spec["stream.task_rate"]),  # type: ignore[arg-type]
        worker_rate=float(spec["stream.worker_rate"]),  # type: ignore[arg-type]
        deadline=float(spec["stream.deadline"]),  # type: ignore[arg-type]
        session_length=float(spec["stream.session_length"]),  # type: ignore[arg-type]
        batch_window=float(spec["stream.batch_window"]),  # type: ignore[arg-type]
        sample_fraction=float(spec["stream.sample_fraction"]),  # type: ignore[arg-type]
        max_open_tasks=int(spec["stream.max_open_tasks"]),  # type: ignore[arg-type]
        writer_batch=int(spec["stream.writer_batch"]),  # type: ignore[arg-type]
        round_solver=str(spec["scenario.solver"]),
        round_rounds=int(spec["stream.round_rounds"]),  # type: ignore[arg-type]
    )
    combiner = make_combiner(
        str(spec["scenario.combiner"]), float(spec["scenario.lam"])  # type: ignore[arg-type]
    )
    scenario = None
    if config.policy == "round":
        scenario = compile_spec(spec, view=view)
    return CompiledStream(
        market=market, config=config, combiner=combiner, scenario=scenario
    )


def compile_slo(source, view: RegistryView | None = None):
    """Compile the ``[slo]`` knobs into burn-rate rules plus a window.

    Returns ``(rules, window)`` — the :class:`repro.obs.slo.SloRule`
    catalogue for ``python -m repro monitor`` and the telemetry window
    width the run's :class:`~repro.obs.timeseries.TimeseriesStore`
    must use.  Threshold knobs left unset disable their rule, so a
    spec with no ``[slo]`` section compiles to an empty catalogue.
    """
    result = check_spec(source, view=view)
    if not result.ok:
        name = source if isinstance(source, (str, Path)) else "spec"
        raise SpecError(result, source=str(name))
    spec = result.spec
    assert spec is not None

    from repro.obs.slo import default_rules

    def threshold(name: str) -> float | None:
        value = spec[name]
        return None if value is None else float(value)  # type: ignore[arg-type]

    rules = default_rules(
        latency_p95=threshold("slo.latency_p95"),
        latency_p99=threshold("slo.latency_p99"),
        throughput_floor=threshold("slo.throughput_floor"),
        drop_rate=threshold("slo.drop_rate"),
        gini_ceiling=threshold("slo.gini_ceiling"),
        participation_floor=threshold("slo.participation_floor"),
        starvation_ceiling=threshold("slo.starvation_ceiling"),
        short_windows=int(spec["slo.short_windows"]),  # type: ignore[arg-type]
        long_windows=int(spec["slo.long_windows"]),  # type: ignore[arg-type]
    )
    return rules, float(spec["slo.window"])  # type: ignore[arg-type]


def _wrap_solver(spec: NormalizedSpec) -> tuple[str, dict]:
    """Apply the ``[sharding]`` wrappers to the configured solver.

    ``sharding.enabled`` wraps the base solver in ``sharded`` (the base
    and its kwargs become the wrapper's ``base``/``base_kwargs``);
    ``sharding.warm`` then wraps whatever resulted in ``warm``.  With
    both off this is the identity, so existing specs compile unchanged.
    """
    solver_name = str(spec["scenario.solver"])
    solver_kwargs = dict(spec["scenario.solver_kwargs"] or {})  # type: ignore[arg-type]
    if spec["sharding.enabled"]:
        solver_kwargs = {
            "base": solver_name,
            "base_kwargs": solver_kwargs,
            "strategy": str(spec["sharding.strategy"]),
            "n_shards": int(spec["sharding.shards"]),  # type: ignore[arg-type]
            "refine": bool(spec["sharding.refine"]),
            "parallel_workers": int(spec["sharding.parallel_workers"]),  # type: ignore[arg-type]
        }
        solver_name = "sharded"
    if spec["sharding.warm"]:
        solver_kwargs = {
            "base": solver_name,
            "base_kwargs": solver_kwargs,
            "churn_threshold": float(spec["sharding.churn_threshold"]),  # type: ignore[arg-type]
            "exact": bool(spec["sharding.exact"]),
        }
        solver_name = "warm"
    return solver_name, solver_kwargs


def _fault_plan(spec: NormalizedSpec):
    """Build the FaultPlan: uniform base, explicit per-kind overrides."""
    import dataclasses

    from repro.resilience import FaultPlan

    rate = float(spec["faults.rate"])  # type: ignore[arg-type]
    individual = {
        kind: float(spec[f"faults.{kind}"])  # type: ignore[arg-type]
        for kind in (
            "no_show_rate",
            "answer_drop_rate",
            "task_cancel_rate",
            "solver_failure_rate",
        )
    }
    if not (rate > 0 or any(value > 0 for value in individual.values())):
        return None
    plan = FaultPlan.uniform(rate, seed=int(spec["faults.seed"]))  # type: ignore[arg-type]
    overrides = {
        kind: value
        for kind, value in individual.items()
        if spec.is_set(f"faults.{kind}")
    }
    if overrides:
        plan = dataclasses.replace(plan, **overrides)
    return plan
