"""Command-line interface: ``python -m repro <command>``.

Four commands cover the operational surface a platform engineer needs:

* ``generate`` — materialize a workload to a JSON market file;
* ``solve`` — load a market, run a solver, report both sides' totals
  (optionally saving the assignment);
* ``simulate`` — run the round-based simulation and print per-round
  metrics;
* ``experiment`` — run one of the registered evaluation experiments
  and print its table (and, for figure-type results, an ASCII chart).

Plus operational commands: ``sweep`` (spec-lattice sweeps under the
supervised pool with ``--checkpoint``/``--resume`` durability and
chaos injection), ``compare`` (solver comparison with CIs),
``events`` (continuous-time simulation), ``lint`` (static analysis),
``spec`` (scenario spec files: ``check`` validates them without
building a market, ``expand`` enumerates their ``[axes]`` lattice,
``schema`` prints the knob catalogue; see ``docs/scenarios.md``),
``bench`` (performance suites with baseline regression checks),
``trace`` (replay/summarize a JSONL trace exported by a run with
``--trace``), ``monitor`` (run a spec under live telemetry and gate
on its ``[slo]`` burn-rate rules — exit 1 on a page-level alert),
``profile`` (span-attributed sampling profiler over a bench case;
``--profile`` also rides on simulate/stream/bench), and ``obs``
(cross-run observability: the run registry, ``obs diff`` regression
detection, and the ``obs report`` HTML dashboard; see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.benefit.mutual import LinearCombiner
from repro.core.problem import MBAProblem
from repro.core.solvers import get_solver, list_solvers
from repro.datagen.traces import workload_registry
from repro.errors import ReproError
from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.io import (
    assignment_to_dict,
    load_market,
    save_market,
)
from repro.market.retention import RetentionModel
from repro.resilience import RESILIENCE_PROFILES, FaultPlan
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario


def _add_register_arguments(parser: argparse.ArgumentParser) -> None:
    """``--register``/``--registry`` for every command with ``--trace``."""
    parser.add_argument(
        "--register", action="store_true",
        help="archive the exported trace in the run registry so later "
        "runs can `obs diff`/`obs report` against it (requires --trace)",
    )
    parser.add_argument(
        "--registry", default=obs.DEFAULT_REGISTRY_ROOT, metavar="DIR",
        help="run-registry directory (default: %(default)s)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mutual benefit aware task assignment (ICDE 2016 repro)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a workload market JSON"
    )
    generate.add_argument(
        "workload", choices=sorted(workload_registry()),
    )
    generate.add_argument("output", help="output JSON path")
    generate.add_argument("--workers", type=int, default=100)
    generate.add_argument("--tasks", type=int, default=50)
    generate.add_argument("--seed", type=int, default=0)

    solve = commands.add_parser("solve", help="assign a saved market")
    solve.add_argument("market", help="market JSON path")
    solve.add_argument("--solver", default="flow", choices=list_solvers())
    solve.add_argument("--lam", type=float, default=0.5)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--output", help="write the assignment JSON here")
    solve.add_argument(
        "--report", action="store_true",
        help="print the full diagnostic report",
    )

    simulate = commands.add_parser(
        "simulate", help="run the round-based simulation"
    )
    simulate.add_argument("market", help="market JSON path")
    simulate.add_argument("--solver", default="flow", choices=list_solvers())
    simulate.add_argument("--rounds", type=int, default=10)
    simulate.add_argument("--lam", type=float, default=0.5)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--no-retention", action="store_true",
        help="disable worker churn",
    )
    simulate.add_argument(
        "--checkpoint", metavar="DIR",
        help="checkpoint directory: the full simulation state is "
        "saved atomically each round so an interrupted run can "
        "--resume bit-identically (see docs/resilience.md)",
    )
    simulate.add_argument(
        "--resume", action="store_true",
        help="resume from the state saved under --checkpoint instead "
        "of starting at round 0",
    )
    simulate.add_argument(
        "--resilience", default="off",
        choices=("off", *sorted(RESILIENCE_PROFILES)),
        help="wrap the solver in the resilient executor (deadline, "
        "escalating retries, fallback chain); 'off' runs it bare and "
        "a failed round degrades to an empty round",
    )
    simulate.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="RATE",
        help="inject faults: each edge no-shows / loses its answer "
        "with RATE, tasks cancel and the solver is failed with RATE/2 "
        "(seeded by --fault-seed; see docs/resilience.md)",
    )
    simulate.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plan's own random stream",
    )
    simulate.add_argument(
        "--trace", metavar="PATH",
        help="record per-round spans and counters (repro.obs) and "
        "export them to PATH as JSONL; summarize with "
        "`python -m repro trace PATH`",
    )
    simulate.add_argument(
        "--live", action="store_true",
        help="with --trace: stream one span/counter line per round as "
        "it closes, instead of staying silent until the run ends",
    )
    simulate.add_argument(
        "--profile", metavar="PATH",
        help="sample the run with the span-attributed profiler and "
        "write collapsed-stack flamegraph lines to PATH",
    )
    _add_register_arguments(simulate)

    experiment = commands.add_parser(
        "experiment", help="run a registered evaluation experiment"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=1.0)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--trace", metavar="PATH",
        help="record spans and counters while the experiment runs and "
        "export them to PATH as JSONL",
    )
    _add_register_arguments(experiment)

    sweep = commands.add_parser(
        "sweep",
        help="sweep a scenario spec's [axes] lattice under the "
        "supervised process pool, with checkpoint/resume durability "
        "and optional chaos injection",
    )
    sweep.add_argument("spec", help="spec file (.toml or .json)")
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size; 1 runs serially in this process",
    )
    sweep.add_argument(
        "--repetitions", type=int, default=3,
        help="seeded repetitions per lattice point",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--limit", type=int, default=None, metavar="K",
        help="deterministically subsample K valid lattice points",
    )
    sweep.add_argument(
        "--mp-context", default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method (default: the platform's)",
    )
    # Durability knobs: an unset flag (None default) falls back to the
    # spec's [runtime] table, so specs carry their own policy and the
    # command line only overrides it.
    sweep.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="checkpoint directory: completed points persist "
        "atomically as they finish (default: runtime.checkpoint_dir)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="skip the points already recorded under the checkpoint "
        "directory (or set runtime.resume in the spec)",
    )
    sweep.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock bound under the pool; 0 disables "
        "(default: runtime.task_timeout)",
    )
    sweep.add_argument(
        "--max-point-retries", type=int, default=None, metavar="N",
        help="retries with seeded backoff for a point that raises "
        "(default: runtime.max_point_retries)",
    )
    sweep.add_argument(
        "--quarantine-after", type=int, default=None, metavar="N",
        help="definite crashes after which a point is quarantined "
        "(default: runtime.quarantine_after)",
    )
    # Chaos injection (durability testing; needs --workers > 1).
    sweep.add_argument(
        "--chaos-kill", type=float, default=0.0, metavar="RATE",
        help="SIGKILL the worker before a point with RATE",
    )
    sweep.add_argument(
        "--chaos-hang", type=float, default=0.0, metavar="RATE",
        help="hang the worker before a point with RATE (needs "
        "--task-timeout to recover)",
    )
    sweep.add_argument(
        "--chaos-slow", type=float, default=0.0, metavar="RATE",
        help="delay a point with RATE",
    )
    sweep.add_argument("--chaos-seed", type=int, default=0)
    sweep.add_argument(
        "--chaos-hang-seconds", type=float, default=3600.0,
        help="how long an injected hang sleeps",
    )

    compare = commands.add_parser(
        "compare",
        help="compare solvers over seeded instances with CIs + sign test",
    )
    compare.add_argument(
        "solvers", nargs="+",
        help="registered solver names; first is the baseline",
    )
    compare.add_argument(
        "--workload", default="synthetic-uniform",
        choices=sorted(workload_registry()),
    )
    compare.add_argument("--workers", type=int, default=60)
    compare.add_argument("--tasks", type=int, default=30)
    compare.add_argument("--instances", type=int, default=20)
    compare.add_argument("--lam", type=float, default=0.5)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--trace", metavar="PATH",
        help="record spans and counters during the comparison and "
        "export them to PATH as JSONL",
    )
    _add_register_arguments(compare)

    events = commands.add_parser(
        "events", help="run the event-driven continuous-time simulation"
    )
    events.add_argument("market", help="market JSON path")
    events.add_argument("--horizon", type=float, default=100.0)
    events.add_argument("--task-rate", type=float, default=1.0)
    events.add_argument("--worker-rate", type=float, default=1.0)
    events.add_argument("--deadline", type=float, default=10.0)
    events.add_argument("--session", type=float, default=5.0)
    events.add_argument(
        "--policy", default="greedy", choices=("greedy", "threshold")
    )
    events.add_argument("--seed", type=int, default=0)
    events.add_argument(
        "--trace", metavar="PATH",
        help="record spans and counters during the event simulation "
        "and export them to PATH as JSONL",
    )
    _add_register_arguments(events)

    stream = commands.add_parser(
        "stream",
        help="run the streaming dispatch service over a spec's market: "
        "continuous arrivals, incremental assignment (see "
        "docs/streaming.md)",
    )
    stream.add_argument(
        "spec", help="spec file (.toml or .json) with a [stream] section"
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--output", metavar="PATH",
        help="append assignment records to PATH as JSONL, flushed in "
        "writer-batch-sized chunks while the market runs",
    )
    stream.add_argument(
        "--trace", metavar="PATH",
        help="record spans, counters, and latency gauges during the "
        "dispatch run and export them to PATH as JSONL",
    )
    stream.add_argument(
        "--live", action="store_true",
        help="print a progress line as assignment records are emitted "
        "(works with or without --trace)",
    )
    stream.add_argument(
        "--profile", metavar="PATH",
        help="sample the dispatch run with the span-attributed "
        "profiler and write collapsed-stack flamegraph lines to PATH",
    )
    _add_register_arguments(stream)

    lint = commands.add_parser(
        "lint",
        help="run the repro static-analysis pass (RNG discipline, "
        "solver contract, import layering, numeric hygiene)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to check (default: the installed "
        "repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="output_format",
    )
    lint.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    lint.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )

    spec = commands.add_parser(
        "spec",
        help="scenario specs: statically check TOML/JSON spec files, "
        "expand their [axes] lattice, print the knob schema",
    )
    spec_actions = spec.add_subparsers(dest="spec_command", required=True)

    spec_check = spec_actions.add_parser(
        "check",
        help="validate spec files without building a single market; "
        "exits 1 on any error diagnostic",
    )
    spec_check.add_argument(
        "paths", nargs="+", help="spec files (.toml or .json)"
    )
    spec_check.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors",
    )

    spec_expand = spec_actions.add_parser(
        "expand",
        help="enumerate the spec's [axes] product, keeping only "
        "checker-clean scenarios (dropped corners are counted)",
    )
    spec_expand.add_argument("path", help="spec file (.toml or .json)")
    spec_expand.add_argument(
        "--sample", type=int, default=None, metavar="K",
        help="deterministically subsample K valid points",
    )
    spec_expand.add_argument(
        "--seed", type=int, default=0,
        help="seed of the --sample draw",
    )
    spec_expand.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON object per point (id, axes, payload) "
        "instead of the table",
    )

    spec_actions.add_parser(
        "schema", help="print the declared knob catalogue"
    )

    bench = commands.add_parser(
        "bench",
        help="run the performance suites, write BENCH_<tag>.json, and "
        "fail on regression vs the committed baseline",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small instances (CI smoke pass, seconds not minutes)",
    )
    bench.add_argument(
        "--scale", type=float, default=1.0,
        help="multiply every instance size",
    )
    bench.add_argument(
        "--suite", action="append", metavar="SUITE",
        help="run only these suites (repeatable; default: all)",
    )
    bench.add_argument(
        "--tag", default="local",
        help="label for the BENCH_<tag>.json artifact",
    )
    bench.add_argument(
        "--output-dir", default=".",
        help="directory the BENCH_<tag>.json is written into",
    )
    bench.add_argument(
        "--baseline", default="benchmarks/perf_baseline.json",
        help="committed baseline file to compare against",
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    bench.add_argument(
        "--threshold", type=float, default=None,
        help="regression allowance as a fraction of the baseline wall "
        "time (default 0.5: fail beyond 1.5x the baseline)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N timing repeats per case",
    )
    bench.add_argument(
        "--no-fail", action="store_true",
        help="report regressions but exit 0 anyway (checksum "
        "mismatches still fail)",
    )
    bench.add_argument(
        "--registry", default=None, metavar="DIR",
        help="run registry used to span-diff this run against the "
        "previous bench run of the same tag (default: "
        "<output-dir>/.repro-runs)",
    )
    bench.add_argument(
        "--no-register", action="store_true",
        help="skip archiving this run's trace and the advisory span "
        "diff against the previous run of the same tag",
    )
    bench.add_argument(
        "--profile", metavar="PATH",
        help="sample the whole bench run with the span-attributed "
        "profiler and write collapsed-stack flamegraph lines to PATH",
    )

    monitor = commands.add_parser(
        "monitor",
        help="run a spec under live telemetry and gate on its [slo] "
        "burn-rate rules: exits 1 when any rule pages (see "
        "docs/observability.md)",
    )
    monitor.add_argument(
        "spec",
        help="spec file (.toml or .json); [stream] knobs select the "
        "streaming dispatcher, otherwise the round engine runs",
    )
    monitor.add_argument(
        "--slo", metavar="FILE", default=None,
        help="TOML/JSON file whose [slo] table overrides the spec's "
        "own [slo] knobs (shared gate thresholds across specs)",
    )
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument(
        "--alerts", metavar="PATH", default=None,
        help="write the JSONL alert log (one line per state "
        "transition, schema repro-obs-alerts/1) to PATH",
    )

    profile_cmd = commands.add_parser(
        "profile",
        help="run one bench case under the span-attributed sampling "
        "profiler and write collapsed-stack flamegraph lines "
        "(flamegraph.pl / speedscope compatible)",
    )
    profile_cmd.add_argument(
        "case", nargs="?", default=None,
        help="bench case name, e.g. 'flow/n=15' (--list shows names)",
    )
    profile_cmd.add_argument(
        "--list", action="store_true", dest="list_cases",
        help="list the available case names and exit",
    )
    profile_cmd.add_argument(
        "--output", default="profile.collapsed", metavar="PATH",
        help="collapsed-stack output path (default: %(default)s)",
    )
    profile_cmd.add_argument(
        "--quick", action="store_true",
        help="small instances (same sizes as `bench --quick`)",
    )
    profile_cmd.add_argument(
        "--scale", type=float, default=1.0,
        help="multiply the instance size",
    )
    profile_cmd.add_argument(
        "--interval", type=float, default=obs.DEFAULT_INTERVAL,
        help="sampling interval in seconds (default: %(default)s)",
    )

    trace = commands.add_parser(
        "trace",
        help="validate and summarize a JSONL trace exported with "
        "--trace (top spans by self time, counter totals, per-round "
        "table)",
    )
    trace.add_argument("path", help="trace JSONL path")
    trace.add_argument(
        "--top", type=int, default=10,
        help="how many span names to list in the time ranking",
    )

    obs_cmd = commands.add_parser(
        "obs",
        help="cross-run observability: the run registry "
        "(register/list/prune), span-level regression diffs, and the "
        "self-contained HTML dashboard",
    )
    obs_actions = obs_cmd.add_subparsers(dest="obs_command", required=True)

    obs_register = obs_actions.add_parser(
        "register", help="archive a trace file in the run registry"
    )
    obs_register.add_argument("trace", help="trace JSONL path")
    obs_register.add_argument(
        "--tag", default=None,
        help="registry tag (default: the trace header's tag)",
    )
    obs_register.add_argument("--seed", type=int, default=None)
    obs_register.add_argument(
        "--scenario", default=None,
        help="free-form scenario label stored in the index",
    )

    obs_list = obs_actions.add_parser(
        "list", help="list registered runs, oldest first"
    )
    obs_list.add_argument("--tag", default=None, help="only this tag")

    obs_prune = obs_actions.add_parser(
        "prune", help="drop all but the newest KEEP registered runs"
    )
    obs_prune.add_argument("keep", type=int, metavar="KEEP")
    obs_prune.add_argument("--tag", default=None, help="only this tag")

    obs_diff = obs_actions.add_parser(
        "diff",
        help="per-span self-time/counter diff of two runs; exits 1 "
        "when span self time regresses beyond the threshold",
    )
    obs_diff.add_argument(
        "a", help="baseline run: trace path, run-id prefix, or tag"
    )
    obs_diff.add_argument(
        "b", help="candidate run: trace path, run-id prefix, or tag"
    )
    obs_diff.add_argument(
        "--threshold", type=float, default=obs.DEFAULT_DIFF_THRESHOLD,
        help="regression allowance as a fraction of baseline self "
        "time (default %(default)s: flag beyond 1.5x)",
    )
    obs_diff.add_argument(
        "--noise-floor", type=float, default=obs.DEFAULT_NOISE_FLOOR,
        help="ignore self-time growth below this many seconds "
        "(default %(default)s)",
    )
    obs_diff.add_argument(
        "--top", type=int, default=15,
        help="how many span rows to print",
    )

    obs_report = obs_actions.add_parser(
        "report",
        help="render a run as a self-contained HTML dashboard "
        "(timeline, flame view, counter sparklines); give two runs "
        "for a side-by-side diff section",
    )
    obs_report.add_argument(
        "runs", nargs="+", metavar="RUN",
        help="one run, or `BASELINE CANDIDATE` (each a trace path, "
        "run-id prefix, or tag)",
    )
    obs_report.add_argument(
        "--output", default="obs_report.html", metavar="PATH",
        help="HTML output path (default: %(default)s)",
    )
    obs_report.add_argument(
        "--title", default=None, help="page title override"
    )
    obs_report.add_argument(
        "--threshold", type=float, default=obs.DEFAULT_DIFF_THRESHOLD,
        help="diff regression threshold (two-run form only)",
    )
    obs_report.add_argument(
        "--noise-floor", type=float, default=obs.DEFAULT_NOISE_FLOOR,
        help="diff noise floor in seconds (two-run form only)",
    )

    for sub in (obs_register, obs_list, obs_prune, obs_diff, obs_report):
        sub.add_argument(
            "--registry", default=obs.DEFAULT_REGISTRY_ROOT,
            metavar="DIR",
            help="run-registry directory (default: %(default)s)",
        )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    make = workload_registry()[args.workload]
    market = make(n_workers=args.workers, n_tasks=args.tasks, seed=args.seed)
    save_market(market, args.output)
    print(f"wrote {market} to {args.output}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    market = load_market(args.market)
    problem = MBAProblem(market, combiner=LinearCombiner(args.lam))
    assignment = get_solver(args.solver).solve(problem, seed=args.seed)
    print(
        f"{args.solver}: {len(assignment)} edges | "
        f"requester {assignment.requester_total():.3f} | "
        f"worker {assignment.worker_total():.3f} | "
        f"combined {assignment.combined_total():.3f}"
    )
    if args.report:
        from repro.core.analysis import analyze

        print()
        print(analyze(assignment).render())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(assignment_to_dict(assignment), handle, indent=2)
        print(f"wrote assignment to {args.output}")
    return 0


def _finish_trace(
    tracer: obs.Tracer,
    args: argparse.Namespace,
    tag: str,
    scenario: str | None = None,
) -> None:
    """Export a command's tracer and (with ``--register``) archive it."""
    path = obs.write_trace(tracer, args.trace, tag=tag)
    print(f"wrote trace ({len(tracer.spans)} spans) to {path}")
    if getattr(args, "register", False):
        registry = obs.RunRegistry(args.registry)
        entry = registry.register(
            path,
            tag=tag,
            seed=getattr(args, "seed", None),
            scenario=scenario,
            git_rev=obs.current_git_rev(),
        )
        print(
            f"registered run {entry.tag}@{entry.run_id} "
            f"in {registry.root}"
        )


def _profiling(args: argparse.Namespace, tracer: obs.Tracer):
    """A running :class:`~repro.obs.SpanProfiler` context when
    ``--profile`` was given, else a null context yielding ``None``."""
    import contextlib

    if not getattr(args, "profile", None):
        return contextlib.nullcontext(None)
    return obs.SpanProfiler(tracer=tracer)


def _finish_profile(profiler, args: argparse.Namespace) -> None:
    """Write the ``--profile`` collapsed-stack file and say where the
    samples landed."""
    if profiler is None:
        return
    path = profiler.write(args.profile)
    totals = profiler.span_totals()
    top = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    hot = ", ".join(f"{name} ({count})" for name, count in top[:3])
    print(
        f"wrote profile ({profiler.n_samples} samples, "
        f"{len(profiler.samples)} stacks) to {path}"
        + (f" | hottest spans: {hot}" if hot else "")
    )


def _live_printer(tracer: obs.Tracer):
    """Tracer sink for ``simulate --trace --live``.

    Child spans close before their parent, so by the time the sink
    sees a root ``round`` span every stage inside it is already
    recorded; spans appended after the round opened are exactly the
    ones with a higher index, so the scan stays bounded by the round's
    own size.  Counters are cumulative, so per-round work is the delta
    against the previous round's snapshot.
    """
    last_counters: dict[str, float] = {}

    def on_close(record: obs.SpanRecord) -> None:
        if record.name != "round" or record.depth != 0:
            return
        stages: dict[str, float] = {}
        for span in tracer.spans[record.index + 1:]:
            if span.parent == record.index and not span.open:
                stages[span.name] = (
                    stages.get(span.name, 0.0) + span.duration
                )
        counters = tracer.metrics.counters
        deltas = {
            name: counters[name] - last_counters.get(name, 0.0)
            for name in sorted(counters)
            if counters[name] != last_counters.get(name, 0.0)
        }
        last_counters.clear()
        last_counters.update(counters)
        index = record.tags.get("index", "?")
        outcome = record.tags.get("outcome", "ok")
        parts = [f"[round {index}] {record.duration:.4f}s {outcome}"]
        if stages:
            parts.append(
                " ".join(
                    f"{name}={duration:.4f}s"
                    for name, duration in stages.items()
                )
            )
        if deltas:
            parts.append(
                " ".join(
                    f"{name}=+{value:g}"
                    for name, value in deltas.items()
                )
            )
        print(" | ".join(parts), flush=True)

    return on_close


def _cmd_simulate(args: argparse.Namespace) -> int:
    market = load_market(args.market)
    fault_plan = (
        FaultPlan.uniform(args.fault_rate, seed=args.fault_seed)
        if args.fault_rate > 0
        else None
    )
    scenario = Scenario(
        market=market,
        solver_name=args.solver,
        combiner=LinearCombiner(args.lam),
        n_rounds=args.rounds,
        retention=None if args.no_retention else RetentionModel(),
        fault_plan=fault_plan,
        resilience=None if args.resilience == "off" else args.resilience,
    )
    if args.live and not args.trace:
        print("error: --live requires --trace", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    run_kwargs = dict(
        seed=args.seed, checkpoint=args.checkpoint, resume=args.resume
    )
    try:
        if args.trace or args.profile:
            tracer = obs.Tracer()
            if args.live:
                tracer.sink = _live_printer(tracer)
            with obs.tracing(tracer):
                with _profiling(args, tracer) as profiler:
                    result = Simulation(scenario).run(**run_kwargs)
            if args.trace:
                _finish_trace(
                    tracer, args, tag="simulate",
                    scenario=f"{args.solver}:{args.market}",
                )
            _finish_profile(profiler, args)
        else:
            result = Simulation(scenario).run(**run_kwargs)
    except KeyboardInterrupt:
        if args.checkpoint:
            print(
                f"\ninterrupted; state saved — rerun with "
                f"--checkpoint {args.checkpoint} --resume to continue",
                file=sys.stderr,
            )
        else:
            print("\ninterrupted", file=sys.stderr)
        return 130
    print(
        f"{'round':>5s} {'active':>6s} {'edges':>5s} {'accuracy':>8s} "
        f"{'participation':>13s} {'faulted':>7s} {'retries':>7s} "
        f"{'tier':>4s}"
    )
    for r in result.rounds:
        print(
            f"{r.round_index:5d} {r.n_active_workers:6d} "
            f"{r.n_assigned_edges:5d} {r.aggregated_accuracy:8.3f} "
            f"{r.participation_rate:13.3f} {r.faulted_edges:7d} "
            f"{r.solver_retries:7d} {r.fallback_tier:4d}"
        )
    print(
        f"\nmean accuracy {result.mean_accuracy:.3f}, final participation "
        f"{result.final_participation:.3f}"
    )
    if fault_plan is not None or scenario.resilience is not None:
        print(
            f"faulted edges {result.total_faulted_edges}, solver retries "
            f"{result.total_solver_retries}, degraded rounds "
            f"{result.degraded_rounds}/{len(result.rounds)}"
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.trace:
        with obs.tracing() as tracer:
            table = run_experiment(args.id, scale=args.scale, seed=args.seed)
        _finish_trace(
            tracer, args, tag=f"experiment-{args.id}", scenario=args.id
        )
    else:
        table = run_experiment(args.id, scale=args.scale, seed=args.seed)
    print(table.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.eval.sweep import sweep_spec
    from repro.resilience.faults import ChaosPlan
    from repro.resilience.runtime import RuntimePolicy
    from repro.spec.compile import load_spec, normalize

    # The spec's [runtime] table supplies the durability defaults; an
    # explicitly-given flag (non-None) overrides it.  Lattice checking
    # itself happens inside sweep_spec.
    spec, diagnostics = normalize(load_spec(args.spec))
    errors = [d for d in diagnostics if d.severity == "error"]
    if spec is None or errors:
        for diagnostic in errors or diagnostics:
            print(f"  {diagnostic.render()}", file=sys.stderr)
        print(f"error: invalid spec {args.spec}", file=sys.stderr)
        return 2
    checkpoint = (
        args.checkpoint
        if args.checkpoint is not None
        else str(spec["runtime.checkpoint_dir"]) or None
    )
    resume = args.resume or bool(spec["runtime.resume"])
    if resume and checkpoint is None:
        print(
            "error: --resume requires --checkpoint (or "
            "runtime.checkpoint_dir in the spec)",
            file=sys.stderr,
        )
        return 2
    task_timeout = (
        args.task_timeout
        if args.task_timeout is not None
        else float(spec["runtime.task_timeout"])  # type: ignore[arg-type]
    )
    policy = RuntimePolicy(
        task_timeout=task_timeout if task_timeout > 0 else None,
        max_point_retries=(
            args.max_point_retries
            if args.max_point_retries is not None
            else int(spec["runtime.max_point_retries"])  # type: ignore[arg-type]
        ),
        quarantine_after=(
            args.quarantine_after
            if args.quarantine_after is not None
            else int(spec["runtime.quarantine_after"])  # type: ignore[arg-type]
        ),
    )
    chaos = None
    if args.chaos_kill or args.chaos_hang or args.chaos_slow:
        chaos = ChaosPlan(
            seed=args.chaos_seed,
            kill_rate=args.chaos_kill,
            hang_rate=args.chaos_hang,
            slow_rate=args.chaos_slow,
            hang_seconds=args.chaos_hang_seconds,
        )
    result = sweep_spec(
        args.spec,
        repetitions=args.repetitions,
        seed=args.seed,
        workers=args.workers,
        mp_context=args.mp_context,
        limit=args.limit,
        checkpoint=checkpoint,
        resume=resume,
        policy=policy,
        chaos=chaos,
    )
    by_scenario = result.by_scenario()
    if by_scenario:
        print(f"{'scenario':<20s} {'mean value':>10s} {'mean time':>10s}")
        for scenario_id, (value, elapsed) in by_scenario.items():
            print(f"{scenario_id:<20s} {value:10.4f} {elapsed:9.3f}s")
    stats = result.stats
    print(
        f"\nsweep: completed {stats.completed} | skipped {stats.skipped} "
        f"| retries {stats.retries} | worker restarts "
        f"{stats.worker_restarts} | timeouts {stats.timeouts} | "
        f"quarantined {len(stats.quarantined)}"
    )
    for task in stats.quarantined:
        print(
            f"  quarantined point {task.position}: {task.reason} "
            f"({task.crashes} crash(es), {task.errors} error(s))"
        )
    if stats.interrupted:
        hint = (
            f" — rerun with --checkpoint {checkpoint} --resume"
            if checkpoint
            else ""
        )
        print(f"interrupted{hint}", file=sys.stderr)
        return 130
    if stats.quarantined:
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.eval.significance import compare_solvers

    make = workload_registry()[args.workload]

    def factory(rng):
        return make(n_workers=args.workers, n_tasks=args.tasks, seed=rng)

    def run():
        return compare_solvers(
            factory,
            args.solvers,
            n_instances=args.instances,
            lam=args.lam,
            seed=args.seed,
        )

    if args.trace:
        with obs.tracing() as tracer:
            with obs.span(
                "compare",
                workload=args.workload,
                solvers=",".join(args.solvers),
            ):
                table, _comparisons = run()
        _finish_trace(
            tracer, args, tag="compare",
            scenario=f"{args.workload}:{','.join(args.solvers)}",
        )
    else:
        table, _comparisons = run()
    print(table.render())
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    from repro.sim.events import EventSimConfig, EventSimulation

    market = load_market(args.market)
    config = EventSimConfig(
        horizon=args.horizon,
        task_rate=args.task_rate,
        worker_rate=args.worker_rate,
        deadline=args.deadline,
        session_length=args.session,
        policy=args.policy,
    )
    if args.trace:
        with obs.tracing() as tracer:
            with obs.span("events", policy=args.policy):
                result = EventSimulation(market, config).run(seed=args.seed)
        _finish_trace(
            tracer, args, tag="events",
            scenario=f"{args.policy}:{args.market}",
        )
    else:
        result = EventSimulation(market, config).run(seed=args.seed)
    print(
        f"posted {result.posted_tasks} | filled {len(result.assignments)} "
        f"({100 * result.fill_rate:.1f}%) | expired {result.expired_tasks}"
    )
    print(
        f"combined benefit {result.combined_benefit:.3f} | mean wait "
        f"{result.mean_waiting_time:.2f}"
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import contextlib

    from repro.spec import compile_stream
    from repro.stream import BatchWriter, StreamDispatcher

    compiled = compile_stream(args.spec)
    dispatcher = StreamDispatcher(
        compiled.market,
        compiled.config,
        combiner=compiled.combiner,
        scenario=compiled.scenario,
    )

    emitted = 0

    def make_on_record(writer):
        def on_record(record) -> None:
            nonlocal emitted
            emitted += 1
            if writer is not None:
                writer.write(record)
            if args.live and emitted % 100 == 0:
                print(
                    f"[stream] {emitted} assignments "
                    f"(t={record.time:.2f}, wait={record.wait:.2f})",
                    flush=True,
                )

        return on_record

    with contextlib.ExitStack() as stack:
        writer = None
        if args.output:
            writer = stack.enter_context(
                BatchWriter(
                    args.output, batch_size=compiled.config.writer_batch
                )
            )
        on_record = make_on_record(writer)
        if args.trace or args.profile:
            tracer = obs.Tracer()
            with obs.tracing(tracer):
                with _profiling(args, tracer) as profiler:
                    result = dispatcher.run(
                        seed=args.seed, on_record=on_record
                    )
            if args.trace:
                _finish_trace(
                    tracer, args, tag="stream",
                    scenario=f"{compiled.config.policy}:{args.spec}",
                )
            _finish_profile(profiler, args)
        else:
            result = dispatcher.run(seed=args.seed, on_record=on_record)

    if result.round_result is not None:
        rounds = result.round_result.rounds
        print(
            f"round mode: {len(rounds)} rounds | "
            f"{result.posted_tasks} assigned edges | combined benefit "
            f"{result.combined_benefit:.3f}"
        )
        return 0
    print(
        f"posted {result.posted_tasks} | assigned {result.assignments} "
        f"({100 * result.fill_rate:.1f}%) | expired {result.expired_tasks}"
        + (
            f" | dropped {result.dropped_tasks}"
            if result.dropped_tasks
            else ""
        )
    )
    summary = result.latency_summary()
    if summary:
        print(
            "time-to-assignment "
            + " ".join(
                f"{key}={summary[key]:.3f}"
                for key in ("p50", "p95", "p99")
                if key in summary
            )
            + f" | max queue depth {result.max_queue_depth}"
        )
    print(
        f"combined benefit {result.combined_benefit:.3f} | "
        f"{result.assignments_per_second:.0f} assignments/s "
        f"({result.wall_time:.2f}s wall)"
    )
    if args.output:
        print(f"wrote {emitted} records to {args.output}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        RULE_REGISTRY,
        LintConfig,
        lint_paths,
        render_json,
        render_rule_list,
        render_text,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0
    requested = set(args.select or ()) | set(args.ignore or ())
    unknown = sorted(requested - set(RULE_REGISTRY))
    if unknown:
        print(
            f"error: unknown rule id(s): {', '.join(unknown)} "
            "(see --list-rules)",
            file=sys.stderr,
        )
        return 2
    paths = args.paths
    if not paths:
        from pathlib import Path

        import repro

        paths = [Path(repro.__file__).parent]
    config = LintConfig(
        select=frozenset(args.select) if args.select else None,
        ignore=frozenset(args.ignore or ()),
    )
    result = lint_paths(paths, config)
    if result.files_checked == 0:
        # "0 violations over 0 files" must never green-light CI.
        print(
            "error: no python files found under: "
            + ", ".join(str(p) for p in paths),
            file=sys.stderr,
        )
        return 2
    renderer = render_json if args.output_format == "json" else render_text
    print(renderer(result))
    return 0 if result.ok else 1


def _cmd_spec(args: argparse.Namespace) -> int:
    # Imported here and kept simulation-free on the check/expand paths:
    # a spec must be judged valid or invalid before any market exists.
    from repro.spec import (
        SCENARIO_KNOBS,
        check_spec,
        expand,
        sample,
    )
    from repro.spec.constraints import RegistryView

    if args.spec_command == "check":
        view = RegistryView.live()
        failures = 0
        for path in args.paths:
            result = check_spec(path, view=view)
            bad = result.errors or (args.strict and result.warnings)
            if bad:
                failures += 1
                print(f"{path}: FAIL")
            else:
                print(
                    f"{path}: ok"
                    + (
                        f" ({len(result.warnings)} warning(s))"
                        if result.warnings
                        else ""
                    )
                )
            for diagnostic in result.diagnostics:
                print(f"  {diagnostic.render()}")
        print(
            f"{len(args.paths) - failures}/{len(args.paths)} spec(s) valid"
        )
        return 1 if failures else 0
    if args.spec_command == "expand":
        lattice = (
            expand(args.path)
            if args.sample is None
            else sample(args.path, args.sample, seed=args.seed)
        )
        if args.as_json:
            for point in lattice.points:
                print(
                    json.dumps(
                        {
                            "id": point.id,
                            "axes": point.axis_values,
                            "payload": point.payload,
                        },
                        sort_keys=True,
                    )
                )
            return 0
        axes = sorted(lattice.base.axes)
        header = " ".join(f"{name:<24s}" for name in axes)
        print(f"{'id':<20s} {header}".rstrip())
        for point in lattice.points:
            row = " ".join(
                f"{point.axis_values[name]!s:<24s}" for name in axes
            )
            print(f"{point.id:<20s} {row}".rstrip())
        print(
            f"\n{len(lattice.points)} valid scenario(s) of "
            f"{lattice.enumerated} enumerated"
            + (
                f"; {len(lattice.dropped)} dropped by the checker"
                if lattice.dropped
                else ""
            )
        )
        for dropped in lattice.dropped:
            codes = ", ".join(
                sorted({d.code for d in dropped.diagnostics})
            )
            print(f"  dropped {dropped.axis_values} ({codes})")
        return 0
    if args.spec_command == "schema":
        section = None
        for knob in SCENARIO_KNOBS:
            prefix = knob.name.split(".", 1)[0]
            if prefix != section:
                section = prefix
                print(f"[{section}]")
            name = knob.name.split(".", 1)[1]
            domain = knob.domain.render()
            default = (
                "(required)" if knob.required else repr(knob.default)
            )
            print(
                f"  {name:<20s} {knob.type:<6s} {default:<12s} "
                f"{domain:<18s} {knob.description}"
            )
        return 0
    raise ReproError(f"unknown spec subcommand {args.spec_command!r}")


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.perf import (
        DEFAULT_THRESHOLD,
        bench_payload,
        build_suites,
        find_regressions,
        load_baseline,
        register_and_diff,
        render_text,
        run_cases,
        save_baseline,
        write_bench_json,
    )

    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    suites = build_suites(quick=args.quick, scale=args.scale)
    # Bench runs always collect obs metrics: the counters (bidding
    # rounds, augmenting paths, ...) ship inside BENCH_<tag>.json so a
    # wall-time change can be attributed to work done, not guessed at.
    # Overhead is a handful of dict updates per solver call — far
    # below the harness's measurement noise.
    with obs.tracing() as tracer:
        with _profiling(args, tracer) as profiler:
            results = run_cases(
                suites,
                only=args.suite,
                repeats=args.repeats,
                progress=lambda line: print(
                    f"  running {line}", file=sys.stderr
                ),
            )
    _finish_profile(profiler, args)
    obs_report = obs.RunReport.from_tracer(tracer).to_dict()
    if args.update_baseline:
        save_baseline(results, args.baseline, tag=args.tag)
        print(f"wrote baseline for {len(results)} cases to {args.baseline}")
        baseline = load_baseline(args.baseline)
        regressions = []
    else:
        baseline = load_baseline(args.baseline)
        regressions = find_regressions(results, baseline, threshold)
    payload = bench_payload(
        results,
        regressions,
        baseline,
        tag=args.tag,
        threshold=threshold,
        quick=args.quick,
        scale=args.scale,
        obs_report=obs_report,
    )
    path = write_bench_json(payload, args.output_dir)
    print(render_text(payload))
    print(f"wrote {path}")
    if not args.no_register:
        # Advisory span-level diff against the previous run of this
        # tag: the committed baseline above decides the exit code; the
        # diff localizes *which stage* moved when it does.
        registry_root = (
            args.registry
            if args.registry is not None
            else str(Path(args.output_dir) / obs.DEFAULT_REGISTRY_ROOT)
        )
        entry, trace_diff = register_and_diff(
            tracer, tag=args.tag, registry_root=registry_root
        )
        print(
            f"registered bench trace {entry.tag}@{entry.run_id} "
            f"in {registry_root}"
        )
        if trace_diff is not None:
            print()
            print(obs.render_diff(trace_diff))
    if payload["checksum_mismatches"]:
        return 1
    if regressions and not args.no_fail:
        return 1
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.spec import (
        check_spec,
        compile_slo,
        compile_spec,
        compile_stream,
        load_spec,
    )
    from repro.spec.constraints import RegistryView

    view = RegistryView.live()
    payload = load_spec(args.spec)
    if args.slo:
        override = load_spec(args.slo)
        table = override.get("slo")
        if not isinstance(table, dict) or not table:
            print(
                f"error: {args.slo} has no [slo] table to override "
                "with",
                file=sys.stderr,
            )
            return 2
        merged = dict(payload.get("slo") or {})
        merged.update(table)
        payload = {**payload, "slo": merged}
    rules, window = compile_slo(payload, view=view)
    if not rules:
        print(
            "error: no [slo] thresholds configured — nothing to "
            "monitor; set at least one slo.* threshold knob "
            "(or pass --slo)",
            file=sys.stderr,
        )
        return 2
    result = check_spec(payload, view=view)
    assert result.spec is not None  # compile_slo already validated
    stream_mode = any(
        name.startswith("stream.") for name in result.spec.explicit
    )

    # The monitor owns the run, so it installs the store up front:
    # every scrape site then aggregates into slo.window-wide buckets.
    tracer = obs.Tracer()
    tracer.timeseries = obs.TimeseriesStore(window=window)
    with obs.tracing(tracer):
        if stream_mode:
            from repro.stream import StreamDispatcher

            compiled = compile_stream(payload, view=view)
            StreamDispatcher(
                compiled.market,
                compiled.config,
                combiner=compiled.combiner,
                scenario=compiled.scenario,
            ).run(seed=args.seed)
        else:
            Simulation(compile_spec(payload, view=view)).run(
                seed=args.seed
            )

    monitor = obs.SloMonitor(rules, tracer.timeseries)
    monitor.run()
    print(
        f"{'rule':<16s} {'state':<6s} {'threshold':>10s} "
        f"{'transitions':>11s}"
    )
    for rule in rules:
        transitions = sum(
            1 for event in monitor.events if event.rule == rule.name
        )
        print(
            f"{rule.name:<16s} {monitor.states[rule.name]:<6s} "
            f"{rule.threshold:>10.3f} {transitions:>11d}"
        )
    for event in monitor.events:
        print(
            f"  [{event.state}] {event.rule} at t={event.time:.2f} "
            f"value={event.value:.3f} burn short={event.short_burn:.2f} "
            f"long={event.long_burn:.2f}"
        )
    if args.alerts:
        path = obs.write_alert_log(
            monitor.events, args.alerts, tag=f"monitor:{args.spec}"
        )
        print(f"wrote {len(monitor.events)} alert(s) to {path}")
    if monitor.paged:
        print("SLO verdict: PAGE")
        return 1
    print(f"SLO verdict: {monitor.worst_state.upper()}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.perf import build_suites

    suites = build_suites(quick=args.quick, scale=args.scale)
    cases = {
        case.name: case
        for suite_cases in suites.values()
        for case in suite_cases
    }
    if args.list_cases:
        for name in cases:
            print(name)
        return 0
    if args.case is None:
        print(
            "error: name a bench case to profile (--list shows names)",
            file=sys.stderr,
        )
        return 2
    case = cases.get(args.case)
    if case is None:
        print(
            f"error: unknown case {args.case!r}; choose from: "
            + ", ".join(cases),
            file=sys.stderr,
        )
        return 2
    tracer = obs.Tracer()
    profiler = obs.SpanProfiler(tracer=tracer, interval=args.interval)
    with obs.tracing(tracer):
        with profiler:
            with obs.span(
                "bench.case",
                name=case.name,
                suite=case.suite,
                solver=case.solver,
            ):
                case.runner(1)
    args.profile = args.output  # reuse the shared reporting helper
    _finish_profile(profiler, args)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = obs.read_trace(args.path)
    print(obs.summarize(trace, top=args.top))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    registry = obs.RunRegistry(args.registry)
    if args.obs_command == "register":
        entry = registry.register(
            args.trace,
            tag=args.tag,
            seed=args.seed,
            scenario=args.scenario,
            git_rev=obs.current_git_rev(),
        )
        print(
            f"registered run {entry.tag}@{entry.run_id} "
            f"in {registry.root}"
        )
        return 0
    if args.obs_command == "list":
        entries = registry.entries(tag=args.tag)
        if not entries:
            print(f"no registered runs in {registry.root}")
            return 0
        print(
            f"{'run_id':<16s} {'tag':<20s} {'spans':>6s} {'seed':>6s} "
            f"{'git':<10s} scenario"
        )
        for entry in entries:
            print(
                f"{entry.run_id:<16s} {entry.tag:<20s} "
                f"{entry.n_spans:6d} "
                f"{'-' if entry.seed is None else entry.seed:>6} "
                f"{entry.git_rev or '-':<10s} {entry.scenario or '-'}"
            )
        return 0
    if args.obs_command == "prune":
        removed = registry.prune(args.keep, tag=args.tag)
        for entry in removed:
            print(f"pruned {entry.tag}@{entry.run_id}")
        print(f"removed {len(removed)} run(s)")
        return 0
    if args.obs_command == "diff":
        path_a, label_a = obs.resolve_trace(args.a, registry)
        path_b, label_b = obs.resolve_trace(args.b, registry)
        diff = obs.diff_traces(
            obs.read_trace(path_a),
            obs.read_trace(path_b),
            threshold=args.threshold,
            noise_floor=args.noise_floor,
            label_a=label_a,
            label_b=label_b,
        )
        print(obs.render_diff(diff, top=args.top))
        return 0 if diff.ok else 1
    if args.obs_command == "report":
        if len(args.runs) > 2:
            print(
                "error: obs report takes one run, or BASELINE "
                "CANDIDATE",
                file=sys.stderr,
            )
            return 2
        diff = None
        if len(args.runs) == 2:
            path_a, label_a = obs.resolve_trace(args.runs[0], registry)
            path_b, label_b = obs.resolve_trace(args.runs[1], registry)
            trace = obs.read_trace(path_b)
            diff = obs.diff_traces(
                obs.read_trace(path_a),
                trace,
                threshold=args.threshold,
                noise_floor=args.noise_floor,
                label_a=label_a,
                label_b=label_b,
            )
            label = label_b
        else:
            path, label = obs.resolve_trace(args.runs[0], registry)
            trace = obs.read_trace(path)
        title = args.title or f"repro trace report — {label}"
        html = obs.render_html(trace, title=title, diff=diff)
        from pathlib import Path

        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(html)
        print(f"wrote report for {label} to {output}")
        if diff is not None and not diff.ok:
            names = ", ".join(d.name for d in diff.regressions)
            print(f"note: diff section flags regression(s): {names}")
        return 0
    raise ReproError(f"unknown obs subcommand {args.obs_command!r}")


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "solve": _cmd_solve,
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "sweep": _cmd_sweep,
        "compare": _cmd_compare,
        "events": _cmd_events,
        "stream": _cmd_stream,
        "lint": _cmd_lint,
        "spec": _cmd_spec,
        "bench": _cmd_bench,
        "monitor": _cmd_monitor,
        "profile": _cmd_profile,
        "trace": _cmd_trace,
        "obs": _cmd_obs,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
