"""Command-line interface: ``python -m repro <command>``.

Four commands cover the operational surface a platform engineer needs:

* ``generate`` — materialize a workload to a JSON market file;
* ``solve`` — load a market, run a solver, report both sides' totals
  (optionally saving the assignment);
* ``simulate`` — run the round-based simulation and print per-round
  metrics;
* ``experiment`` — run one of the registered evaluation experiments
  and print its table (and, for figure-type results, an ASCII chart).

Plus operational commands: ``compare`` (solver comparison with CIs),
``events`` (continuous-time simulation), ``lint`` (static analysis),
``bench`` (performance suites with baseline regression checks), and
``trace`` (replay/summarize a JSONL trace exported by a run with
``--trace``; see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.benefit.mutual import LinearCombiner
from repro.core.problem import MBAProblem
from repro.core.solvers import get_solver, list_solvers
from repro.datagen.traces import workload_registry
from repro.errors import ReproError
from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.io import (
    assignment_to_dict,
    load_market,
    save_market,
)
from repro.market.retention import RetentionModel
from repro.resilience import RESILIENCE_PROFILES, FaultPlan
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mutual benefit aware task assignment (ICDE 2016 repro)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a workload market JSON"
    )
    generate.add_argument(
        "workload", choices=sorted(workload_registry()),
    )
    generate.add_argument("output", help="output JSON path")
    generate.add_argument("--workers", type=int, default=100)
    generate.add_argument("--tasks", type=int, default=50)
    generate.add_argument("--seed", type=int, default=0)

    solve = commands.add_parser("solve", help="assign a saved market")
    solve.add_argument("market", help="market JSON path")
    solve.add_argument("--solver", default="flow", choices=list_solvers())
    solve.add_argument("--lam", type=float, default=0.5)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--output", help="write the assignment JSON here")
    solve.add_argument(
        "--report", action="store_true",
        help="print the full diagnostic report",
    )

    simulate = commands.add_parser(
        "simulate", help="run the round-based simulation"
    )
    simulate.add_argument("market", help="market JSON path")
    simulate.add_argument("--solver", default="flow", choices=list_solvers())
    simulate.add_argument("--rounds", type=int, default=10)
    simulate.add_argument("--lam", type=float, default=0.5)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--no-retention", action="store_true",
        help="disable worker churn",
    )
    simulate.add_argument(
        "--resilience", default="off",
        choices=("off", *sorted(RESILIENCE_PROFILES)),
        help="wrap the solver in the resilient executor (deadline, "
        "escalating retries, fallback chain); 'off' runs it bare and "
        "a failed round degrades to an empty round",
    )
    simulate.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="RATE",
        help="inject faults: each edge no-shows / loses its answer "
        "with RATE, tasks cancel and the solver is failed with RATE/2 "
        "(seeded by --fault-seed; see docs/resilience.md)",
    )
    simulate.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plan's own random stream",
    )
    simulate.add_argument(
        "--trace", metavar="PATH",
        help="record per-round spans and counters (repro.obs) and "
        "export them to PATH as JSONL; summarize with "
        "`python -m repro trace PATH`",
    )

    experiment = commands.add_parser(
        "experiment", help="run a registered evaluation experiment"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=1.0)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--trace", metavar="PATH",
        help="record spans and counters while the experiment runs and "
        "export them to PATH as JSONL",
    )

    compare = commands.add_parser(
        "compare",
        help="compare solvers over seeded instances with CIs + sign test",
    )
    compare.add_argument(
        "solvers", nargs="+",
        help="registered solver names; first is the baseline",
    )
    compare.add_argument(
        "--workload", default="synthetic-uniform",
        choices=sorted(workload_registry()),
    )
    compare.add_argument("--workers", type=int, default=60)
    compare.add_argument("--tasks", type=int, default=30)
    compare.add_argument("--instances", type=int, default=20)
    compare.add_argument("--lam", type=float, default=0.5)
    compare.add_argument("--seed", type=int, default=0)

    events = commands.add_parser(
        "events", help="run the event-driven continuous-time simulation"
    )
    events.add_argument("market", help="market JSON path")
    events.add_argument("--horizon", type=float, default=100.0)
    events.add_argument("--task-rate", type=float, default=1.0)
    events.add_argument("--worker-rate", type=float, default=1.0)
    events.add_argument("--deadline", type=float, default=10.0)
    events.add_argument("--session", type=float, default=5.0)
    events.add_argument(
        "--policy", default="greedy", choices=("greedy", "threshold")
    )
    events.add_argument("--seed", type=int, default=0)

    lint = commands.add_parser(
        "lint",
        help="run the repro static-analysis pass (RNG discipline, "
        "solver contract, import layering, numeric hygiene)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to check (default: the installed "
        "repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="output_format",
    )
    lint.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    lint.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )

    bench = commands.add_parser(
        "bench",
        help="run the performance suites, write BENCH_<tag>.json, and "
        "fail on regression vs the committed baseline",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small instances (CI smoke pass, seconds not minutes)",
    )
    bench.add_argument(
        "--scale", type=float, default=1.0,
        help="multiply every instance size",
    )
    bench.add_argument(
        "--suite", action="append", metavar="SUITE",
        help="run only these suites (repeatable; default: all)",
    )
    bench.add_argument(
        "--tag", default="local",
        help="label for the BENCH_<tag>.json artifact",
    )
    bench.add_argument(
        "--output-dir", default=".",
        help="directory the BENCH_<tag>.json is written into",
    )
    bench.add_argument(
        "--baseline", default="benchmarks/perf_baseline.json",
        help="committed baseline file to compare against",
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    bench.add_argument(
        "--threshold", type=float, default=None,
        help="regression allowance as a fraction of the baseline wall "
        "time (default 0.5: fail beyond 1.5x the baseline)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N timing repeats per case",
    )
    bench.add_argument(
        "--no-fail", action="store_true",
        help="report regressions but exit 0 anyway (checksum "
        "mismatches still fail)",
    )

    trace = commands.add_parser(
        "trace",
        help="validate and summarize a JSONL trace exported with "
        "--trace (top spans by self time, counter totals, per-round "
        "table)",
    )
    trace.add_argument("path", help="trace JSONL path")
    trace.add_argument(
        "--top", type=int, default=10,
        help="how many span names to list in the time ranking",
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    make = workload_registry()[args.workload]
    market = make(n_workers=args.workers, n_tasks=args.tasks, seed=args.seed)
    save_market(market, args.output)
    print(f"wrote {market} to {args.output}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    market = load_market(args.market)
    problem = MBAProblem(market, combiner=LinearCombiner(args.lam))
    assignment = get_solver(args.solver).solve(problem, seed=args.seed)
    print(
        f"{args.solver}: {len(assignment)} edges | "
        f"requester {assignment.requester_total():.3f} | "
        f"worker {assignment.worker_total():.3f} | "
        f"combined {assignment.combined_total():.3f}"
    )
    if args.report:
        from repro.core.analysis import analyze

        print()
        print(analyze(assignment).render())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(assignment_to_dict(assignment), handle, indent=2)
        print(f"wrote assignment to {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    market = load_market(args.market)
    fault_plan = (
        FaultPlan.uniform(args.fault_rate, seed=args.fault_seed)
        if args.fault_rate > 0
        else None
    )
    scenario = Scenario(
        market=market,
        solver_name=args.solver,
        combiner=LinearCombiner(args.lam),
        n_rounds=args.rounds,
        retention=None if args.no_retention else RetentionModel(),
        fault_plan=fault_plan,
        resilience=None if args.resilience == "off" else args.resilience,
    )
    if args.trace:
        with obs.tracing() as tracer:
            result = Simulation(scenario).run(seed=args.seed)
        path = obs.write_trace(tracer, args.trace, tag="simulate")
        print(f"wrote trace ({len(tracer.spans)} spans) to {path}")
    else:
        result = Simulation(scenario).run(seed=args.seed)
    print(
        f"{'round':>5s} {'active':>6s} {'edges':>5s} {'accuracy':>8s} "
        f"{'participation':>13s} {'faulted':>7s} {'retries':>7s} "
        f"{'tier':>4s}"
    )
    for r in result.rounds:
        print(
            f"{r.round_index:5d} {r.n_active_workers:6d} "
            f"{r.n_assigned_edges:5d} {r.aggregated_accuracy:8.3f} "
            f"{r.participation_rate:13.3f} {r.faulted_edges:7d} "
            f"{r.solver_retries:7d} {r.fallback_tier:4d}"
        )
    print(
        f"\nmean accuracy {result.mean_accuracy:.3f}, final participation "
        f"{result.final_participation:.3f}"
    )
    if fault_plan is not None or scenario.resilience is not None:
        print(
            f"faulted edges {result.total_faulted_edges}, solver retries "
            f"{result.total_solver_retries}, degraded rounds "
            f"{result.degraded_rounds}/{len(result.rounds)}"
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.trace:
        with obs.tracing() as tracer:
            table = run_experiment(args.id, scale=args.scale, seed=args.seed)
        path = obs.write_trace(tracer, args.trace, tag=f"experiment-{args.id}")
        print(f"wrote trace ({len(tracer.spans)} spans) to {path}")
    else:
        table = run_experiment(args.id, scale=args.scale, seed=args.seed)
    print(table.render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.eval.significance import compare_solvers

    make = workload_registry()[args.workload]

    def factory(rng):
        return make(n_workers=args.workers, n_tasks=args.tasks, seed=rng)

    table, _comparisons = compare_solvers(
        factory,
        args.solvers,
        n_instances=args.instances,
        lam=args.lam,
        seed=args.seed,
    )
    print(table.render())
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    from repro.sim.events import EventSimConfig, EventSimulation

    market = load_market(args.market)
    config = EventSimConfig(
        horizon=args.horizon,
        task_rate=args.task_rate,
        worker_rate=args.worker_rate,
        deadline=args.deadline,
        session_length=args.session,
        policy=args.policy,
    )
    result = EventSimulation(market, config).run(seed=args.seed)
    print(
        f"posted {result.posted_tasks} | filled {len(result.assignments)} "
        f"({100 * result.fill_rate:.1f}%) | expired {result.expired_tasks}"
    )
    print(
        f"combined benefit {result.combined_benefit:.3f} | mean wait "
        f"{result.mean_waiting_time:.2f}"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        RULE_REGISTRY,
        LintConfig,
        lint_paths,
        render_json,
        render_rule_list,
        render_text,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0
    requested = set(args.select or ()) | set(args.ignore or ())
    unknown = sorted(requested - set(RULE_REGISTRY))
    if unknown:
        print(
            f"error: unknown rule id(s): {', '.join(unknown)} "
            "(see --list-rules)",
            file=sys.stderr,
        )
        return 2
    paths = args.paths
    if not paths:
        from pathlib import Path

        import repro

        paths = [Path(repro.__file__).parent]
    config = LintConfig(
        select=frozenset(args.select) if args.select else None,
        ignore=frozenset(args.ignore or ()),
    )
    result = lint_paths(paths, config)
    if result.files_checked == 0:
        # "0 violations over 0 files" must never green-light CI.
        print(
            "error: no python files found under: "
            + ", ".join(str(p) for p in paths),
            file=sys.stderr,
        )
        return 2
    renderer = render_json if args.output_format == "json" else render_text
    print(renderer(result))
    return 0 if result.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_THRESHOLD,
        bench_payload,
        build_suites,
        find_regressions,
        load_baseline,
        render_text,
        run_cases,
        save_baseline,
        write_bench_json,
    )

    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    suites = build_suites(quick=args.quick, scale=args.scale)
    # Bench runs always collect obs metrics: the counters (bidding
    # rounds, augmenting paths, ...) ship inside BENCH_<tag>.json so a
    # wall-time change can be attributed to work done, not guessed at.
    # Overhead is a handful of dict updates per solver call — far
    # below the harness's measurement noise.
    with obs.tracing() as tracer:
        results = run_cases(
            suites,
            only=args.suite,
            repeats=args.repeats,
            progress=lambda line: print(f"  running {line}", file=sys.stderr),
        )
    obs_report = obs.RunReport.from_tracer(tracer).to_dict()
    if args.update_baseline:
        save_baseline(results, args.baseline, tag=args.tag)
        print(f"wrote baseline for {len(results)} cases to {args.baseline}")
        baseline = load_baseline(args.baseline)
        regressions = []
    else:
        baseline = load_baseline(args.baseline)
        regressions = find_regressions(results, baseline, threshold)
    payload = bench_payload(
        results,
        regressions,
        baseline,
        tag=args.tag,
        threshold=threshold,
        quick=args.quick,
        scale=args.scale,
        obs_report=obs_report,
    )
    path = write_bench_json(payload, args.output_dir)
    print(render_text(payload))
    print(f"wrote {path}")
    if payload["checksum_mismatches"]:
        return 1
    if regressions and not args.no_fail:
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = obs.read_trace(args.path)
    print(obs.summarize(trace, top=args.top))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "solve": _cmd_solve,
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "compare": _cmd_compare,
        "events": _cmd_events,
        "lint": _cmd_lint,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
