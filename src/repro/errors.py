"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting programming errors (``TypeError``
etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An entity, problem, or configuration failed validation.

    Raised when user-supplied data violates a documented precondition,
    e.g. a negative capacity, an empty market, or a benefit matrix whose
    shape does not match the market.
    """


class InfeasibleError(ReproError):
    """The requested assignment problem has no feasible solution.

    For example, a task demands more distinct workers than exist in the
    market, or hard constraints exclude every candidate edge.
    """


class SolverError(ReproError):
    """A solver failed to produce a valid assignment.

    This indicates an internal failure (non-convergence, inconsistent
    state) rather than an infeasible input; it should not occur in
    normal operation.
    """


class ConvergenceError(SolverError):
    """An iterative algorithm exceeded its iteration budget.

    Carries the number of iterations performed so callers can decide
    whether to retry with a larger budget, and — when the algorithm can
    produce one — the best *feasible partial result* found before the
    budget ran out: a list of ``(worker_index, task_index)`` edges that
    a resilient caller (see :mod:`repro.resilience`) may salvage
    instead of retrying from scratch.  ``partial`` is ``None`` when the
    algorithm had nothing feasible to offer.
    """

    def __init__(
        self,
        message: str,
        iterations: int,
        partial: list[tuple[int, int]] | None = None,
    ) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.partial = partial


class DeadlineExceededError(SolverError):
    """A solver attempt overran its wall-clock deadline.

    Raised by the resilient executor (and by fault injection simulating
    an overloaded solver); carries the elapsed and allotted seconds.
    """

    def __init__(
        self, message: str, elapsed: float, deadline: float
    ) -> None:
        super().__init__(message)
        self.elapsed = elapsed
        self.deadline = deadline


class ResilienceExhaustedError(SolverError):
    """Every tier of a resilient solve failed.

    Carries the per-attempt failure log (``(tier_name, error)`` pairs)
    so operators can see what was tried before the executor gave up.
    """

    def __init__(
        self, message: str, attempts: list[tuple[str, Exception]]
    ) -> None:
        super().__init__(message)
        self.attempts = attempts


class ConfigurationError(ReproError, ValueError):
    """A scenario / experiment configuration is inconsistent."""


class UnknownSolverError(ReproError, KeyError):
    """A solver name was not found in the solver registry."""

    def __init__(self, name: str, known: list[str]) -> None:
        super().__init__(
            f"unknown solver {name!r}; registered solvers: {sorted(known)}"
        )
        self.name = name
        self.known = sorted(known)
