"""Closed-form aggregated-answer quality for a set of workers.

``majority_vote_accuracy(accuracies)`` is the probability that a
majority of independent workers with the given per-worker accuracies
report the true label.  The vote-count distribution is Poisson-binomial
and is computed by the exact O(k²) dynamic program over the number of
correct votes; ties (even worker counts) are broken by a fair coin,
matching the simulator.

This function is the heart of the *coverage* objective: a task's
requester-side value is ``payment * (MV_accuracy(S) - 0.5) * 2`` for
its assigned worker set ``S``.  The marginal gain of adding a worker is
diminishing — the DP makes that submodularity concrete and testable.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_rng


def _check_accuracies(accuracies: Sequence[float]) -> np.ndarray:
    arr = np.asarray(accuracies, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(
            f"accuracies must be 1-D, got shape {arr.shape}"
        )
    if arr.size and (arr.min() < 0.0 or arr.max() > 1.0):
        raise ValidationError("accuracies must lie in [0, 1]")
    return arr


def correct_vote_distribution(accuracies: Sequence[float]) -> np.ndarray:
    """Poisson-binomial pmf of the number of correct votes.

    Returns an array ``p`` of length ``k+1`` where ``p[c]`` is the
    probability exactly ``c`` of the ``k`` workers answer correctly.
    """
    arr = _check_accuracies(accuracies)
    pmf = np.zeros(arr.size + 1)
    pmf[0] = 1.0
    for accuracy in arr:
        # Shift-and-add: new[c] = old[c]*(1-a) + old[c-1]*a
        pmf[1:] = pmf[1:] * (1.0 - accuracy) + pmf[:-1] * accuracy
        pmf[0] *= 1.0 - accuracy
    return pmf


def majority_vote_accuracy(accuracies: Sequence[float]) -> float:
    """P(majority of independent votes is correct), fair-coin ties.

    An empty worker set has accuracy 0.5 — the requester would guess.
    """
    arr = _check_accuracies(accuracies)
    k = arr.size
    if k == 0:
        return 0.5
    pmf = correct_vote_distribution(arr)
    counts = np.arange(k + 1)
    win = pmf[counts * 2 > k].sum()
    tie = pmf[counts * 2 == k].sum()
    # The DP's float accumulation can overshoot 1 by a few ulps; the
    # result is a probability by construction, so clamp it.
    return float(min(max(win + 0.5 * tie, 0.0), 1.0))


def weighted_vote_accuracy(
    accuracies: Sequence[float],
    weights: Sequence[float],
    n_samples: int = 0,
    seed: SeedLike = 0,
) -> float:
    """P(weighted vote is correct) for given per-worker weights.

    Exact by enumeration for up to 20 workers (2^k outcomes); above
    that callers must pass ``n_samples`` for Monte-Carlo estimation.
    The estimate draws from ``seed`` (default 0 so repeated calls are
    reproducible); thread a shared :class:`numpy.random.Generator` to
    couple it to an experiment's stream.
    """
    arr = _check_accuracies(accuracies)
    w = np.asarray(weights, dtype=float)
    if w.shape != arr.shape:
        raise ValidationError(
            f"weights shape {w.shape} != accuracies shape {arr.shape}"
        )
    k = arr.size
    if k == 0:
        return 0.5
    if k <= 20 and n_samples == 0:
        total = 0.0
        for mask in range(1 << k):
            prob = 1.0
            score = 0.0
            for i in range(k):
                if mask >> i & 1:
                    prob *= arr[i]
                    score += w[i]
                else:
                    prob *= 1.0 - arr[i]
                    score -= w[i]
            if score > 0:
                total += prob
            elif score == 0:
                total += 0.5 * prob
        return float(total)
    if n_samples <= 0:
        raise ValidationError(
            f"{k} workers require Monte-Carlo: pass n_samples > 0"
        )
    rng = as_rng(seed)
    correct = rng.random((n_samples, k)) < arr[np.newaxis, :]
    scores = np.where(correct, w, -w).sum(axis=1)
    return float(np.mean((scores > 0) + 0.5 * (scores == 0)))


def knowledge_coverage_quality(accuracies: Sequence[float]) -> float:
    """Committee quality under the knows/guesses model, in [0, 1).

    Each worker *knows* the answer with competence
    ``k = max(2 * accuracy - 1, 0)`` and otherwise guesses.  If anyone
    in the committee knows, the aggregate is correct; if nobody knows,
    it is a coin flip.  The normalized quality (accuracy above chance,
    rescaled to [0, 1]) is then::

        Q(S) = 1 - prod_i (1 - k_i)

    which is a weighted-coverage function: **monotone and submodular**
    in the worker set — the property the greedy solver's guarantee
    rests on.  Its singleton value ``(accuracy - 0.5) * 2`` coincides
    exactly with the linear requester benefit, so the per-edge
    surrogate used to seed greedy upper-bounds all later marginals.

    Majority-vote accuracy (above) is what the *simulator* realizes;
    this function is what the *planner* optimizes.  Below-chance
    workers are clipped to competence 0: in this model they neither
    help nor hurt a committee.
    """
    arr = _check_accuracies(accuracies)
    if arr.size == 0:
        return 0.0
    competence = np.clip(2.0 * arr - 1.0, 0.0, 1.0)
    return float(1.0 - np.prod(1.0 - competence))


def marginal_quality_gain(
    current_accuracies: Sequence[float], new_accuracy: float
) -> float:
    """Increase in majority-vote accuracy from adding one worker.

    May be negative: adding a mediocre worker to an odd-sized strong
    committee can hurt (it creates tie risk), which is why the coverage
    objective is submodular-but-not-always-monotone and why the greedy
    solver only adds workers with positive marginal gain.
    """
    base = majority_vote_accuracy(current_accuracies)
    extended = majority_vote_accuracy(
        list(current_accuracies) + [new_accuracy]
    )
    return extended - base
