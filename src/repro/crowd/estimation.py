"""Online worker-skill estimation from answer history.

The core solvers plan with the accuracy matrix.  On a real platform
accuracies are unknown and must be *estimated* from workers' past
answers — either against gold questions (ground truth known) or against
the aggregated labels (noisy supervision).  This module provides the
standard Bayesian estimator:

:class:`BetaSkillEstimator`
    Per (worker, category) Beta posterior over accuracy.  Point
    estimates are posterior means; the prior ``Beta(a0, b0)`` encodes
    the platform's belief about a fresh worker (default mean 0.7, the
    observed cross-platform average).

The simulator exercises the full estimate → assign → answer → update
loop via :class:`repro.sim.scenario.Scenario`'s ``estimator`` knob, and
the F15 ablation (added in this reproduction) quantifies how much
assignment quality is lost to estimation error as history accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crowd.answer_model import AnswerSet
from repro.errors import ValidationError
from repro.market.market import LaborMarket
from repro.utils.validation import check_positive


@dataclass
class BetaSkillEstimator:
    """Beta-posterior accuracy estimates per (worker, category).

    Parameters
    ----------
    prior_a / prior_b:
        Beta prior pseudo-counts (successes / failures).  The default
        ``Beta(7, 3)`` has mean 0.7 with the weight of ten gold
        questions.
    per_category:
        When False, one posterior per worker pooled across categories —
        less data-hungry, blinder to specialization.
    """

    prior_a: float = 7.0
    prior_b: float = 3.0
    per_category: bool = True
    _counts: dict[tuple[int, int], tuple[float, float]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        check_positive("prior_a", self.prior_a)
        check_positive("prior_b", self.prior_b)

    def _key(self, worker_id: int, category: int) -> tuple[int, int]:
        return (worker_id, category if self.per_category else -1)

    # -- updates ---------------------------------------------------------

    def record(
        self, worker_id: int, category: int, correct: bool, weight: float = 1.0
    ) -> None:
        """Fold one (possibly soft-weighted) outcome into the posterior."""
        if weight < 0:
            raise ValidationError(f"weight must be >= 0, got {weight}")
        key = self._key(worker_id, category)
        successes, failures = self._counts.get(key, (0.0, 0.0))
        if correct:
            successes += weight
        else:
            failures += weight
        self._counts[key] = (successes, failures)

    def record_answers(
        self,
        market: LaborMarket,
        answer_set: AnswerSet,
        reference_labels: dict[int, int],
    ) -> int:
        """Update from one round of answers scored against labels.

        ``reference_labels`` may be ground truth (gold tasks) or the
        aggregated labels (self-training); tasks missing from it are
        skipped.  Returns the number of observations folded in.
        """
        observed = 0
        for task_index, by_worker in answer_set.answers.items():
            reference = reference_labels.get(task_index)
            if reference is None:
                continue
            category = market.tasks[task_index].category
            for worker_index, answer in by_worker.items():
                worker_id = market.workers[worker_index].worker_id
                self.record(worker_id, category, answer == reference)
                observed += 1
        return observed

    # -- queries ---------------------------------------------------------

    def estimate(self, worker_id: int, category: int) -> float:
        """Posterior-mean accuracy for a worker on a category."""
        successes, failures = self._counts.get(
            self._key(worker_id, category), (0.0, 0.0)
        )
        a = self.prior_a + successes
        b = self.prior_b + failures
        return a / (a + b)

    def observations(self, worker_id: int, category: int) -> float:
        """Total (weighted) observations behind the current estimate."""
        successes, failures = self._counts.get(
            self._key(worker_id, category), (0.0, 0.0)
        )
        return successes + failures

    def credible_interval(
        self, worker_id: int, category: int, mass: float = 0.9
    ) -> tuple[float, float]:
        """Central credible interval via the normal approximation.

        Adequate once a few observations exist; the endpoints are
        clipped to [0, 1].
        """
        if not 0.0 < mass < 1.0:
            raise ValidationError(f"mass must lie in (0, 1), got {mass}")
        successes, failures = self._counts.get(
            self._key(worker_id, category), (0.0, 0.0)
        )
        a = self.prior_a + successes
        b = self.prior_b + failures
        mean = a / (a + b)
        variance = a * b / ((a + b) ** 2 * (a + b + 1.0))
        from repro.utils.stats import normal_quantile

        z = normal_quantile(0.5 + mass / 2.0)
        half = z * float(np.sqrt(variance))
        return (max(mean - half, 0.0), min(mean + half, 1.0))

    def estimated_market(self, market: LaborMarket) -> LaborMarket:
        """A market copy whose skills are the current estimates.

        Planning against the estimated market instead of the true one
        is exactly what a real platform does; the simulator's
        estimation mode uses this.
        """
        import dataclasses

        workers = []
        for worker in market.workers:
            estimated = np.array(
                [
                    self.estimate(worker.worker_id, category)
                    for category in range(len(market.taxonomy))
                ]
            )
            workers.append(dataclasses.replace(worker, skills=estimated))
        return LaborMarket(
            workers, market.tasks, market.taxonomy, market.requesters
        )

    def rmse_against(self, market: LaborMarket) -> float:
        """Root-mean-square error of estimates vs the market's true skills."""
        errors = []
        for worker in market.workers:
            for category in range(len(market.taxonomy)):
                estimate = self.estimate(worker.worker_id, category)
                errors.append(estimate - float(worker.skills[category]))
        if not errors:
            return 0.0
        return float(np.sqrt(np.mean(np.square(errors))))
