"""Crowdsourcing substrate: answers, quality estimation, aggregation.

This package simulates what happens *after* assignment: assigned
workers produce (noisy) answers, answers are aggregated into a final
label, and the requester's realized quality is measured.  It also
provides the closed-form committee-quality functions — majority-vote
accuracy (what the simulator realizes) and the knows/guesses coverage
quality (the submodular surrogate the planner optimizes).
"""

from repro.crowd.answer_model import AnswerSet, simulate_answers
from repro.crowd.estimation import BetaSkillEstimator
from repro.crowd.quality import (
    knowledge_coverage_quality,
    majority_vote_accuracy,
    marginal_quality_gain,
    weighted_vote_accuracy,
)
from repro.crowd.aggregation import (
    DawidSkeneResult,
    TwoCoinResult,
    dawid_skene,
    majority_vote,
    two_coin_dawid_skene,
    weighted_majority_vote,
)

__all__ = [
    "AnswerSet",
    "BetaSkillEstimator",
    "DawidSkeneResult",
    "TwoCoinResult",
    "dawid_skene",
    "knowledge_coverage_quality",
    "majority_vote",
    "majority_vote_accuracy",
    "marginal_quality_gain",
    "simulate_answers",
    "two_coin_dawid_skene",
    "weighted_majority_vote",
    "weighted_vote_accuracy",
]
