"""Simulating worker answers to assigned tasks.

Tasks are binary-choice (the standard model in the task-assignment
literature: every multi-class task can be decomposed into binary
questions, and binary keeps aggregation-accuracy closed-form).  A
worker answers a task correctly with the probability given by
``Worker.accuracy_on`` — exactly the same quantity the benefit models
plan with, so simulated outcomes are an unbiased realization of the
planner's expectations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.market.market import LaborMarket
from repro.utils.rng import SeedLike, as_rng


@dataclass
class AnswerSet:
    """All answers produced for one assignment round.

    Attributes
    ----------
    answers:
        ``{task_index: {worker_index: answer}}`` with answers in
        ``{0, 1}``.
    truths:
        ``{task_index: true_label}`` — ground truth for scoring; kept
        separate so aggregation methods cannot accidentally peek.
    """

    answers: dict[int, dict[int, int]] = field(default_factory=dict)
    truths: dict[int, int] = field(default_factory=dict)

    def workers_on(self, task_index: int) -> list[int]:
        """Worker indices that answered a task (sorted)."""
        return sorted(self.answers.get(task_index, {}))

    def n_answers(self) -> int:
        return sum(len(by_worker) for by_worker in self.answers.values())


def simulate_answers(
    market: LaborMarket,
    edges: list[tuple[int, int]],
    seed: SeedLike = None,
) -> AnswerSet:
    """Generate answers for every assigned (worker_index, task_index) edge.

    Each task draws a uniform true label once; each assigned worker
    reports it correctly with their accuracy, otherwise flips it.
    """
    rng = as_rng(seed)
    accuracy = market.accuracy_matrix()
    answer_set = AnswerSet()
    for worker_index, task_index in edges:
        if not 0 <= worker_index < market.n_workers:
            raise ValidationError(
                f"edge references worker index {worker_index} outside market"
            )
        if not 0 <= task_index < market.n_tasks:
            raise ValidationError(
                f"edge references task index {task_index} outside market"
            )
        if task_index not in answer_set.truths:
            answer_set.truths[task_index] = int(rng.integers(0, 2))
        truth = answer_set.truths[task_index]
        correct = rng.random() < accuracy[worker_index, task_index]
        answer = truth if correct else 1 - truth
        answer_set.answers.setdefault(task_index, {})[worker_index] = answer
    return answer_set
