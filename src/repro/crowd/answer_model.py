"""Simulating worker answers to assigned tasks.

Tasks are binary-choice (the standard model in the task-assignment
literature: every multi-class task can be decomposed into binary
questions, and binary keeps aggregation-accuracy closed-form).  A
worker answers a task correctly with the probability given by
``Worker.accuracy_on`` — exactly the same quantity the benefit models
plan with, so simulated outcomes are an unbiased realization of the
planner's expectations.

The documented RNG contract is *per-edge stream addressing*: walking
``edges`` in order, each first occurrence of a task draws its truth
via ``rng.integers(0, 2)`` and every edge then draws one
``rng.random()`` for correctness.  :func:`simulate_answers` batches
all of those Bernoulli draws into one ``random_raw`` block while
reproducing the scalar call sequence bit for bit (see
:func:`_simulate_answers_batched`), so seeded runs are byte-identical
to the loop they replaced — which survives as
:func:`simulate_answers_reference` and is cross-checked in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.market.market import LaborMarket
from repro.utils.rng import SeedLike, as_rng


@dataclass
class AnswerSet:
    """All answers produced for one assignment round.

    Attributes
    ----------
    answers:
        ``{task_index: {worker_index: answer}}`` with answers in
        ``{0, 1}``.
    truths:
        ``{task_index: true_label}`` — ground truth for scoring; kept
        separate so aggregation methods cannot accidentally peek.
    """

    answers: dict[int, dict[int, int]] = field(default_factory=dict)
    truths: dict[int, int] = field(default_factory=dict)

    def workers_on(self, task_index: int) -> list[int]:
        """Worker indices that answered a task (sorted)."""
        return sorted(self.answers.get(task_index, {}))

    def n_answers(self) -> int:
        return sum(len(by_worker) for by_worker in self.answers.values())


def simulate_answers_reference(
    market: LaborMarket,
    edges: list[tuple[int, int]],
    seed: SeedLike = None,
) -> AnswerSet:
    """Scalar-loop reference for :func:`simulate_answers`.

    One RNG call per draw, in edge order — the ground truth for the
    batched fast path's stream addressing, and the fallback for bit
    generators whose word stream the fast path cannot emulate.
    """
    rng = as_rng(seed)
    accuracy = market.accuracy_matrix()
    answer_set = AnswerSet()
    for worker_index, task_index in edges:
        if not 0 <= worker_index < market.n_workers:
            raise ValidationError(
                f"edge references worker index {worker_index} outside market"
            )
        if not 0 <= task_index < market.n_tasks:
            raise ValidationError(
                f"edge references task index {task_index} outside market"
            )
        if task_index not in answer_set.truths:
            answer_set.truths[task_index] = int(rng.integers(0, 2))
        truth = answer_set.truths[task_index]
        correct = rng.random() < accuracy[worker_index, task_index]
        answer = truth if correct else 1 - truth
        answer_set.answers.setdefault(task_index, {})[worker_index] = answer
    return answer_set


def simulate_answers(
    market: LaborMarket,
    edges: list[tuple[int, int]],
    seed: SeedLike = None,
) -> AnswerSet:
    """Generate answers for every assigned (worker_index, task_index) edge.

    Each task draws a uniform true label once; each assigned worker
    reports it correctly with their accuracy, otherwise flips it.
    Draws are batched when the generator is PCG64 (numpy's default);
    results and the post-call generator state are bit-identical to
    :func:`simulate_answers_reference` either way.
    """
    rng = as_rng(seed)
    if not edges:
        return AnswerSet()
    if rng.bit_generator.state.get("bit_generator") != "PCG64":
        return simulate_answers_reference(market, edges, rng)

    edge_array = np.asarray(edges, dtype=np.int64)
    workers = edge_array[:, 0]
    tasks = edge_array[:, 1]
    if (
        workers.min() < 0
        or workers.max() >= market.n_workers
        or tasks.min() < 0
        or tasks.max() >= market.n_tasks
    ):
        # The reference loop validates edge by edge, consuming draws
        # for the edges preceding the bad one before raising; replay
        # it so the error path leaves the caller's generator in the
        # identical state.
        return simulate_answers_reference(market, edges, rng)

    accuracy = market.accuracy_matrix()
    return _simulate_answers_batched(rng, accuracy, workers, tasks)


def _simulate_answers_batched(
    rng: np.random.Generator,
    accuracy: np.ndarray,
    workers: np.ndarray,
    tasks: np.ndarray,
) -> AnswerSet:
    """Batched Bernoulli draws reproducing the scalar PCG64 stream.

    The reference loop interleaves two kinds of calls whose word
    consumption differs:

    * ``rng.integers(0, 2)`` draws one 32-bit half-word (Lemire
      bounded generation; the value is the half-word's top bit).
      PCG64 serves half-words from a one-deep buffer: an *empty*
      buffer pulls a fresh 64-bit word, returns its low half and
      buffers the high half; a *full* buffer is consumed in place.
    * ``rng.random()`` always consumes one fresh 64-bit word
      (``word >> 11`` scaled by ``2**-53``) and leaves the half-word
      buffer untouched.

    Only truth draws toggle the buffer, so truth draw ``t`` (0-based,
    in edge order) pulls a fresh word iff ``(t + has0) % 2 == 0``
    where ``has0`` is the buffer flag on entry.  That makes every
    draw's source word a prefix-sum away: pull the whole block with
    ``random_raw`` (which advances the underlying stream exactly like
    the scalar calls did), slice halves arithmetically, and restore
    the buffer flag/value on the way out.
    """
    n_edges = workers.size
    state = rng.bit_generator.state
    has0 = int(state["has_uint32"])
    buffered0 = int(state["uinteger"])

    # First occurrence of each task, in edge order, draws the truth.
    _, first_positions = np.unique(tasks, return_index=True)
    first_positions = np.sort(first_positions)
    is_first = np.zeros(n_edges, dtype=bool)
    is_first[first_positions] = True
    n_truths = first_positions.size
    # truth ordinal t -> does it pull a fresh 64-bit word?
    truth_ordinals = np.arange(n_truths)
    truth_fresh = (truth_ordinals + has0) % 2 == 0
    # Per-edge count of fresh truth words consumed up to and
    # including that edge (0/1 per edge, cumulative).
    fresh_at_edge = np.zeros(n_edges, dtype=np.int64)
    fresh_at_edge[first_positions] = truth_fresh.astype(np.int64)
    fresh_cumulative = np.cumsum(fresh_at_edge)

    total_words = int(fresh_cumulative[-1]) + n_edges
    words = rng.bit_generator.random_raw(total_words)

    # An edge's random() word comes after all earlier edges' words and
    # after its own truth word (if that truth pulled one).
    random_positions = fresh_cumulative + np.arange(n_edges)
    uniforms = (words[random_positions] >> np.uint64(11)) * (2.0 ** -53)

    # Truth half-words: fresh ordinals read the low half of their own
    # word; buffered ordinals read the high half of the previous fresh
    # ordinal's word (ordinal 0 reads the entry buffer when has0=1).
    truth_words = np.zeros(n_truths, dtype=np.uint64)
    truth_word_positions = (
        fresh_cumulative[first_positions] - 1 + first_positions
    )
    truth_words[truth_fresh] = words[truth_word_positions[truth_fresh]]
    halves = np.empty(n_truths, dtype=np.uint64)
    halves[truth_fresh] = truth_words[truth_fresh] & np.uint64(0xFFFFFFFF)
    if n_truths and not truth_fresh[0]:
        halves[0] = np.uint64(buffered0)
    stale = ~truth_fresh
    stale[0:1] = False
    if stale.any():
        halves[stale] = truth_words[
            np.flatnonzero(stale) - 1
        ] >> np.uint64(32)
    truths = (halves >> np.uint64(31)).astype(np.int64)

    # Restore the half-word buffer: full iff an odd number of truth
    # draws remains unconsumed from the last fresh word.  PCG64 never
    # zeroes ``uinteger`` on consumption, so the value must be the
    # last buffered half even when the flag says empty — state dicts
    # are compared bit for bit in tests.
    final_state = rng.bit_generator.state
    final_state["has_uint32"] = (n_truths + has0) % 2
    if truth_fresh.any():
        last_fresh = int(np.flatnonzero(truth_fresh)[-1])
        final_state["uinteger"] = int(
            truth_words[last_fresh] >> np.uint64(32)
        )
    else:
        final_state["uinteger"] = buffered0
    rng.bit_generator.state = final_state

    # `truths` is in first-occurrence (edge) order; reorder to sorted
    # task order so the unique-inverse can broadcast it per edge.
    _, inverse = np.unique(tasks, return_inverse=True)
    truths_sorted = truths[np.argsort(tasks[first_positions])]
    truth_per_edge = truths_sorted[inverse]

    correct = uniforms < accuracy[workers, tasks]
    answers = np.where(correct, truth_per_edge, 1 - truth_per_edge)

    answer_set = AnswerSet()
    truth_tasks = tasks[first_positions].tolist()
    for task_index, truth in zip(truth_tasks, truths.tolist()):
        answer_set.truths[task_index] = truth
    # Group edges per task (stable sort keeps edge order within each
    # task, so a repeated (worker, task) pair keeps its last answer,
    # exactly like the reference loop's overwrite).
    by_task = np.argsort(tasks, kind="stable")
    sorted_tasks = tasks[by_task]
    boundaries = np.flatnonzero(
        np.diff(sorted_tasks, prepend=sorted_tasks[0] - 1)
    )
    grouped_workers = workers[by_task].tolist()
    grouped_answers = answers[by_task].tolist()
    starts = boundaries.tolist() + [n_edges]
    groups = {
        task_index: dict(
            zip(grouped_workers[start:stop], grouped_answers[start:stop])
        )
        for task_index, start, stop in zip(
            sorted_tasks[boundaries].tolist(), starts[:-1], starts[1:]
        )
    }
    # Emit tasks in first-occurrence order — the insertion order the
    # reference loop produces.
    for task_index in truth_tasks:
        answer_set.answers[task_index] = groups[task_index]
    return answer_set
