"""Multi-class tasks: answers over L labels, not just binary.

The core pipeline works on binary tasks (the standard reduction in the
assignment literature); this module provides the genuine multi-class
path for tasks like categorization with L choices:

* :func:`simulate_multiclass_answers` — a worker answers correctly
  with their accuracy, otherwise picks a *uniform wrong* label (the
  symmetric-noise model, the multi-class analogue of the binary flip);
* :func:`multiclass_majority_vote` — plurality with fair random tie
  breaking among the leaders;
* :func:`multiclass_dawid_skene` — symmetric-noise EM: one accuracy
  parameter per worker, likelihood ``a`` for agreement and
  ``(1-a)/(L-1)`` per disagreement label;
* :func:`plurality_accuracy` — Monte-Carlo estimate of committee
  plurality accuracy (no closed form for L > 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.market.market import LaborMarket
from repro.utils.rng import SeedLike, as_rng

_EPS = 1e-4


@dataclass
class MulticlassAnswerSet:
    """Answers over ``n_classes`` labels for assigned edges."""

    n_classes: int
    answers: dict[int, dict[int, int]] = field(default_factory=dict)
    truths: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_classes < 2:
            raise ValidationError(
                f"n_classes must be >= 2, got {self.n_classes}"
            )


def simulate_multiclass_answers(
    market: LaborMarket,
    edges: list[tuple[int, int]],
    n_classes: int,
    seed: SeedLike = None,
) -> MulticlassAnswerSet:
    """Symmetric-noise multi-class answer simulation.

    Worker accuracy comes from the same ``accuracy_matrix`` the binary
    pipeline uses; a wrong answer is uniform over the other
    ``n_classes - 1`` labels.
    """
    rng = as_rng(seed)
    answer_set = MulticlassAnswerSet(n_classes=n_classes)
    accuracy = market.accuracy_matrix()
    for worker_index, task_index in edges:
        if not 0 <= worker_index < market.n_workers:
            raise ValidationError(
                f"edge references worker index {worker_index} outside market"
            )
        if not 0 <= task_index < market.n_tasks:
            raise ValidationError(
                f"edge references task index {task_index} outside market"
            )
        if task_index not in answer_set.truths:
            answer_set.truths[task_index] = int(rng.integers(n_classes))
        truth = answer_set.truths[task_index]
        if rng.random() < accuracy[worker_index, task_index]:
            answer = truth
        else:
            offset = int(rng.integers(1, n_classes))
            answer = (truth + offset) % n_classes
        answer_set.answers.setdefault(task_index, {})[worker_index] = answer
    return answer_set


def multiclass_majority_vote(
    answer_set: MulticlassAnswerSet, seed: SeedLike = None
) -> dict[int, int]:
    """Plurality vote with fair tie-breaking among leading labels."""
    rng = as_rng(seed)
    labels: dict[int, int] = {}
    for task_index, by_worker in answer_set.answers.items():
        counts = np.bincount(
            list(by_worker.values()), minlength=answer_set.n_classes
        )
        leaders = np.nonzero(counts == counts.max())[0]
        labels[task_index] = int(rng.choice(leaders))
    return labels


@dataclass(frozen=True)
class MulticlassDawidSkeneResult:
    """Output of symmetric-noise multi-class Dawid–Skene EM."""

    labels: dict[int, int]
    posteriors: dict[int, np.ndarray]
    worker_accuracies: dict[int, float]
    log_likelihood: float
    iterations: int


def multiclass_dawid_skene(
    answer_set: MulticlassAnswerSet,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
) -> MulticlassDawidSkeneResult:
    """Symmetric-noise Dawid–Skene over ``L`` classes.

    Each worker has one accuracy ``a``; P(answer = k | truth = c) is
    ``a`` for ``k == c`` and ``(1 - a) / (L - 1)`` otherwise.  The data
    log-likelihood is non-decreasing across EM iterations.
    """
    if max_iterations < 1:
        raise ValidationError("max_iterations must be >= 1")
    n_classes = answer_set.n_classes
    tasks = sorted(answer_set.answers)
    workers = sorted(
        {w for by_worker in answer_set.answers.values() for w in by_worker}
    )
    if not tasks:
        return MulticlassDawidSkeneResult({}, {}, {}, 0.0, 0)

    log_prior = math.log(1.0 / n_classes)
    posterior: dict[int, np.ndarray] = {}
    for task in tasks:
        counts = np.bincount(
            list(answer_set.answers[task].values()), minlength=n_classes
        ).astype(float)
        posterior[task] = (counts + 1.0) / (counts + 1.0).sum()

    accuracy = {w: 0.7 for w in workers}
    log_likelihood = -math.inf
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        # M-step: expected agreement with the posterior truth.
        agreement = {w: 0.0 for w in workers}
        count = {w: 0 for w in workers}
        for task in tasks:
            p = posterior[task]
            for worker, answer in answer_set.answers[task].items():
                agreement[worker] += float(p[answer])
                count[worker] += 1
        for worker in workers:
            if count[worker]:
                accuracy[worker] = min(
                    max(agreement[worker] / count[worker], _EPS),
                    1.0 - _EPS,
                )

        # E-step + likelihood.
        new_ll = 0.0
        for task in tasks:
            log_p = np.full(n_classes, log_prior)
            for worker, answer in answer_set.answers[task].items():
                a = accuracy[worker]
                wrong = (1.0 - a) / (n_classes - 1)
                contribution = np.full(n_classes, math.log(wrong))
                contribution[answer] = math.log(a)
                log_p += contribution
            peak = float(log_p.max())
            evidence = peak + math.log(np.exp(log_p - peak).sum())
            posterior[task] = np.exp(log_p - evidence)
            new_ll += evidence

        if new_ll - log_likelihood < tolerance and iterations > 1:
            log_likelihood = new_ll
            break
        log_likelihood = new_ll

    labels = {task: int(np.argmax(posterior[task])) for task in tasks}
    return MulticlassDawidSkeneResult(
        labels=labels,
        posteriors=dict(posterior),
        worker_accuracies=dict(accuracy),
        log_likelihood=log_likelihood,
        iterations=iterations,
    )


def plurality_accuracy(
    accuracies: list[float],
    n_classes: int,
    n_samples: int = 20_000,
    seed: SeedLike = 0,
) -> float:
    """Monte-Carlo P(plurality of a committee is correct).

    Closed forms stop at L = 2 (the Poisson-binomial DP); for L > 2
    the vote-count distribution is multinomial-convolved and sampling
    is the practical route.  Deterministic given ``seed``.
    """
    if n_classes < 2:
        raise ValidationError(f"n_classes must be >= 2, got {n_classes}")
    if not accuracies:
        return 1.0 / n_classes
    arr = np.asarray(accuracies, dtype=float)
    if arr.min() < 0 or arr.max() > 1:
        raise ValidationError("accuracies must lie in [0, 1]")
    rng = as_rng(seed)
    k = arr.size
    # Truth is label 0 WLOG (symmetric noise).
    correct = rng.random((n_samples, k)) < arr[np.newaxis, :]
    wrong_labels = rng.integers(1, n_classes, (n_samples, k))
    votes = np.where(correct, 0, wrong_labels)
    hits = 0.0
    for row in votes:
        counts = np.bincount(row, minlength=n_classes)
        leaders = np.nonzero(counts == counts.max())[0]
        if 0 in leaders:
            hits += 1.0 / len(leaders)
    return float(hits / n_samples)
