"""Answer aggregation: majority, weighted, Dawid–Skene (one/two-coin), GLAD.

Besides the raw aggregation functions, this package owns the
:data:`AGGREGATOR_REGISTRY` — the single source of truth for which
aggregators a :class:`repro.sim.scenario.Scenario` (and a spec file,
see :mod:`repro.spec`) may name.  The simulation engine dispatches
through the registry, and scenario/spec validation derives the legal
name set from it, so adding an aggregator here is the *only* step
needed for it to become simulatable and spec-addressable.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.crowd.aggregation.dawid_skene import DawidSkeneResult, dawid_skene
from repro.crowd.aggregation.glad import GladResult, glad
from repro.crowd.aggregation.majority import majority_vote
from repro.crowd.aggregation.two_coin import TwoCoinResult, two_coin_dawid_skene
from repro.crowd.aggregation.weighted import weighted_majority_vote
from repro.crowd.answer_model import AnswerSet
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class AggregatorSpec:
    """One registry entry: a uniform calling convention per aggregator.

    ``run(answer_set, weights=..., seed=...)`` returns the aggregated
    ``task_index -> label`` dict.  ``needs_weights`` tells the caller
    (the simulation engine) to supply per-worker accuracies; weight-free
    aggregators ignore the argument.
    """

    name: str
    needs_weights: bool
    run: Callable[..., dict[int, int]]
    summary: str = ""


def _run_majority(
    answer_set: AnswerSet,
    weights: dict[int, float] | None = None,
    seed: SeedLike = None,
) -> dict[int, int]:
    return majority_vote(answer_set, seed=seed)


def _run_weighted(
    answer_set: AnswerSet,
    weights: dict[int, float] | None = None,
    seed: SeedLike = None,
) -> dict[int, int]:
    return weighted_majority_vote(answer_set, weights or {}, seed=seed)


def _run_dawid_skene(
    answer_set: AnswerSet,
    weights: dict[int, float] | None = None,
    seed: SeedLike = None,
) -> dict[int, int]:
    return dawid_skene(answer_set).labels


AGGREGATOR_REGISTRY: dict[str, AggregatorSpec] = {
    "majority": AggregatorSpec(
        name="majority",
        needs_weights=False,
        run=_run_majority,
        summary="unweighted plurality vote, fair-coin ties",
    ),
    "weighted": AggregatorSpec(
        name="weighted",
        needs_weights=True,
        run=_run_weighted,
        summary="log-odds weighted vote from per-worker accuracies",
    ),
    "dawid-skene": AggregatorSpec(
        name="dawid-skene",
        needs_weights=False,
        run=_run_dawid_skene,
        summary="one-coin Dawid-Skene EM labels",
    ),
}


def aggregator_names() -> tuple[str, ...]:
    """Sorted legal aggregator names (the scenario/spec domain)."""
    return tuple(sorted(AGGREGATOR_REGISTRY))


def get_aggregator(name: str) -> AggregatorSpec:
    """Look up a registered aggregator by name."""
    try:
        return AGGREGATOR_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown aggregator {name!r}; known: "
            f"{', '.join(aggregator_names())}"
        ) from None


__all__ = [
    "AGGREGATOR_REGISTRY",
    "AggregatorSpec",
    "DawidSkeneResult",
    "GladResult",
    "TwoCoinResult",
    "aggregator_names",
    "dawid_skene",
    "get_aggregator",
    "glad",
    "majority_vote",
    "two_coin_dawid_skene",
    "weighted_majority_vote",
]
