"""Answer aggregation: majority, weighted, Dawid–Skene (one/two-coin), GLAD."""

from repro.crowd.aggregation.dawid_skene import DawidSkeneResult, dawid_skene
from repro.crowd.aggregation.glad import GladResult, glad
from repro.crowd.aggregation.majority import majority_vote
from repro.crowd.aggregation.two_coin import TwoCoinResult, two_coin_dawid_skene
from repro.crowd.aggregation.weighted import weighted_majority_vote

__all__ = [
    "DawidSkeneResult",
    "GladResult",
    "TwoCoinResult",
    "dawid_skene",
    "glad",
    "majority_vote",
    "two_coin_dawid_skene",
    "weighted_majority_vote",
]
