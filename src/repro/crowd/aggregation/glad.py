"""GLAD-style aggregation: worker ability × task easiness.

Whitehill et al.'s GLAD models the probability that worker ``w``
answers task ``t`` correctly as::

    P(correct) = sigmoid(alpha_w * beta_t)

with worker ability ``alpha`` (can be negative — adversarial) and task
easiness ``beta > 0`` (log-parameterized).  Tasks differ in difficulty,
so a mistake on an easy task is more damning than one on a hard task —
the effect one-coin Dawid–Skene cannot express.

Inference is EM with gradient M-steps (the standard approach):

* E-step — posterior P(truth = 1 | answers, alpha, beta) per task;
* M-step — a few steps of gradient ascent on the expected complete-data
  log-likelihood w.r.t. alpha and log(beta).

This implementation is self-contained numpy, deterministic, and tested
for likelihood non-decrease (up to the inexact M-step's tolerance) and
for recovering difficulty orderings on synthetic data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.crowd.answer_model import AnswerSet
from repro.errors import ValidationError

_CLIP = 30.0  # logit clip: sigmoid saturates far before this


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -_CLIP, _CLIP)))


@dataclass(frozen=True)
class GladResult:
    """Output of GLAD EM.

    Attributes
    ----------
    labels / posteriors:
        MAP label and P(truth = 1) per task.
    abilities:
        Per-worker alpha (higher = more reliable; negative =
        adversarial).
    easiness:
        Per-task beta > 0 (higher = easier).
    log_likelihood / iterations:
        Final data log-likelihood and EM iterations performed.
    """

    labels: dict[int, int]
    posteriors: dict[int, float]
    abilities: dict[int, float]
    easiness: dict[int, float]
    log_likelihood: float
    iterations: int


def glad(
    answer_set: AnswerSet,
    max_iterations: int = 50,
    gradient_steps: int = 10,
    learning_rate: float = 0.05,
    tolerance: float = 1e-6,
    class_prior: float = 0.5,
) -> GladResult:
    """Run GLAD EM on an answer set."""
    if not 0.0 < class_prior < 1.0:
        raise ValidationError(
            f"class_prior must lie strictly in (0, 1), got {class_prior}"
        )
    if max_iterations < 1 or gradient_steps < 1:
        raise ValidationError(
            "max_iterations and gradient_steps must be >= 1"
        )

    tasks = sorted(answer_set.answers)
    workers = sorted(
        {w for by_worker in answer_set.answers.values() for w in by_worker}
    )
    if not tasks:
        return GladResult({}, {}, {}, {}, 0.0, 0)

    task_index = {t: i for i, t in enumerate(tasks)}
    worker_index = {w: i for i, w in enumerate(workers)}
    # Flat observation arrays: (task, worker, answer).
    obs_task = []
    obs_worker = []
    obs_answer = []
    for t in tasks:
        for w, a in answer_set.answers[t].items():
            obs_task.append(task_index[t])
            obs_worker.append(worker_index[w])
            obs_answer.append(a)
    obs_task = np.array(obs_task)
    obs_worker = np.array(obs_worker)
    # Integer labels: comparisons below stay exact by construction.
    obs_answer = np.array(obs_answer, dtype=int)

    n_tasks, n_workers = len(tasks), len(workers)
    alpha = np.ones(n_workers)          # abilities
    log_beta = np.zeros(n_tasks)        # log easiness
    posterior = np.full(n_tasks, class_prior)

    # Soft-majority initialization of the posterior.
    ones = np.bincount(obs_task, weights=obs_answer, minlength=n_tasks)
    counts = np.bincount(obs_task, minlength=n_tasks)
    posterior = (ones + 1.0) / (counts + 2.0)

    log_prior_1 = math.log(class_prior)
    log_prior_0 = math.log(1.0 - class_prior)

    def correctness_probability() -> np.ndarray:
        """P(answer correct) per observation under current params."""
        return _sigmoid(alpha[obs_worker] * np.exp(log_beta[obs_task]))

    def e_step() -> float:
        """Update posteriors; return the data log-likelihood."""
        p_correct = np.clip(correctness_probability(), 1e-9, 1 - 1e-9)
        # log P(answer | truth=1): correct iff answer == 1.
        log_a1 = np.where(
            obs_answer == 1, np.log(p_correct), np.log(1.0 - p_correct)
        )
        log_a0 = np.where(
            obs_answer == 0, np.log(p_correct), np.log(1.0 - p_correct)
        )
        log_p1 = log_prior_1 + np.bincount(
            obs_task, weights=log_a1, minlength=n_tasks
        )
        log_p0 = log_prior_0 + np.bincount(
            obs_task, weights=log_a0, minlength=n_tasks
        )
        peak = np.maximum(log_p1, log_p0)
        evidence = peak + np.log(
            np.exp(log_p1 - peak) + np.exp(log_p0 - peak)
        )
        posterior[:] = np.exp(log_p1 - evidence)
        return float(evidence.sum())

    def m_step() -> None:
        """Gradient ascent on the expected complete-data likelihood."""
        nonlocal alpha, log_beta
        for _ in range(gradient_steps):
            beta = np.exp(log_beta)
            z = alpha[obs_worker] * beta[obs_task]
            sigma = _sigmoid(z)
            # P(observation is correct | truth): weight by posterior.
            p1 = posterior[obs_task]
            correct_weight = np.where(obs_answer == 1, p1, 1.0 - p1)
            # d/dz of [cw*log(sigma) + (1-cw)*log(1-sigma)] = cw - sigma
            dz = correct_weight - sigma
            grad_alpha = np.bincount(
                obs_worker, weights=dz * beta[obs_task],
                minlength=n_workers,
            )
            grad_log_beta = np.bincount(
                obs_task, weights=dz * z, minlength=n_tasks
            )
            alpha = alpha + learning_rate * grad_alpha
            log_beta = log_beta + learning_rate * grad_log_beta
            log_beta = np.clip(log_beta, -4.0, 4.0)
            alpha = np.clip(alpha, -8.0, 8.0)

    log_likelihood = e_step()
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        m_step()
        new_ll = e_step()
        if abs(new_ll - log_likelihood) < tolerance and iterations > 1:
            log_likelihood = new_ll
            break
        log_likelihood = new_ll

    labels = {
        t: int(posterior[task_index[t]] >= 0.5) for t in tasks
    }
    return GladResult(
        labels=labels,
        posteriors={t: float(posterior[task_index[t]]) for t in tasks},
        abilities={w: float(alpha[worker_index[w]]) for w in workers},
        easiness={
            t: float(np.exp(log_beta[task_index[t]])) for t in tasks
        },
        log_likelihood=log_likelihood,
        iterations=iterations,
    )
