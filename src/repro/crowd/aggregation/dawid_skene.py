"""Dawid–Skene EM for joint truth + worker-accuracy inference.

The binary one-coin specialization: worker ``w`` has a single unknown
accuracy ``a_w`` applied symmetrically to both classes.  EM alternates

* **E-step** — posterior P(truth = 1 | answers, accuracies) per task;
* **M-step** — each worker's accuracy re-estimated as the expected
  fraction of their answers agreeing with the posterior truths.

The data log-likelihood is non-decreasing across iterations (a property
test locks this), and accuracies are clipped into ``[eps, 1-eps]`` to
keep the likelihood finite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crowd.answer_model import AnswerSet
from repro.errors import ValidationError

_EPS = 1e-4


@dataclass(frozen=True)
class DawidSkeneResult:
    """Output of Dawid–Skene EM.

    Attributes
    ----------
    labels:
        MAP label per task.
    posteriors:
        P(truth = 1) per task.
    worker_accuracies:
        Estimated accuracy per worker index.
    log_likelihood:
        Final data log-likelihood.
    iterations:
        EM iterations performed.
    """

    labels: dict[int, int]
    posteriors: dict[int, float]
    worker_accuracies: dict[int, float]
    log_likelihood: float
    iterations: int


def dawid_skene(
    answer_set: AnswerSet,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
    class_prior: float = 0.5,
) -> DawidSkeneResult:
    """Run one-coin Dawid–Skene EM on an answer set.

    ``class_prior`` is P(truth = 1); 0.5 matches the simulator's
    uniform truth draw.
    """
    if not 0.0 < class_prior < 1.0:
        raise ValidationError(
            f"class_prior must lie strictly in (0, 1), got {class_prior}"
        )
    if max_iterations < 1:
        raise ValidationError("max_iterations must be >= 1")

    tasks = sorted(answer_set.answers)
    workers = sorted(
        {w for by_worker in answer_set.answers.values() for w in by_worker}
    )
    if not tasks:
        return DawidSkeneResult({}, {}, {}, 0.0, 0)

    # Initialize posteriors from majority vote fractions (soft).
    posterior: dict[int, float] = {}
    for task in tasks:
        by_worker = answer_set.answers[task]
        posterior[task] = (sum(by_worker.values()) + 1.0) / (len(by_worker) + 2.0)

    accuracy = {w: 0.7 for w in workers}
    log_likelihood = -math.inf
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        # M-step: accuracy = expected agreement with posterior truth.
        agreement = {w: 0.0 for w in workers}
        count = {w: 0 for w in workers}
        for task in tasks:
            p1 = posterior[task]
            for worker, answer in answer_set.answers[task].items():
                agreement[worker] += p1 if answer == 1 else (1.0 - p1)
                count[worker] += 1
        for worker in workers:
            if count[worker]:
                a = agreement[worker] / count[worker]
                accuracy[worker] = min(max(a, _EPS), 1.0 - _EPS)

        # E-step: posterior truth per task, and the log-likelihood.
        new_ll = 0.0
        for task in tasks:
            log_p1 = math.log(class_prior)
            log_p0 = math.log(1.0 - class_prior)
            for worker, answer in answer_set.answers[task].items():
                a = accuracy[worker]
                if answer == 1:
                    log_p1 += math.log(a)
                    log_p0 += math.log(1.0 - a)
                else:
                    log_p1 += math.log(1.0 - a)
                    log_p0 += math.log(a)
            peak = max(log_p1, log_p0)
            evidence = peak + math.log(
                math.exp(log_p1 - peak) + math.exp(log_p0 - peak)
            )
            posterior[task] = math.exp(log_p1 - evidence)
            new_ll += evidence

        if new_ll - log_likelihood < tolerance and iterations > 1:
            log_likelihood = new_ll
            break
        log_likelihood = new_ll

    labels = {task: int(posterior[task] >= 0.5) for task in tasks}
    return DawidSkeneResult(
        labels=labels,
        posteriors=dict(posterior),
        worker_accuracies=dict(accuracy),
        log_likelihood=log_likelihood,
        iterations=iterations,
    )
