"""Plain majority voting."""

from __future__ import annotations

from repro.crowd.answer_model import AnswerSet
from repro.utils.rng import SeedLike, as_rng


def majority_vote(answer_set: AnswerSet, seed: SeedLike = None) -> dict[int, int]:
    """Aggregate each task's answers by simple majority.

    Ties are broken by a fair coin (seeded for reproducibility), the
    same rule the closed-form accuracy in
    :func:`repro.crowd.quality.majority_vote_accuracy` assumes.
    Returns ``{task_index: label}``.
    """
    rng = as_rng(seed)
    labels: dict[int, int] = {}
    for task_index, by_worker in answer_set.answers.items():
        ones = sum(by_worker.values())
        zeros = len(by_worker) - ones
        if ones > zeros:
            labels[task_index] = 1
        elif zeros > ones:
            labels[task_index] = 0
        else:
            labels[task_index] = int(rng.integers(0, 2))
    return labels
