"""Accuracy-weighted majority voting.

Given (estimated) per-worker accuracies, the Bayes-optimal aggregation
of independent binary votes weights each vote by its log-odds
``log(a / (1 - a))``.  Accuracies are clipped away from {0, 1} so a
single over-confident estimate cannot dominate with infinite weight.
"""

from __future__ import annotations

import math

from repro.crowd.answer_model import AnswerSet
from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_rng

_CLIP = 1e-3


def log_odds_weight(accuracy: float) -> float:
    """Bayes-optimal vote weight for a worker of given accuracy."""
    if not 0.0 <= accuracy <= 1.0:
        raise ValidationError(f"accuracy must lie in [0, 1], got {accuracy}")
    a = min(max(accuracy, _CLIP), 1.0 - _CLIP)
    return math.log(a / (1.0 - a))


def weighted_majority_vote(
    answer_set: AnswerSet,
    worker_accuracies: dict[int, float],
    seed: SeedLike = None,
) -> dict[int, int]:
    """Aggregate with per-worker log-odds weights.

    Workers missing from ``worker_accuracies`` default to 0.5 (weight
    0): an unknown worker's vote carries no information.  Ties (net
    score exactly 0) break by fair coin.
    """
    rng = as_rng(seed)
    labels: dict[int, int] = {}
    for task_index, by_worker in answer_set.answers.items():
        score = 0.0
        for worker_index, answer in by_worker.items():
            weight = log_odds_weight(worker_accuracies.get(worker_index, 0.5))
            score += weight if answer == 1 else -weight
        if score > 0:
            labels[task_index] = 1
        elif score < 0:
            labels[task_index] = 0
        else:
            labels[task_index] = int(rng.integers(0, 2))
    return labels
