"""Two-coin Dawid–Skene EM: per-class worker reliabilities.

The one-coin model (:mod:`dawid_skene`) gives each worker a single
accuracy.  The two-coin model estimates a full 2×2 confusion matrix —
``sensitivity`` (P(answer 1 | truth 1)) and ``specificity``
(P(answer 0 | truth 0)) — which matters when workers are biased toward
one label (e.g. content moderators who over-flag).  This is the
original Dawid & Skene (1979) formulation restricted to two classes.

EM structure mirrors the one-coin module: E-step computes per-task
posteriors, M-step re-estimates sensitivities/specificities and the
class prior; the data log-likelihood is non-decreasing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crowd.answer_model import AnswerSet
from repro.errors import ValidationError

_EPS = 1e-4


@dataclass(frozen=True)
class TwoCoinResult:
    """Output of two-coin Dawid–Skene EM.

    Attributes
    ----------
    labels / posteriors:
        MAP label and P(truth = 1) per task.
    sensitivities / specificities:
        Per-worker P(vote 1 | truth 1) and P(vote 0 | truth 0).
    class_prior:
        Estimated P(truth = 1).
    log_likelihood / iterations:
        Final data log-likelihood and EM iterations performed.
    """

    labels: dict[int, int]
    posteriors: dict[int, float]
    sensitivities: dict[int, float]
    specificities: dict[int, float]
    class_prior: float
    log_likelihood: float
    iterations: int


def _clip(x: float) -> float:
    return min(max(x, _EPS), 1.0 - _EPS)


def two_coin_dawid_skene(
    answer_set: AnswerSet,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
) -> TwoCoinResult:
    """Run two-coin Dawid–Skene EM on an answer set."""
    if max_iterations < 1:
        raise ValidationError("max_iterations must be >= 1")

    tasks = sorted(answer_set.answers)
    workers = sorted(
        {w for by_worker in answer_set.answers.values() for w in by_worker}
    )
    if not tasks:
        return TwoCoinResult({}, {}, {}, {}, 0.5, 0.0, 0)

    posterior: dict[int, float] = {}
    for task in tasks:
        by_worker = answer_set.answers[task]
        posterior[task] = (sum(by_worker.values()) + 1.0) / (len(by_worker) + 2.0)

    sensitivity = {w: 0.7 for w in workers}
    specificity = {w: 0.7 for w in workers}
    class_prior = 0.5
    log_likelihood = -math.inf
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        # M-step.
        pos_agree = {w: 0.0 for w in workers}
        pos_total = {w: 0.0 for w in workers}
        neg_agree = {w: 0.0 for w in workers}
        neg_total = {w: 0.0 for w in workers}
        prior_mass = 0.0
        for task in tasks:
            p1 = posterior[task]
            prior_mass += p1
            for worker, answer in answer_set.answers[task].items():
                pos_total[worker] += p1
                neg_total[worker] += 1.0 - p1
                if answer == 1:
                    pos_agree[worker] += p1
                else:
                    neg_agree[worker] += 1.0 - p1
        class_prior = _clip(prior_mass / len(tasks))
        for worker in workers:
            if pos_total[worker] > 0:
                sensitivity[worker] = _clip(
                    pos_agree[worker] / pos_total[worker]
                )
            if neg_total[worker] > 0:
                specificity[worker] = _clip(
                    neg_agree[worker] / neg_total[worker]
                )

        # E-step + likelihood.
        new_ll = 0.0
        for task in tasks:
            log_p1 = math.log(class_prior)
            log_p0 = math.log(1.0 - class_prior)
            for worker, answer in answer_set.answers[task].items():
                sens = sensitivity[worker]
                spec = specificity[worker]
                if answer == 1:
                    log_p1 += math.log(sens)
                    log_p0 += math.log(1.0 - spec)
                else:
                    log_p1 += math.log(1.0 - sens)
                    log_p0 += math.log(spec)
            peak = max(log_p1, log_p0)
            evidence = peak + math.log(
                math.exp(log_p1 - peak) + math.exp(log_p0 - peak)
            )
            posterior[task] = math.exp(log_p1 - evidence)
            new_ll += evidence

        if new_ll - log_likelihood < tolerance and iterations > 1:
            log_likelihood = new_ll
            break
        log_likelihood = new_ll

    labels = {task: int(posterior[task] >= 0.5) for task in tasks}
    return TwoCoinResult(
        labels=labels,
        posteriors=dict(posterior),
        sensitivities=dict(sensitivity),
        specificities=dict(specificity),
        class_prior=class_prior,
        log_likelihood=log_likelihood,
        iterations=iterations,
    )
