"""On-demand row/column benefit computation for large markets.

:func:`repro.benefit.matrices.build_benefit_matrices` materializes the
full ``(n_workers, n_tasks)`` matrices — the right call for the
round-based solvers, and hopeless at streaming scale: a 10^5 × 10^5
market is 10^10 entries.  The streaming dispatcher only ever needs the
benefits of *one* arriving entity against a bounded active set, so
:class:`RowwiseBenefit` computes exactly those slices, vectorized,
from O(workers + tasks) precomputed entity arrays.

The slice formulas are the models' own formulas applied elementwise,
in the same operation order, so a row/column agrees **bit-identically**
with the corresponding slice of the full matrices (a property test
pins this).  Models outside the built-in fast path fall back to
running ``model.matrix`` on a single-row submarket — slower, still
bounded by the active set.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.benefit.base import BenefitModel
from repro.benefit.mutual import LinearCombiner, MutualCombiner
from repro.benefit.requester_benefit import QualityGainBenefit
from repro.benefit.worker_benefit import NetRewardBenefit
from repro.market.market import LaborMarket
from repro.market.wage import FlatCost, LinearEffortCost


class RowwiseBenefit:
    """Combined-benefit rows and columns without the full matrices.

    Parameters mirror :func:`build_benefit_matrices`; the defaults are
    the same library defaults, so the two constructions describe the
    same market.
    """

    def __init__(
        self,
        market: LaborMarket,
        combiner: MutualCombiner | None = None,
        requester_model: BenefitModel | None = None,
        worker_model: BenefitModel | None = None,
    ) -> None:
        self.market = market
        self.combiner = combiner if combiner is not None else LinearCombiner(0.5)
        self.requester_model = (
            requester_model
            if requester_model is not None
            else QualityGainBenefit()
        )
        self.worker_model = (
            worker_model if worker_model is not None else NetRewardBenefit()
        )
        # Entity arrays: O(n) once, every slice vectorizes over them.
        self._skills = market.skill_matrix()
        self._interests = market.interest_matrix()
        self._reservation = np.array(
            [w.reservation_wage for w in market.workers], dtype=float
        )
        self._categories = market.task_categories()
        self._difficulties = market.task_difficulties()
        self._payments = market.task_payments()
        self._efforts = np.array(
            [t.effort for t in market.tasks], dtype=float
        )
        self._fast = isinstance(
            self.requester_model, QualityGainBenefit
        ) and isinstance(self.worker_model, NetRewardBenefit) and isinstance(
            self.worker_model.wage_model, (LinearEffortCost, FlatCost)
        )

    # -- slicing ---------------------------------------------------------

    def row(
        self, worker_index: int, task_indices: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Combined benefit of one worker against selected tasks."""
        tasks = np.asarray(task_indices, dtype=np.int64)
        if tasks.size == 0:
            return np.zeros(0)
        if not self._fast:
            return self._subset_combined([worker_index], tasks)[0]
        req, wrk = self.side_row(worker_index, tasks)
        return self.combiner.edge_matrix(req, wrk)

    def column(
        self, task_index: int, worker_indices: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Combined benefit of one task against selected workers."""
        workers = np.asarray(worker_indices, dtype=np.int64)
        if workers.size == 0:
            return np.zeros(0)
        if not self._fast:
            return self._subset_combined(workers, [task_index])[:, 0]
        cats = self._categories[task_index]
        skills = self._skills[workers, cats]
        accuracy = 0.5 + (skills - 0.5) * (
            1.0 - self._difficulties[task_index]
        )
        req = (
            self.requester_model.value_scale
            * self._payments[task_index]
            * (accuracy - 0.5)
            * 2.0
        )
        costs = self._wage_costs(skills, self._efforts[task_index])
        shortfall = np.maximum(
            self._reservation[workers] - self._payments[task_index], 0.0
        )
        wrk = self._payments[task_index] - costs - shortfall
        wrk = wrk + (
            self.worker_model.interest_weight * self._interests[workers, cats]
        )
        return self.combiner.edge_matrix(req, wrk)

    def side_row(
        self, worker_index: int, task_indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(requester, worker) benefit rows for selected tasks."""
        tasks = np.asarray(task_indices, dtype=np.int64)
        cats = self._categories[tasks]
        skills = self._skills[worker_index, cats]
        accuracy = 0.5 + (skills - 0.5) * (1.0 - self._difficulties[tasks])
        req = (
            self.requester_model.value_scale
            * self._payments[tasks]
            * (accuracy - 0.5)
            * 2.0
        )
        costs = self._wage_costs(skills, self._efforts[tasks])
        shortfall = np.maximum(
            self._reservation[worker_index] - self._payments[tasks], 0.0
        )
        wrk = self._payments[tasks] - costs - shortfall
        wrk = wrk + (
            self.worker_model.interest_weight
            * self._interests[worker_index, cats]
        )
        return req, wrk

    def edge(self, worker_index: int, task_index: int) -> float:
        """Combined benefit of one edge."""
        return float(self.row(worker_index, np.array([task_index]))[0])

    # -- internals -------------------------------------------------------

    def _wage_costs(self, skills, efforts) -> np.ndarray:
        """Vectorized wage-model cost, matching the scalar formulas."""
        model = self.worker_model.wage_model
        if isinstance(model, LinearEffortCost):
            return (
                model.rate
                * efforts
                * (1.0 + model.skill_discount * (1.0 - skills))
            )
        # FlatCost (the only other fast-path model).
        return np.full(np.shape(skills), model.amount)

    def _subset_combined(self, worker_indices, task_indices) -> np.ndarray:
        """Generic fallback: full matrices on the bounded submarket."""
        sub = self.market.subset(list(worker_indices), list(task_indices))
        req = self.requester_model.matrix(sub)
        wrk = self.worker_model.matrix(sub)
        return self.combiner.edge_matrix(req, wrk)
