"""Requester-side benefit: expected answer-quality gain.

For a single-worker task the requester's benefit from worker ``w`` is
how much better than a coin flip the worker's answer is expected to be:
``accuracy(w, t) - 0.5``, scaled by the task's importance (its
payment acts as the requester's own declared value).

For replicated tasks the *marginal* value of one more worker depends on
who else is assigned — that set-dependence is what makes the realistic
objective submodular and is handled by
:class:`repro.core.objective.CoverageObjective`.  The per-edge matrix
built here is the linear surrogate the flow-based solvers use, and the
exact per-edge value used by the ``linear`` combiner.
"""

from __future__ import annotations

import numpy as np

from repro.benefit.base import BenefitModel
from repro.market.market import LaborMarket
from repro.utils.validation import check_nonnegative


class QualityGainBenefit(BenefitModel):
    """``benefit = value_scale * payment * (accuracy - 0.5) * 2``.

    The ``* 2`` normalizes into [−value_scale·pay, value_scale·pay]: a
    perfect worker on a trivial task yields exactly
    ``value_scale * payment``, a coin-flip worker yields 0.  Negative
    values (skill below 0.5 — an adversarial or confused worker) are
    kept: assigning such a worker actively hurts the requester.
    """

    def __init__(self, value_scale: float = 1.0) -> None:
        self.value_scale = check_nonnegative("value_scale", value_scale)

    def matrix(self, market: LaborMarket) -> np.ndarray:
        accuracy = market.accuracy_matrix()
        payments = market.task_payments()[np.newaxis, :]
        return self.value_scale * payments * (accuracy - 0.5) * 2.0
