"""Normalizing the two sides' benefit scales before combining.

The linear combiner adds requester and worker benefit — but the two
are denominated in different units.  On a freelance market the worker
side (payments minus costs, tens of currency units) dwarfs the
requester side (normalized quality, ~1 per task), so a λ=0.5 "balanced"
objective is in fact worker-dominated.  Normalization rescales each
side matrix to a comparable range *before* the combiner sees it, making
λ mean what it says.

Three scalers, all affine-per-side (they preserve each side's internal
ordering and therefore the set of optimal assignments at λ∈{0,1}):

* ``max-abs``  — divide by the side's max |entry| (robustly bounded to
  [−1, 1]; the default);
* ``mean-pos`` — divide by the mean of the side's positive entries
  (scale-free "typical edge = 1");
* ``none``     — identity, for ablation.
"""

from __future__ import annotations

import numpy as np

from repro.benefit.base import BenefitModel
from repro.errors import ValidationError
from repro.market.market import LaborMarket

SCALERS = ("max-abs", "mean-pos", "none")


def side_scale(matrix: np.ndarray, scaler: str) -> float:
    """The divisor a scaler applies to one side matrix (>= tiny)."""
    if scaler not in SCALERS:
        raise ValidationError(
            f"unknown scaler {scaler!r}; options: {SCALERS}"
        )
    arr = np.asarray(matrix, dtype=float)
    if scaler == "none" or arr.size == 0:
        return 1.0
    if scaler == "max-abs":
        scale = float(np.abs(arr).max())
    else:  # mean-pos
        positives = arr[arr > 0]
        scale = float(positives.mean()) if positives.size else 0.0
    return scale if scale > 0 else 1.0


class NormalizedBenefit(BenefitModel):
    """Wraps a side model, dividing its matrix by the chosen scale.

    The scale is computed per market snapshot (it must reflect the
    entries actually present), so wrapping is free of global state.
    """

    def __init__(self, inner: BenefitModel, scaler: str = "max-abs") -> None:
        if scaler not in SCALERS:
            raise ValidationError(
                f"unknown scaler {scaler!r}; options: {SCALERS}"
            )
        self.inner = inner
        self.scaler = scaler

    def matrix(self, market: LaborMarket) -> np.ndarray:
        raw = self.inner.matrix(market)
        return raw / side_scale(raw, self.scaler)


def normalized_problem(
    market: LaborMarket,
    combiner=None,
    scaler: str = "max-abs",
):
    """An :class:`~repro.core.problem.MBAProblem` with both sides
    normalized by ``scaler`` — the drop-in way to get a scale-honest λ.
    """
    from repro.benefit.requester_benefit import QualityGainBenefit
    from repro.benefit.worker_benefit import NetRewardBenefit
    from repro.core.problem import MBAProblem

    return MBAProblem(
        market,
        combiner=combiner,
        requester_model=NormalizedBenefit(QualityGainBenefit(), scaler),
        worker_model=NormalizedBenefit(NetRewardBenefit(), scaler),
    )
