"""The benefit-model interface.

A benefit model maps a whole market to a dense ``(n_workers, n_tasks)``
matrix in one vectorized call.  Per-edge scalar access exists for
readability in examples and tests but solvers always use the matrix.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.market.market import LaborMarket


class BenefitModel(abc.ABC):
    """Maps a market to a per-edge benefit matrix for one side."""

    @abc.abstractmethod
    def matrix(self, market: LaborMarket) -> np.ndarray:
        """Dense ``(n_workers, n_tasks)`` benefit matrix.

        Entries may be negative (an edge can be net-harmful for a
        side); solvers treat negative mutual benefit as "leave
        unassigned".
        """

    def edge(self, market: LaborMarket, worker_index: int, task_index: int) -> float:
        """Benefit of a single edge; convenience wrapper over matrix()."""
        return float(self.matrix(market)[worker_index, task_index])
