"""Mutual-benefit combiners: turning two side matrices into one objective.

A combiner exposes two views:

* :meth:`edge_matrix` — a per-edge score matrix, when the combined
  objective decomposes additively over edges (the ``linear`` combiner).
  Flow-based solvers need this.
* :meth:`total` — the combined value of a *whole* assignment given the
  two side totals.  Every combiner supports this; the non-linear ones
  (egalitarian, Nash) are only optimizable through it, which is why the
  greedy/local-search solvers exist.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import ValidationError
from repro.types import Combiner
from repro.utils.validation import check_fraction


class MutualCombiner(abc.ABC):
    """Combines requester-side and worker-side benefit into one number."""

    #: Whether :meth:`edge_matrix` returns an exact edge decomposition
    #: of :meth:`total` (True only for the linear combiner).
    decomposes_over_edges: bool = False

    @abc.abstractmethod
    def total(self, requester_total: float, worker_total: float) -> float:
        """Combined objective value from the two side totals."""

    def edge_matrix(
        self, requester: np.ndarray, worker: np.ndarray
    ) -> np.ndarray:
        """A per-edge surrogate score matrix.

        For non-decomposing combiners this is a *heuristic* guide (the
        unweighted sum); solvers that rely on exactness must check
        :attr:`decomposes_over_edges`.
        """
        return np.asarray(requester) + np.asarray(worker)


class LinearCombiner(MutualCombiner):
    """``lam * B_req + (1 - lam) * B_wrk`` — the paper's primary objective.

    ``lam`` (λ) is the requester-vs-worker trade-off knob swept in
    experiment F6.  λ=1 recovers quality-only assignment, λ=0 a pure
    worker-welfare assignment.
    """

    decomposes_over_edges = True

    def __init__(self, lam: float = 0.5) -> None:
        self.lam = check_fraction("lam", lam)

    def total(self, requester_total: float, worker_total: float) -> float:
        return self.lam * requester_total + (1.0 - self.lam) * worker_total

    def edge_matrix(
        self, requester: np.ndarray, worker: np.ndarray
    ) -> np.ndarray:
        return self.lam * np.asarray(requester) + (1.0 - self.lam) * np.asarray(worker)

    def __repr__(self) -> str:
        return f"LinearCombiner(lam={self.lam})"


class EgalitarianCombiner(MutualCombiner):
    """``min(B_req, B_wrk)`` — max-min fairness between the two sides.

    Optimizing this keeps neither side far ahead; used in the combiner
    ablation (F14) to show the linear objective can starve one side.
    """

    def total(self, requester_total: float, worker_total: float) -> float:
        return min(requester_total, worker_total)

    def __repr__(self) -> str:
        return "EgalitarianCombiner()"


class NashCombiner(MutualCombiner):
    """``log B_req + log B_wrk`` — the Nash bargaining objective.

    Defined only when both side totals are positive; non-positive
    totals map to ``-inf`` so any assignment giving both sides positive
    benefit dominates one that zeroes a side out.
    """

    def total(self, requester_total: float, worker_total: float) -> float:
        if requester_total <= 0 or worker_total <= 0:
            return -math.inf
        return math.log(requester_total) + math.log(worker_total)

    def __repr__(self) -> str:
        return "NashCombiner()"


def make_combiner(kind: Combiner | str, lam: float = 0.5) -> MutualCombiner:
    """Factory from the :class:`repro.types.Combiner` enum (or its value).

    ``Combiner.COVERAGE`` deliberately has no combiner object — the
    coverage objective is set-valued and lives in
    :class:`repro.core.objective.CoverageObjective`.
    """
    kind = Combiner(kind) if not isinstance(kind, Combiner) else kind
    if kind is Combiner.LINEAR:
        return LinearCombiner(lam)
    if kind is Combiner.EGALITARIAN:
        return EgalitarianCombiner()
    if kind is Combiner.NASH:
        return NashCombiner()
    raise ValidationError(
        f"combiner {kind} has no per-edge combiner; use CoverageObjective"
    )
