"""One-call construction of all benefit matrices for a market.

Solvers consume a :class:`BenefitMatrices` bundle — the requester
matrix, the worker matrix, and the combined per-edge matrix under a
chosen combiner — so that the expensive vectorized computation happens
exactly once per market snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benefit.base import BenefitModel
from repro.benefit.mutual import LinearCombiner, MutualCombiner
from repro.benefit.requester_benefit import QualityGainBenefit
from repro.benefit.worker_benefit import NetRewardBenefit
from repro.errors import ValidationError
from repro.market.market import LaborMarket


@dataclass(frozen=True)
class BenefitMatrices:
    """All per-edge benefit views of one market snapshot.

    Attributes
    ----------
    requester:
        ``(n_workers, n_tasks)`` requester-side benefit.
    worker:
        ``(n_workers, n_tasks)`` worker-side benefit.
    combined:
        Per-edge combined score under the chosen combiner (exact for
        the linear combiner, a surrogate otherwise).
    combiner:
        The combiner that produced ``combined``.
    """

    requester: np.ndarray
    worker: np.ndarray
    combined: np.ndarray
    combiner: MutualCombiner

    def __post_init__(self) -> None:
        if not (
            self.requester.shape == self.worker.shape == self.combined.shape
        ):
            raise ValidationError(
                "benefit matrices must share one shape, got "
                f"{self.requester.shape}, {self.worker.shape}, "
                f"{self.combined.shape}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return self.requester.shape  # type: ignore[return-value]

    def side_totals(self, edges: list[tuple[int, int]]) -> tuple[float, float]:
        """(requester_total, worker_total) over a set of edges.

        Called on every objective evaluation inside greedy/local-search
        loops, so the per-edge lookups run as one fancy-indexed gather
        per side instead of a Python generator over scalars.
        """
        if not edges:
            return 0.0, 0.0
        edge_array = np.asarray(edges, dtype=np.int64)
        rows = edge_array[:, 0]
        cols = edge_array[:, 1]
        req = float(self.requester[rows, cols].sum())
        wrk = float(self.worker[rows, cols].sum())
        return req, wrk

    def combined_total(self, edges: list[tuple[int, int]]) -> float:
        """Combined objective of a set of edges under the combiner."""
        req, wrk = self.side_totals(edges)
        return self.combiner.total(req, wrk)


def build_benefit_matrices(
    market: LaborMarket,
    combiner: MutualCombiner | None = None,
    requester_model: BenefitModel | None = None,
    worker_model: BenefitModel | None = None,
) -> BenefitMatrices:
    """Build the matrix bundle with the library defaults.

    Defaults: :class:`QualityGainBenefit`, :class:`NetRewardBenefit`,
    and a λ=0.5 :class:`LinearCombiner` — the configuration every
    example starts from.
    """
    combiner = combiner if combiner is not None else LinearCombiner(0.5)
    requester_model = (
        requester_model if requester_model is not None else QualityGainBenefit()
    )
    worker_model = worker_model if worker_model is not None else NetRewardBenefit()
    requester = requester_model.matrix(market)
    worker = worker_model.matrix(market)
    combined = combiner.edge_matrix(requester, worker)
    return BenefitMatrices(
        requester=requester, worker=worker, combined=combined, combiner=combiner
    )
