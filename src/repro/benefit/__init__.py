"""Benefit models: how much each side gains from an edge (worker, task).

The requester side values *quality* (the worker's marginal contribution
to the task's aggregated-answer accuracy); the worker side values
*payment minus effort cost plus interest match*.  The
:mod:`repro.benefit.mutual` module combines the two sides into the
objective the core solvers maximize.
"""

from repro.benefit.base import BenefitModel
from repro.benefit.matrices import BenefitMatrices, build_benefit_matrices
from repro.benefit.mutual import (
    EgalitarianCombiner,
    LinearCombiner,
    MutualCombiner,
    NashCombiner,
    make_combiner,
)
from repro.benefit.normalization import NormalizedBenefit, normalized_problem
from repro.benefit.requester_benefit import QualityGainBenefit
from repro.benefit.rows import RowwiseBenefit
from repro.benefit.worker_benefit import NetRewardBenefit

__all__ = [
    "BenefitMatrices",
    "BenefitModel",
    "EgalitarianCombiner",
    "LinearCombiner",
    "MutualCombiner",
    "NashCombiner",
    "NetRewardBenefit",
    "NormalizedBenefit",
    "QualityGainBenefit",
    "RowwiseBenefit",
    "build_benefit_matrices",
    "make_combiner",
    "normalized_problem",
]
