"""Worker-side benefit: net reward plus interest match.

``benefit = payment - cost(w, t) - reservation_penalty + interest_weight * interest``

* ``payment`` is the task's per-worker reward;
* ``cost`` comes from the market's wage model (effort priced in money);
* if the payment is below the worker's reservation wage the shortfall
  is charged again as a penalty — under-paying a worker is worse than
  neutral because it signals the platform undervalues them;
* ``interest`` is the worker's affinity for the task's category, the
  non-monetary component of willingness.
"""

from __future__ import annotations

import numpy as np

from repro.benefit.base import BenefitModel
from repro.market.market import LaborMarket
from repro.market.wage import LinearEffortCost, WageModel
from repro.utils.validation import check_nonnegative


class NetRewardBenefit(BenefitModel):
    """Payment − effort cost − reservation shortfall + interest bonus."""

    def __init__(
        self,
        wage_model: WageModel | None = None,
        interest_weight: float = 0.3,
    ) -> None:
        self.wage_model = wage_model if wage_model is not None else LinearEffortCost()
        self.interest_weight = check_nonnegative("interest_weight", interest_weight)

    def matrix(self, market: LaborMarket) -> np.ndarray:
        n_w, n_t = market.n_workers, market.n_tasks
        benefit = np.zeros((n_w, n_t))
        if n_w == 0 or n_t == 0:
            return benefit
        payments = market.task_payments()
        categories = market.task_categories()
        interests = market.interest_matrix()[:, categories]
        for i, worker in enumerate(market.workers):
            costs = np.array(
                [self.wage_model.cost(worker, task) for task in market.tasks]
            )
            shortfall = np.maximum(worker.reservation_wage - payments, 0.0)
            benefit[i, :] = payments - costs - shortfall
        benefit += self.interest_weight * interests
        return benefit
