"""``repro.resilience`` — fault injection and graceful degradation.

Real bipartite labor markets are faulty: workers no-show, answers get
lost, tasks are cancelled mid-round, and solvers blow their deadlines
under load.  This package makes those failures *injectable* (so
robustness is testable and benchmarkable) and *survivable* (so a
multi-round simulation degrades instead of crashing):

* :class:`FaultPlan` / :class:`RoundFaults`
  (:mod:`repro.resilience.faults`) — a seeded, scenario-configurable
  schedule of worker no-shows, dropped answers, task cancellations,
  and forced solver failures, deterministic per ``(seed, round)``;
* :class:`RetryPolicy` and the named :data:`RESILIENCE_PROFILES`
  (:mod:`repro.resilience.policy`) — declarative retry / backoff /
  deadline / fallback knobs;
* :class:`ResilientSolver` (:mod:`repro.resilience.executor`) — wraps
  any registered solver with deadlines, escalating retries, partial-
  result salvage, and an ordered fallback chain, reporting which tier
  actually delivered via :class:`SolveReport`;
* :class:`ChaosPlan` (:mod:`repro.resilience.faults`) — seeded
  *process-level* sabotage (worker kill / hang / slowdown) for
  durability testing;
* :class:`CheckpointStore` / :class:`SupervisedPool`
  (:mod:`repro.resilience.runtime`) — run-level durability: atomic
  checkpoints that make sweeps and simulations resumable, and a
  supervised process pool with timeouts, seeded-backoff retries,
  broken-pool recovery, and poison-task quarantine.

Importing this package registers the ``"resilient"`` solver with the
core registry (``get_solver("resilient", primary="auction")``); the
registry also knows to import it lazily, so the name is usable without
touching this module first.  See ``docs/resilience.md``.
"""

from repro.resilience.executor import (
    BUDGET_KWARGS,
    ResilientSolver,
    SolveReport,
)
from repro.resilience.faults import (
    CHAOS_ACTIONS,
    SOLVER_FAILURE_MODES,
    ChaosPlan,
    FaultPlan,
    RoundFaults,
)
from repro.resilience.policy import (
    RESILIENCE_PROFILES,
    RetryPolicy,
    get_profile,
)
from repro.resilience.runtime import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    QuarantinedTask,
    RunStats,
    RuntimePolicy,
    SupervisedPool,
)

__all__ = [
    "BUDGET_KWARGS",
    "CHAOS_ACTIONS",
    "CHECKPOINT_SCHEMA",
    "ChaosPlan",
    "CheckpointStore",
    "FaultPlan",
    "QuarantinedTask",
    "RESILIENCE_PROFILES",
    "ResilientSolver",
    "RetryPolicy",
    "RoundFaults",
    "RunStats",
    "RuntimePolicy",
    "SOLVER_FAILURE_MODES",
    "SolveReport",
    "SupervisedPool",
    "get_profile",
]
