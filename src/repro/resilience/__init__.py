"""``repro.resilience`` — fault injection and graceful degradation.

Real bipartite labor markets are faulty: workers no-show, answers get
lost, tasks are cancelled mid-round, and solvers blow their deadlines
under load.  This package makes those failures *injectable* (so
robustness is testable and benchmarkable) and *survivable* (so a
multi-round simulation degrades instead of crashing):

* :class:`FaultPlan` / :class:`RoundFaults`
  (:mod:`repro.resilience.faults`) — a seeded, scenario-configurable
  schedule of worker no-shows, dropped answers, task cancellations,
  and forced solver failures, deterministic per ``(seed, round)``;
* :class:`RetryPolicy` and the named :data:`RESILIENCE_PROFILES`
  (:mod:`repro.resilience.policy`) — declarative retry / backoff /
  deadline / fallback knobs;
* :class:`ResilientSolver` (:mod:`repro.resilience.executor`) — wraps
  any registered solver with deadlines, escalating retries, partial-
  result salvage, and an ordered fallback chain, reporting which tier
  actually delivered via :class:`SolveReport`.

Importing this package registers the ``"resilient"`` solver with the
core registry (``get_solver("resilient", primary="auction")``); the
registry also knows to import it lazily, so the name is usable without
touching this module first.  See ``docs/resilience.md``.
"""

from repro.resilience.executor import (
    BUDGET_KWARGS,
    ResilientSolver,
    SolveReport,
)
from repro.resilience.faults import (
    SOLVER_FAILURE_MODES,
    FaultPlan,
    RoundFaults,
)
from repro.resilience.policy import (
    RESILIENCE_PROFILES,
    RetryPolicy,
    get_profile,
)

__all__ = [
    "BUDGET_KWARGS",
    "FaultPlan",
    "RESILIENCE_PROFILES",
    "ResilientSolver",
    "RetryPolicy",
    "RoundFaults",
    "SOLVER_FAILURE_MODES",
    "SolveReport",
    "get_profile",
]
