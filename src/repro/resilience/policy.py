"""Retry, backoff, deadline, and fallback policy for resilient solves.

A :class:`RetryPolicy` is the declarative half of the resilience layer:
it says *how hard to try* (retries with escalating iteration budgets),
*how long to wait* (deterministic seeded backoff jitter), *when to give
up on an attempt* (wall-clock deadline), and *what to try next* (an
ordered fallback chain of registered solver names).  The procedural
half — actually running attempts — is
:class:`repro.resilience.executor.ResilientSolver`.

Named profiles bundle sensible knob sets for the CLI and scenarios::

    Scenario(market, solver_name="auction", resilience="default")
    python -m repro simulate market.json --resilience default
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable knob set for one resilient solver stack.

    Attributes
    ----------
    max_retries:
        Extra attempts granted to the primary solver after its first
        failure (0 = fail over to the fallback chain immediately).
    budget_scale:
        Each retry multiplies the primary's iteration budget
        (``max_rounds`` / ``max_moves`` / ... constructor arguments,
        whichever the solver accepts) by this factor — non-convergence
        is usually a budget problem, so retrying harder beats retrying
        identically.
    deadline:
        Wall-clock seconds allotted to each attempt; an attempt that
        finishes late is *discarded* (its result missed the bus) and
        counted as a failure.  ``None`` disables deadline checking.
    backoff_base:
        Seconds slept before retry ``k`` is
        ``backoff_base * backoff_factor**k``, jittered by ``jitter``;
        0 disables sleeping (simulation default — simulated faults do
        not need real waiting).
    jitter:
        Fractional spread of the backoff delay, drawn deterministically
        from ``seed`` so reruns wait identically.
    fallback_chain:
        Registered solver names tried in order (one attempt each) once
        the primary's retries are exhausted.  Later entries should be
        strictly more conservative; the terminal ``greedy`` tier
        essentially cannot fail.
    salvage_partials:
        Accept the feasible partial result carried by a
        :class:`~repro.errors.ConvergenceError` (see the auction
        solver) instead of burning a retry.
    contain_crashes:
        Treat *any* exception from a solver attempt as a failed
        attempt (the resilience layer's carve-out from lint rule R501);
        when off, only :class:`~repro.errors.SolverError` subtypes are
        contained and programming errors propagate.
    seed:
        Seed for the backoff-jitter stream.
    """

    max_retries: int = 2
    budget_scale: float = 4.0
    deadline: float | None = None
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.25
    fallback_chain: tuple[str, ...] = ("flow", "greedy")
    salvage_partials: bool = True
    contain_crashes: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.budget_scale < 1.0:
            raise ConfigurationError(
                f"budget_scale must be >= 1, got {self.budget_scale}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff_base must be >= 0 and backoff_factor >= 1, got "
                f"{self.backoff_base} / {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must lie in [0, 1], got {self.jitter}"
            )

    def backoff_delay(self, attempt: int, rng) -> float:
        """Seconds to wait before retry ``attempt`` (0-based), with
        deterministic jitter in ``[1 - jitter, 1 + jitter]``."""
        if self.backoff_base <= 0:
            return 0.0
        spread = 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return self.backoff_base * self.backoff_factor**attempt * spread


#: Named profiles for the CLI ``--resilience`` flag and
#: ``Scenario(resilience=...)``.  ``"off"`` is handled by the callers
#: (no executor at all), so it is deliberately absent here.
RESILIENCE_PROFILES: dict[str, RetryPolicy] = {
    # Balanced: a couple of escalating retries, then degrade through
    # exact-but-centralized flow down to unkillable greedy.
    "default": RetryPolicy(),
    # Fail over immediately: no retries, straight down the chain.
    # Right when attempts are expensive and any answer beats waiting.
    "failfast": RetryPolicy(max_retries=0),
    # Keep hammering the primary with big budget escalations before
    # falling back; for when the primary's answer quality matters most.
    "patient": RetryPolicy(
        max_retries=4, budget_scale=8.0, fallback_chain=("greedy",)
    ),
    # No safety net below the primary: retries only.  Degraded rounds
    # become empty rounds — useful for measuring what the fallback
    # chain is worth.
    "no-fallback": RetryPolicy(fallback_chain=()),
}


def get_profile(name: str) -> RetryPolicy:
    """Look up a named resilience profile."""
    try:
        return RESILIENCE_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown resilience profile {name!r}; "
            f"known: {sorted(RESILIENCE_PROFILES)}"
        ) from None
