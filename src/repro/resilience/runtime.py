"""Run-level durability: checkpoints, supervision, chaos survival.

A parameter sweep or long simulation is itself a system that can fail:
a pool worker segfaults, a task hangs, the operator hits Ctrl-C, the
host reboots.  This module makes *the run* as resilient as the solvers
it measures:

* :class:`CheckpointStore` — an on-disk, content-addressed record of
  completed work units.  Every write is atomic (temp file + fsync +
  rename, via :mod:`repro.utils.atomic`), so a checkpoint directory is
  valid at every instant and a killed run resumes by skipping exactly
  the recorded units.  A manifest fingerprints the run configuration;
  resuming against a different configuration is refused instead of
  silently mixing incompatible results.
* :class:`SupervisedPool` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  wrapped with per-task wall-clock timeouts, bounded seeded-backoff
  retries, broken-pool recovery (respawn + requeue), poison-task
  quarantine (reported via :class:`RunStats`, never fatal), and
  graceful ``KeyboardInterrupt``/``SIGTERM`` handling that returns the
  partial results instead of orphaning workers.
* :class:`RuntimePolicy` / :class:`RunStats` — the declarative knobs
  and the accounting of what supervision actually did.

Determinism contract: supervision changes *scheduling*, never
*values*.  Work units own their RNG streams up front (the sweep spawns
all of them before submission; the engine checkpoints generator
state), so a run that crashes, retries, and resumes is bit-identical
to one that sailed through.  The chaos tests drive a seeded
:class:`~repro.resilience.faults.ChaosPlan` through this pool and
assert exactly that.

Observability: supervision events surface as
``resilience.runtime.*`` counters (retries, requeues, worker
restarts, timeouts, quarantines, checkpoint hits/writes) plus
``runtime.retry`` / ``runtime.checkpoint`` spans on the active tracer,
so a resumed trace explains what the run skipped and why.
"""

from __future__ import annotations

import contextlib
import json
import re
import signal
import threading
import time
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import obs
from repro.errors import ConfigurationError, ValidationError
from repro.resilience.faults import ChaosPlan
from repro.utils.atomic import atomic_write_text
from repro.utils.rng import derive_rng

CHECKPOINT_SCHEMA = "repro-checkpoint/1"
_MANIFEST_NAME = "manifest.json"
_RECORD_DIR = "records"
_KEY_PATTERN = re.compile(r"^[A-Za-z0-9_-]+$")


# -- policy and accounting ----------------------------------------------------

@dataclass(frozen=True)
class RuntimePolicy:
    """Supervision knobs for a :class:`SupervisedPool` run.

    ``task_timeout`` is a per-task wall-clock bound (``None`` disables
    it); a task that exceeds it is presumed hung, the pool is recycled,
    and the task is charged a *crash*.  Tasks that raise are charged a
    *soft failure* and retried up to ``max_point_retries`` times with
    seeded exponential backoff.  A task reaching ``quarantine_after``
    crashes (kills/hangs with definite blame) — or exhausting its soft
    retries — is quarantined: recorded in :class:`RunStats`, skipped,
    and the run continues.
    """

    task_timeout: float | None = None
    max_point_retries: int = 2
    quarantine_after: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_seed: int = 0

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be > 0 (or None), got "
                f"{self.task_timeout}"
            )
        if self.max_point_retries < 0:
            raise ConfigurationError(
                f"max_point_retries must be >= 0, got "
                f"{self.max_point_retries}"
            )
        if self.quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got "
                f"{self.quarantine_after}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff delays must be >= 0")

    def backoff_delay(self, position: int, attempt: int) -> float:
        """Seeded exponential backoff with deterministic jitter.

        Addressed by ``(backoff_seed, position, attempt)`` so the delay
        schedule — like everything else in a run — replays exactly.
        """
        jitter = derive_rng(
            self.backoff_seed, position, attempt
        ).random()
        delay = self.backoff_base * (2.0 ** attempt) * (0.5 + jitter)
        return min(self.backoff_cap, delay)


@dataclass(frozen=True)
class QuarantinedTask:
    """One work unit given up on: where, why, and after how much."""

    position: int
    reason: str
    crashes: int
    errors: int

    def to_dict(self) -> dict:
        return {
            "position": self.position,
            "reason": self.reason,
            "crashes": self.crashes,
            "errors": self.errors,
        }


@dataclass
class RunStats:
    """What supervision did during one :meth:`SupervisedPool.run`."""

    completed: int = 0
    skipped: int = 0
    retries: int = 0
    requeues: int = 0
    worker_restarts: int = 0
    timeouts: int = 0
    interrupted: bool = False
    quarantined: list[QuarantinedTask] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.quarantined)

    def to_dict(self) -> dict:
        return {
            "completed": self.completed,
            "skipped": self.skipped,
            "retries": self.retries,
            "requeues": self.requeues,
            "worker_restarts": self.worker_restarts,
            "timeouts": self.timeouts,
            "interrupted": self.interrupted,
            "quarantined": [q.to_dict() for q in self.quarantined],
        }


# -- checkpointing ------------------------------------------------------------

class CheckpointStore:
    """Atomic, content-addressed persistence of completed work units.

    Layout::

        <root>/manifest.json          # schema + run fingerprint
        <root>/records/<key>.json     # one completed unit per file

    The *fingerprint* is a JSON-able dict capturing everything that
    makes records reusable (workload identity, seed, solver config —
    the caller decides); its :func:`repro.obs.content_id` is stamped
    into the manifest.  Opening a store against a directory whose
    manifest carries a different fingerprint raises
    :class:`~repro.errors.ValidationError` — a resumed run either
    matches the interrupted one bit-for-bit or is refused.

    Keys are caller-chosen content ids (``[A-Za-z0-9_-]+``); every
    record write goes through :func:`repro.utils.atomic.atomic_write_text`,
    so a crash mid-store leaves the directory with one fewer record,
    never a torn one.
    """

    def __init__(
        self, root: str | Path, fingerprint: dict[str, Any]
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.fingerprint_id = obs.content_id(fingerprint)
        self._open()

    # -- identity --------------------------------------------------------

    @staticmethod
    def key_for(payload: object) -> str:
        """Durable content-addressed key for a work-unit identity."""
        return obs.content_id(payload)

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def record_path(self, key: str) -> Path:
        self._check_key(key)
        return self.root / _RECORD_DIR / f"{key}.json"

    def _open(self) -> None:
        manifest_path = self.manifest_path
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
            except json.JSONDecodeError:
                raise ValidationError(
                    f"{manifest_path} is not valid JSON — the "
                    "checkpoint directory is corrupt; remove it to "
                    "start fresh"
                ) from None
            if manifest.get("schema") != CHECKPOINT_SCHEMA:
                raise ValidationError(
                    f"{manifest_path} has schema "
                    f"{manifest.get('schema')!r}, expected "
                    f"{CHECKPOINT_SCHEMA!r}"
                )
            found = manifest.get("fingerprint_id")
            if found != self.fingerprint_id:
                raise ValidationError(
                    f"checkpoint directory {self.root} belongs to a "
                    f"different run configuration (fingerprint "
                    f"{found} != {self.fingerprint_id}); point "
                    "--checkpoint at a fresh directory or rerun the "
                    "original configuration"
                )
            return
        atomic_write_text(
            manifest_path,
            json.dumps(
                {
                    "schema": CHECKPOINT_SCHEMA,
                    "fingerprint_id": self.fingerprint_id,
                    "fingerprint": self.fingerprint,
                },
                indent=2,
                sort_keys=True,
                default=str,
            )
            + "\n",
        )

    # -- records ---------------------------------------------------------

    def has(self, key: str) -> bool:
        return self.record_path(key).exists()

    def keys(self) -> set[str]:
        """Keys of every record currently on disk."""
        record_dir = self.root / _RECORD_DIR
        if not record_dir.is_dir():
            return set()
        return {path.stem for path in record_dir.glob("*.json")}

    def load(self, key: str) -> Any | None:
        """The recorded payload for ``key``, or ``None`` if absent."""
        path = self.record_path(key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError:
            raise ValidationError(
                f"checkpoint record {path} is not valid JSON — the "
                "checkpoint directory is corrupt"
            ) from None

    def store(self, key: str, payload: Any) -> Path:
        """Atomically persist one completed unit under ``key``."""
        with obs.span("runtime.checkpoint", key=key):
            path = atomic_write_text(
                self.record_path(key),
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
            )
        obs.count("resilience.runtime.checkpoint.writes")
        return path

    @staticmethod
    def _check_key(key: str) -> None:
        if not _KEY_PATTERN.fullmatch(key):
            raise ValidationError(
                f"checkpoint key {key!r} is not a content id "
                "([A-Za-z0-9_-]+)"
            )


# -- supervised execution -----------------------------------------------------

def _worker_init() -> None:
    """Pool-worker signal hygiene.

    Workers must not inherit the parent's SIGTERM-to-KeyboardInterrupt
    handler (they'd print tracebacks instead of dying quietly when the
    pool terminates them), and they ignore SIGINT so a terminal Ctrl-C
    reaches only the parent — which then kills the pool deliberately.
    """
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)


def _supervised_entry(payload: tuple) -> Any:
    """Worker-side entry: run the chaos plan, then the real task.

    Top-level so it pickles by reference.  Chaos executes *before* the
    task so a killed attempt does no work at all — exactly the failure
    the checkpoint layer must mask.
    """
    fn, args, chaos, position, attempt = payload
    if chaos is not None:
        chaos.execute(position, attempt)
    return fn(args)


class SupervisedPool:
    """A process pool that survives its workers (and its operator).

    ``run(fn, tasks)`` executes ``fn(task)`` for every task in a
    :class:`~concurrent.futures.ProcessPoolExecutor` under a
    :class:`RuntimePolicy`:

    * a worker that **raises** costs its task a soft failure — retried
      with seeded backoff, quarantined past ``max_point_retries``;
    * a worker that **dies** breaks the pool; the pool is respawned
      and every in-flight task requeued.  Because a broken pool cannot
      say *which* task killed it, the implicated tasks re-run one at a
      time (isolation) until the poison task crashes alone — definite
      blame — and quarantines after ``quarantine_after`` crashes;
    * a task that **exceeds** ``task_timeout`` is presumed hung: the
      pool is recycled (a running future cannot be cancelled), the
      overdue task charged a crash, innocent in-flight tasks requeued
      blame-free;
    * ``KeyboardInterrupt``/``SIGTERM`` kill the workers, flush
      nothing mid-write (all persistence is atomic), and return the
      partial results with ``stats.interrupted`` set.

    At most ``n_workers`` tasks are ever in flight, so submission time
    approximates start time and the wall-clock timeout measures the
    task, not the queue.
    """

    def __init__(
        self,
        n_workers: int,
        policy: RuntimePolicy | None = None,
        chaos: ChaosPlan | None = None,
        mp_context=None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.n_workers = n_workers
        self.policy = policy if policy is not None else RuntimePolicy()
        self.chaos = chaos
        self.mp_context = mp_context

    # -- public API ------------------------------------------------------

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        on_result: Callable[[int, Any], None] | None = None,
    ) -> tuple[dict[int, Any], RunStats]:
        """Execute every task; returns ``(position -> result, stats)``.

        ``fn`` must be a module-level (picklable) callable.
        ``on_result`` runs in the parent as each task completes — the
        sweep layer uses it to write checkpoint records the moment a
        point finishes, so an interrupt can never lose completed work.
        Quarantined positions are absent from the result dict and
        listed in ``stats.quarantined``.
        """
        stats = RunStats()
        results: dict[int, Any] = {}
        pending: deque[int] = deque(range(len(tasks)))
        isolation: deque[int] = deque()
        attempts: dict[int, int] = {}
        errors: dict[int, int] = {}
        crashes: dict[int, int] = {}
        self._generation = 0
        executor = self._spawn()
        in_flight: dict[Future, tuple[int, float]] = {}
        previous_sigterm = self._install_sigterm()
        try:
            while pending or isolation or in_flight:
                executor = self._fill(
                    executor, fn, tasks, pending, isolation, in_flight,
                    attempts, stats,
                )
                if not in_flight:
                    continue
                self._await_one(in_flight)
                executor = self._reap(
                    executor, done=[f for f in in_flight if f.done()],
                    in_flight=in_flight, results=results,
                    pending=pending, isolation=isolation,
                    attempts=attempts, errors=errors, crashes=crashes,
                    stats=stats, on_result=on_result,
                )
                executor = self._expire(
                    executor, in_flight, pending, isolation,
                    crashes, stats,
                )
        except KeyboardInterrupt:
            stats.interrupted = True
            obs.count("resilience.runtime.interrupts")
            self._kill_pool(executor)
        finally:
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
            executor.shutdown(wait=False, cancel_futures=True)
        return results, stats

    # -- pool lifecycle --------------------------------------------------

    def _spawn(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=self.mp_context,
            initializer=_worker_init,
        )

    def _kill_pool(self, executor: ProcessPoolExecutor) -> None:
        """Hard-stop a pool: SIGKILL the workers, drop the queue.

        Used on recycle (broken/hung pool) and on interrupt — the one
        path where waiting politely could wait forever.
        """
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            with contextlib.suppress(OSError):
                process.kill()
        executor.shutdown(wait=False, cancel_futures=True)

    def _recycle(
        self, executor: ProcessPoolExecutor, stats: RunStats
    ) -> ProcessPoolExecutor:
        self._kill_pool(executor)
        self._generation += 1
        stats.worker_restarts += 1
        obs.count("resilience.runtime.worker_restarts")
        return self._spawn()

    @staticmethod
    def _install_sigterm():
        """Route SIGTERM through the KeyboardInterrupt path (main
        thread only), so ``kill <pid>`` gets the same graceful
        partial-result shutdown as Ctrl-C."""
        if threading.current_thread() is not threading.main_thread():
            return None

        def _to_interrupt(signum, frame):
            raise KeyboardInterrupt

        try:
            return signal.signal(signal.SIGTERM, _to_interrupt)
        except (ValueError, OSError):
            return None

    # -- scheduling ------------------------------------------------------

    def _capacity(self, isolation: deque[int]) -> int:
        # Isolation mode runs implicated tasks strictly one at a time:
        # a crash with a single task in flight is definite blame.
        return 1 if isolation else self.n_workers

    def _fill(
        self, executor, fn, tasks, pending, isolation, in_flight,
        attempts, stats,
    ):
        while len(in_flight) < self._capacity(isolation):
            if isolation:
                if in_flight:
                    break
                source = isolation
            elif pending:
                source = pending
            else:
                break
            position = source.popleft()
            attempt = attempts.get(position, 0)
            attempts[position] = attempt + 1
            try:
                future = executor.submit(
                    _supervised_entry,
                    (fn, tasks[position], self.chaos, position,
                     attempt),
                )
            except BrokenProcessPool:
                # The attempt never started: give the position back to
                # its queue (and its attempt number back) and recycle.
                source.appendleft(position)
                attempts[position] = attempt
                executor = self._recycle(executor, stats)
                continue
            in_flight[future] = (
                position, time.monotonic(), self._generation
            )
        return executor

    def _await_one(self, in_flight) -> None:
        timeout = None
        if self.policy.task_timeout is not None:
            now = time.monotonic()
            deadline = min(
                submitted + self.policy.task_timeout
                for _, submitted, _ in in_flight.values()
            )
            timeout = max(0.01, deadline - now)
        wait(set(in_flight), timeout=timeout,
             return_when=FIRST_COMPLETED)

    def _reap(
        self, executor, done, in_flight, results, pending, isolation,
        attempts, errors, crashes, stats, on_result,
    ):
        # Successes first: a pool breakage clears in_flight wholesale,
        # and a task that finished cleanly in the same pass should land
        # in the results, not be needlessly requeued as implicated.
        done = sorted(done, key=lambda f: f.exception() is not None)
        for future in done:
            if future not in in_flight:
                continue  # cleared by an earlier breakage this pass
            position, _, generation = in_flight.pop(future)
            try:
                value = future.result()
            except BrokenProcessPool:
                executor = self._breakage(
                    executor, position, generation, in_flight,
                    isolation, crashes, stats,
                )
            except Exception as error:  # supervision boundary
                self._soft_failure(
                    position, error, pending, isolation,
                    attempts, errors, crashes, stats,
                )
            else:
                results[position] = value
                stats.completed += 1
                if on_result is not None:
                    on_result(position, value)
        return executor

    def _expire(
        self, executor, in_flight, pending, isolation, crashes, stats,
    ):
        if self.policy.task_timeout is None or not in_flight:
            return executor
        now = time.monotonic()
        overdue = [
            (future, position)
            for future, (position, submitted, _) in in_flight.items()
            if not future.done()
            and now - submitted > self.policy.task_timeout
        ]
        if not overdue:
            return executor
        # A running future cannot be cancelled; reclaiming the worker
        # means recycling the pool.  Overdue tasks get definite blame
        # (their own clock ran out); the rest requeue blame-free.
        overdue_positions = {position for _, position in overdue}
        innocents = [
            position
            for future, (position, _, _) in in_flight.items()
            if position not in overdue_positions
        ]
        in_flight.clear()
        executor = self._recycle(executor, stats)
        for position in sorted(overdue_positions):
            stats.timeouts += 1
            obs.count("resilience.runtime.timeouts")
            self._crash(
                position, "task timeout", isolation, crashes, stats
            )
        for position in innocents:
            stats.requeues += 1
            obs.count("resilience.runtime.requeues")
            isolation.append(position)
        return executor

    # -- failure accounting ----------------------------------------------

    def _breakage(
        self, executor, position, generation, in_flight, isolation,
        crashes, stats,
    ):
        """A worker died.  With one task in flight the blame is
        definite; otherwise every implicated task re-runs in
        isolation until the culprit crashes alone."""
        if generation != self._generation:
            # This future died with an already-replaced pool (the
            # breakage was handled at submit time); just requeue it.
            stats.requeues += 1
            obs.count("resilience.runtime.requeues")
            isolation.append(position)
            return executor
        implicated = [position] + [
            pos for pos, _, _ in in_flight.values()
        ]
        in_flight.clear()
        executor = self._recycle(executor, stats)
        if len(implicated) == 1:
            self._crash(
                implicated[0], "worker died", isolation, crashes,
                stats,
            )
            return executor
        for pos in implicated:
            stats.requeues += 1
            obs.count("resilience.runtime.requeues")
            isolation.append(pos)
        return executor

    def _crash(
        self, position, reason, isolation, crashes, stats,
    ) -> None:
        crashes[position] = crashes.get(position, 0) + 1
        if crashes[position] >= self.policy.quarantine_after:
            self._quarantine(
                position,
                f"{reason} x{crashes[position]}",
                crashes, stats,
            )
            return
        stats.retries += 1
        obs.count("resilience.runtime.retries")
        isolation.append(position)

    def _soft_failure(
        self, position, error, pending, isolation,
        attempts, errors, crashes, stats,
    ) -> None:
        errors[position] = errors.get(position, 0) + 1
        if errors[position] > self.policy.max_point_retries:
            self._quarantine(
                position,
                f"raised {type(error).__name__}: {error}",
                crashes, stats, errors=errors,
            )
            return
        stats.retries += 1
        obs.count("resilience.runtime.retries")
        attempt = attempts.get(position, 1)
        delay = self.policy.backoff_delay(position, attempt)
        with obs.span(
            "runtime.retry", position=position, attempt=attempt
        ):
            if delay > 0:
                time.sleep(delay)
        # Retried soft failures rejoin the parallel queue — unlike
        # crashes, an exception cannot hurt other tasks.
        (isolation if isolation else pending).append(position)

    def _quarantine(
        self, position, reason, crashes, stats, errors=None,
    ) -> None:
        stats.quarantined.append(
            QuarantinedTask(
                position=position,
                reason=reason,
                crashes=crashes.get(position, 0),
                errors=(errors or {}).get(position, 0),
            )
        )
        obs.count("resilience.runtime.quarantined")
