"""The resilient solver executor.

:class:`ResilientSolver` wraps any registered solver with the full
graceful-degradation stack:

1. **deadline** — each attempt is timed; a result that arrives after
   the policy's wall-clock deadline missed the bus and is discarded;
2. **salvage** — a :class:`~repro.errors.ConvergenceError` carrying a
   feasible ``partial`` edge set (the auction solver populates one) is
   accepted as a degraded result instead of burning a retry;
3. **retries** — the primary solver is re-run with escalating
   iteration budgets (``budget_scale**attempt``) and deterministic
   seeded backoff jitter between attempts;
4. **fallback chain** — once retries are exhausted, strictly more
   conservative solvers are tried in order (one attempt each), ending
   at a tier that essentially cannot fail.

Every solve produces a :class:`SolveReport` saying which tier actually
delivered, how many attempts failed first, and how long the whole
stack took — degradation is recorded, never silent.  When every tier
fails, :class:`~repro.errors.ResilienceExhaustedError` carries the
whole attempt log.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass

from repro import obs
from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, get_solver, register_solver
from repro.errors import (
    ConvergenceError,
    DeadlineExceededError,
    InfeasibleError,
    ResilienceExhaustedError,
    SolverError,
    ValidationError,
)
from repro.resilience.policy import RetryPolicy, get_profile
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.timer import Timer

#: Constructor argument names understood as iteration budgets; retries
#: escalate whichever of these the primary solver accepts.
BUDGET_KWARGS = ("max_rounds", "max_moves", "max_iterations", "max_passes")


@dataclass(frozen=True)
class SolveReport:
    """How one resilient solve actually went.

    ``tier`` is 0 when the primary produced the assignment and ``k``
    when the ``k``-th fallback did; ``solver_name`` names that tier.
    ``retries`` counts the failed attempts (all tiers) that preceded
    success.  ``salvaged`` marks a partial result recovered from a
    :class:`~repro.errors.ConvergenceError` rather than a clean solve.
    """

    solver_name: str
    tier: int
    retries: int
    wall_time: float
    salvaged: bool = False
    forced_failure: str | None = None


@register_solver("resilient")
class ResilientSolver(Solver):
    """Deadline + retry + fallback wrapper around a registered solver.

    Parameters
    ----------
    primary:
        Registered solver name (budget escalation re-instantiates it
        per retry) or a prebuilt :class:`Solver` instance (reused
        as-is on every attempt — no escalation).
    policy:
        A :class:`RetryPolicy`, a profile name, or ``None`` for the
        ``"default"`` profile.
    solver_kwargs:
        Constructor arguments for a name-based primary.
    fallback_chain:
        Overrides the policy's chain; entries equal to the primary are
        skipped (retrying the primary again is what retries are for).
    """

    def __init__(
        self,
        primary: str | Solver = "auction",
        policy: RetryPolicy | str | None = None,
        solver_kwargs: dict | None = None,
        fallback_chain: tuple[str, ...] | None = None,
    ) -> None:
        if policy is None:
            policy = get_profile("default")
        elif isinstance(policy, str):
            policy = get_profile(policy)
        self.policy = policy
        self._solver_kwargs = dict(solver_kwargs or {})
        if isinstance(primary, Solver):
            self._primary = primary
            self._primary_name = primary.name
            self._rebuild_primary = False
        else:
            self._primary = get_solver(primary, **self._solver_kwargs)
            self._primary_name = primary
            self._rebuild_primary = True
        chain = (
            fallback_chain
            if fallback_chain is not None
            else policy.fallback_chain
        )
        self._fallbacks: list[Solver] = [
            get_solver(name)
            for name in chain
            if name != self._primary_name
        ]
        self.last_report: SolveReport | None = None

    # -- Solver contract -------------------------------------------------

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        assignment, report = self.solve_resilient(problem, seed=seed)
        self.last_report = report
        # The registry contract tags assignments with the registered
        # name; the delivering tier stays visible in ``last_report``.
        return self._finish(problem, list(assignment.edges))

    def observe_round(
        self, problem: MBAProblem, assignment: Assignment
    ) -> None:
        """Keep every history-aware tier current, whichever delivered."""
        self._primary.observe_round(problem, assignment)
        for fallback in self._fallbacks:
            fallback.observe_round(problem, assignment)

    # -- the resilient stack ---------------------------------------------

    def solve_resilient(
        self,
        problem: MBAProblem,
        seed: SeedLike = None,
        forced_failure: str | None = None,
    ) -> tuple[Assignment, SolveReport]:
        """Run the full deadline/retry/fallback stack once.

        ``forced_failure`` (``"convergence"`` or ``"deadline"``) makes
        the first primary attempt fail that way — the hook fault
        injection uses to simulate an overloaded assignment service.
        """
        policy = self.policy
        attempts: list[tuple[str, Exception]] = []
        with Timer() as total:
            outcome = self._run_tiers(
                problem, seed, forced_failure, attempts
            )
        if outcome is None:
            raise ResilienceExhaustedError(
                f"all {1 + policy.max_retries} primary attempt(s) and "
                f"{len(self._fallbacks)} fallback tier(s) failed for "
                f"solver {self._primary_name!r}: "
                + "; ".join(
                    f"{name}: {type(err).__name__}" for name, err in attempts
                ),
                attempts,
            )
        assignment, tier, tier_name, salvaged = outcome
        report = SolveReport(
            solver_name=tier_name,
            tier=tier,
            retries=len(attempts),
            wall_time=total.elapsed,
            salvaged=salvaged,
            forced_failure=forced_failure,
        )
        obs.count("resilience.solves")
        obs.count("resilience.failed_attempts", len(attempts))
        if tier > 0:
            obs.count("resilience.fallback_solves")
        if salvaged:
            obs.count("resilience.salvaged_solves")
        self.last_report = report
        return assignment, report

    def _run_tiers(
        self,
        problem: MBAProblem,
        seed: SeedLike,
        forced_failure: str | None,
        attempts: list[tuple[str, Exception]],
    ) -> tuple[Assignment, int, str, bool] | None:
        policy = self.policy
        for attempt in range(1 + policy.max_retries):
            if attempt > 0:
                delay = policy.backoff_delay(
                    attempt - 1, derive_rng(policy.seed, attempt)
                )
                if delay > 0:
                    time.sleep(delay)
            injected = forced_failure if attempt == 0 else None
            result = self._attempt(
                self._primary_instance(attempt),
                problem,
                seed,
                attempts,
                injected,
                tier=0,
                attempt_index=attempt,
            )
            if result is not None:
                assignment, salvaged = result
                return assignment, 0, self._primary_name, salvaged
        for tier, fallback in enumerate(self._fallbacks, start=1):
            result = self._attempt(
                fallback, problem, seed, attempts, None,
                tier=tier, attempt_index=0,
            )
            if result is not None:
                assignment, salvaged = result
                return assignment, tier, fallback.name, salvaged
        return None

    def _attempt(
        self,
        solver: Solver,
        problem: MBAProblem,
        seed: SeedLike,
        attempts: list[tuple[str, Exception]],
        injected: str | None,
        tier: int = 0,
        attempt_index: int = 0,
    ) -> tuple[Assignment, bool] | None:
        """One traced attempt; ``None`` means it failed (and was logged).

        The span carries the tier (0 = primary, k = k-th fallback),
        the retry index within the tier, and the outcome: ``ok``,
        ``salvaged``, or ``failed`` plus the failure's exception type
        (with a ``fault`` tag when the failure was injected).
        """
        before = len(attempts)
        with obs.span(
            "attempt",
            solver=solver.name,
            tier=tier,
            retry=attempt_index,
        ) as attempt_span:
            if injected is not None:
                attempt_span.tag(fault=injected)
            result = self._attempt_once(
                solver, problem, seed, attempts, injected
            )
            if result is not None:
                _assignment, salvaged = result
                attempt_span.tag(
                    outcome="salvaged" if salvaged else "ok"
                )
            else:
                failure = (
                    type(attempts[-1][1]).__name__
                    if len(attempts) > before
                    else "unknown"
                )
                attempt_span.tag(outcome="failed", error=failure)
        obs.count("resilience.attempts")
        return result

    def _attempt_once(
        self,
        solver: Solver,
        problem: MBAProblem,
        seed: SeedLike,
        attempts: list[tuple[str, Exception]],
        injected: str | None,
    ) -> tuple[Assignment, bool] | None:
        """One timed attempt; ``None`` means it failed (and was logged)."""
        policy = self.policy
        deadline = policy.deadline
        if injected == "deadline":
            budget = deadline if deadline is not None else 0.0
            attempts.append(
                (
                    solver.name,
                    DeadlineExceededError(
                        "injected deadline overrun", budget, budget
                    ),
                )
            )
            return None
        if injected == "convergence":
            attempts.append(
                (
                    solver.name,
                    ConvergenceError("injected convergence failure", 0),
                )
            )
            return None
        try:
            with Timer() as timer:
                assignment = solver.solve(problem, seed=seed)
        except InfeasibleError:
            # A property of the input, not a transient failure: no
            # retry or fallback can conjure a feasible edge.
            raise
        except ConvergenceError as error:
            salvage = self._salvage(solver, problem, error)
            if salvage is not None:
                return salvage, True
            attempts.append((solver.name, error))
            return None
        except SolverError as error:
            attempts.append((solver.name, error))
            return None
        except Exception as error:
            if not policy.contain_crashes:
                raise
            attempts.append((solver.name, error))
            return None
        if deadline is not None and timer.elapsed > deadline:
            attempts.append(
                (
                    solver.name,
                    DeadlineExceededError(
                        f"attempt took {timer.elapsed:.3f}s against a "
                        f"{deadline:.3f}s deadline",
                        timer.elapsed,
                        deadline,
                    ),
                )
            )
            return None
        return assignment, False

    def _salvage(
        self,
        solver: Solver,
        problem: MBAProblem,
        error: ConvergenceError,
    ) -> Assignment | None:
        """Best feasible partial carried by ``error``, validated."""
        if not self.policy.salvage_partials or error.partial is None:
            return None
        try:
            return Assignment(
                problem, list(error.partial), solver_name=solver.name
            )
        except ValidationError:
            # A malformed partial is worth less than a retry.
            return None

    def _primary_instance(self, attempt: int) -> Solver:
        """The primary, with its iteration budget escalated on retries.

        Only name-based primaries escalate: the solver is rebuilt with
        every budget-like constructor argument it accepts scaled by
        ``budget_scale**attempt``.  Instance primaries are reused
        untouched (we cannot know their constructor arguments).
        """
        if attempt == 0 or not self._rebuild_primary:
            return self._primary
        scale = self.policy.budget_scale**attempt
        kwargs = dict(self._solver_kwargs)
        parameters = inspect.signature(
            type(self._primary).__init__
        ).parameters
        for name, parameter in parameters.items():
            if name not in BUDGET_KWARGS:
                continue
            base = kwargs.get(name, parameter.default)
            if isinstance(base, bool) or not isinstance(base, int):
                continue
            kwargs[name] = max(1, int(base * scale))
        return get_solver(self._primary_name, **kwargs)
