"""Seeded fault injection for the simulation engine.

Real labor markets are faulty: workers accept a task and never deliver,
answers get lost between the worker and the platform, requesters cancel
tasks mid-round, and the assignment service itself blows its deadline
under load.  A :class:`FaultPlan` makes each of those failure modes an
*injectable, reproducible* event so robustness can be tested and
benchmarked instead of hoped for.

Determinism is the design center.  Every fault decision is drawn from a
stream *addressed* by ``(plan seed, round index, fault kind)`` via
:func:`repro.utils.rng.derive_rng`, never from the simulation's main
RNG.  Consequences:

* the same ``(simulation seed, FaultPlan)`` pair reproduces the same
  run bit-for-bit;
* faults in round *k* do not depend on whether earlier rounds' faults
  were sampled (streams are addressable, not sequential);
* adding a fault type never perturbs the draws of the others.

Fault taxonomy (see ``docs/resilience.md``):

===============  =========================================================
no-show          an assigned edge is silently unfulfilled: the worker is
                 not paid, produces no answer, and gains no practice
task cancel      a requester withdraws a task mid-round; every edge to it
                 becomes a no-show
answer drop      the work happened (worker paid, benefit accounted) but
                 the answer never reaches aggregation
solver failure   the assignment service fails an attempt — either a
                 forced :class:`~repro.errors.ConvergenceError` or a
                 deadline overrun — exercising the resilient executor's
                 retry/fallback machinery
===============  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

#: Solver failure modes a plan may force, in the order ``for_round``
#: samples them.
SOLVER_FAILURE_MODES = ("convergence", "deadline")

#: Stable sub-stream keys per fault kind (never renumber: doing so
#: silently changes every seeded scenario).
_KEY_SOLVER = 0
_KEY_CANCEL = 1
_KEY_NO_SHOW = 2
_KEY_DROP = 3


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"{name} must lie in [0, 1], got {value}"
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, per-round schedule of injectable market faults.

    Rates are independent per-event probabilities: each assigned edge
    no-shows with ``no_show_rate``, each surviving edge's answer is
    dropped with ``answer_drop_rate``, each task is cancelled with
    ``task_cancel_rate``, and each round's first solver attempt is
    forced to fail with ``solver_failure_rate``.
    """

    seed: int = 0
    no_show_rate: float = 0.0
    answer_drop_rate: float = 0.0
    task_cancel_rate: float = 0.0
    solver_failure_rate: float = 0.0
    solver_failure_modes: tuple[str, ...] = SOLVER_FAILURE_MODES

    def __post_init__(self) -> None:
        _check_rate("no_show_rate", self.no_show_rate)
        _check_rate("answer_drop_rate", self.answer_drop_rate)
        _check_rate("task_cancel_rate", self.task_cancel_rate)
        _check_rate("solver_failure_rate", self.solver_failure_rate)
        unknown = set(self.solver_failure_modes) - set(SOLVER_FAILURE_MODES)
        if unknown:
            raise ConfigurationError(
                f"unknown solver failure modes {sorted(unknown)}; "
                f"known: {list(SOLVER_FAILURE_MODES)}"
            )
        if self.solver_failure_rate > 0 and not self.solver_failure_modes:
            raise ConfigurationError(
                "solver_failure_rate > 0 needs at least one failure mode"
            )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A one-knob plan: edge faults at ``rate``, the rarer
        whole-task and whole-solver faults at ``rate / 2``."""
        _check_rate("rate", rate)
        return cls(
            seed=seed,
            no_show_rate=rate,
            answer_drop_rate=rate,
            task_cancel_rate=rate / 2.0,
            solver_failure_rate=rate / 2.0,
        )

    @property
    def injects_anything(self) -> bool:
        return (
            self.no_show_rate > 0
            or self.answer_drop_rate > 0
            or self.task_cancel_rate > 0
            or self.solver_failure_rate > 0
        )

    def for_round(self, round_index: int) -> "RoundFaults":
        """The (deterministic) fault decisions for one round."""
        if round_index < 0:
            raise ConfigurationError(
                f"round_index must be >= 0, got {round_index}"
            )
        return RoundFaults(self, round_index)


class RoundFaults:
    """One round's view of a :class:`FaultPlan`.

    Each query draws from its own addressable stream, so the answers
    are independent of the order (and number) of queries.  Edge-level
    queries sample by *position* in the given edge list; callers pass
    the round's canonical sorted edge tuple, which is deterministic.
    """

    def __init__(self, plan: FaultPlan, round_index: int) -> None:
        self.plan = plan
        self.round_index = round_index

    def _rng(self, key: int):
        return derive_rng(self.plan.seed, self.round_index, key)

    def solver_failure(self) -> str | None:
        """Failure mode forced on this round's first solver attempt,
        or ``None`` for a healthy round."""
        plan = self.plan
        if plan.solver_failure_rate <= 0:
            return None
        rng = self._rng(_KEY_SOLVER)
        if rng.random() >= plan.solver_failure_rate:
            return None
        mode_index = int(rng.integers(len(plan.solver_failure_modes)))
        return plan.solver_failure_modes[mode_index]

    def cancelled_tasks(self, n_tasks: int) -> frozenset[int]:
        """Task indices withdrawn mid-round."""
        if self.plan.task_cancel_rate <= 0 or n_tasks <= 0:
            return frozenset()
        mask = self._rng(_KEY_CANCEL).random(n_tasks) < (
            self.plan.task_cancel_rate
        )
        return frozenset(int(j) for j in mask.nonzero()[0])

    def no_shows(
        self, edges: tuple[tuple[int, int], ...]
    ) -> frozenset[tuple[int, int]]:
        """Assigned edges whose worker silently never delivers."""
        return self._sample_edges(
            edges, self.plan.no_show_rate, _KEY_NO_SHOW
        )

    def dropped_answers(
        self, edges: tuple[tuple[int, int], ...]
    ) -> frozenset[tuple[int, int]]:
        """Fulfilled edges whose answer is lost before aggregation."""
        return self._sample_edges(
            edges, self.plan.answer_drop_rate, _KEY_DROP
        )

    def _sample_edges(
        self,
        edges: tuple[tuple[int, int], ...],
        rate: float,
        key: int,
    ) -> frozenset[tuple[int, int]]:
        if rate <= 0 or not edges:
            return frozenset()
        mask = self._rng(key).random(len(edges)) < rate
        return frozenset(
            edge for edge, hit in zip(edges, mask) if hit
        )
