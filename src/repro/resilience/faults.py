"""Seeded fault injection for the simulation engine.

Real labor markets are faulty: workers accept a task and never deliver,
answers get lost between the worker and the platform, requesters cancel
tasks mid-round, and the assignment service itself blows its deadline
under load.  A :class:`FaultPlan` makes each of those failure modes an
*injectable, reproducible* event so robustness can be tested and
benchmarked instead of hoped for.

Determinism is the design center.  Every fault decision is drawn from a
stream *addressed* by ``(plan seed, round index, fault kind)`` via
:func:`repro.utils.rng.derive_rng`, never from the simulation's main
RNG.  Consequences:

* the same ``(simulation seed, FaultPlan)`` pair reproduces the same
  run bit-for-bit;
* faults in round *k* do not depend on whether earlier rounds' faults
  were sampled (streams are addressable, not sequential);
* adding a fault type never perturbs the draws of the others.

Fault taxonomy (see ``docs/resilience.md``):

===============  =========================================================
no-show          an assigned edge is silently unfulfilled: the worker is
                 not paid, produces no answer, and gains no practice
task cancel      a requester withdraws a task mid-round; every edge to it
                 becomes a no-show
answer drop      the work happened (worker paid, benefit accounted) but
                 the answer never reaches aggregation
solver failure   the assignment service fails an attempt — either a
                 forced :class:`~repro.errors.ConvergenceError` or a
                 deadline overrun — exercising the resilient executor's
                 retry/fallback machinery
===============  =========================================================
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

#: Solver failure modes a plan may force, in the order ``for_round``
#: samples them.
SOLVER_FAILURE_MODES = ("convergence", "deadline")

#: Stable sub-stream keys per fault kind (never renumber: doing so
#: silently changes every seeded scenario).
_KEY_SOLVER = 0
_KEY_CANCEL = 1
_KEY_NO_SHOW = 2
_KEY_DROP = 3


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"{name} must lie in [0, 1], got {value}"
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, per-round schedule of injectable market faults.

    Rates are independent per-event probabilities: each assigned edge
    no-shows with ``no_show_rate``, each surviving edge's answer is
    dropped with ``answer_drop_rate``, each task is cancelled with
    ``task_cancel_rate``, and each round's first solver attempt is
    forced to fail with ``solver_failure_rate``.
    """

    seed: int = 0
    no_show_rate: float = 0.0
    answer_drop_rate: float = 0.0
    task_cancel_rate: float = 0.0
    solver_failure_rate: float = 0.0
    solver_failure_modes: tuple[str, ...] = SOLVER_FAILURE_MODES

    def __post_init__(self) -> None:
        _check_rate("no_show_rate", self.no_show_rate)
        _check_rate("answer_drop_rate", self.answer_drop_rate)
        _check_rate("task_cancel_rate", self.task_cancel_rate)
        _check_rate("solver_failure_rate", self.solver_failure_rate)
        unknown = set(self.solver_failure_modes) - set(SOLVER_FAILURE_MODES)
        if unknown:
            raise ConfigurationError(
                f"unknown solver failure modes {sorted(unknown)}; "
                f"known: {list(SOLVER_FAILURE_MODES)}"
            )
        if self.solver_failure_rate > 0 and not self.solver_failure_modes:
            raise ConfigurationError(
                "solver_failure_rate > 0 needs at least one failure mode"
            )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A one-knob plan: edge faults at ``rate``, the rarer
        whole-task and whole-solver faults at ``rate / 2``."""
        _check_rate("rate", rate)
        return cls(
            seed=seed,
            no_show_rate=rate,
            answer_drop_rate=rate,
            task_cancel_rate=rate / 2.0,
            solver_failure_rate=rate / 2.0,
        )

    @property
    def injects_anything(self) -> bool:
        return (
            self.no_show_rate > 0
            or self.answer_drop_rate > 0
            or self.task_cancel_rate > 0
            or self.solver_failure_rate > 0
        )

    def for_round(self, round_index: int) -> "RoundFaults":
        """The (deterministic) fault decisions for one round."""
        if round_index < 0:
            raise ConfigurationError(
                f"round_index must be >= 0, got {round_index}"
            )
        return RoundFaults(self, round_index)


class RoundFaults:
    """One round's view of a :class:`FaultPlan`.

    Each query draws from its own addressable stream, so the answers
    are independent of the order (and number) of queries.  Edge-level
    queries sample by *position* in the given edge list; callers pass
    the round's canonical sorted edge tuple, which is deterministic.
    """

    def __init__(self, plan: FaultPlan, round_index: int) -> None:
        self.plan = plan
        self.round_index = round_index

    def _rng(self, key: int):
        return derive_rng(self.plan.seed, self.round_index, key)

    def solver_failure(self) -> str | None:
        """Failure mode forced on this round's first solver attempt,
        or ``None`` for a healthy round."""
        plan = self.plan
        if plan.solver_failure_rate <= 0:
            return None
        rng = self._rng(_KEY_SOLVER)
        if rng.random() >= plan.solver_failure_rate:
            return None
        mode_index = int(rng.integers(len(plan.solver_failure_modes)))
        return plan.solver_failure_modes[mode_index]

    def cancelled_tasks(self, n_tasks: int) -> frozenset[int]:
        """Task indices withdrawn mid-round."""
        if self.plan.task_cancel_rate <= 0 or n_tasks <= 0:
            return frozenset()
        mask = self._rng(_KEY_CANCEL).random(n_tasks) < (
            self.plan.task_cancel_rate
        )
        return frozenset(int(j) for j in mask.nonzero()[0])

    def no_shows(
        self, edges: tuple[tuple[int, int], ...]
    ) -> frozenset[tuple[int, int]]:
        """Assigned edges whose worker silently never delivers."""
        return self._sample_edges(
            edges, self.plan.no_show_rate, _KEY_NO_SHOW
        )

    def dropped_answers(
        self, edges: tuple[tuple[int, int], ...]
    ) -> frozenset[tuple[int, int]]:
        """Fulfilled edges whose answer is lost before aggregation."""
        return self._sample_edges(
            edges, self.plan.answer_drop_rate, _KEY_DROP
        )

    def _sample_edges(
        self,
        edges: tuple[tuple[int, int], ...],
        rate: float,
        key: int,
    ) -> frozenset[tuple[int, int]]:
        if rate <= 0 or not edges:
            return frozenset()
        mask = self._rng(key).random(len(edges)) < rate
        return frozenset(
            edge for edge, hit in zip(edges, mask) if hit
        )


# -- process-level chaos ------------------------------------------------------

#: Process sabotage a :class:`ChaosPlan` may inject, in the order one
#: uniform draw is partitioned by ``decision``.
CHAOS_ACTIONS = ("kill", "hang", "slow")


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded sabotage of *worker processes*, for durability testing.

    Where :class:`FaultPlan` injects market faults (the workload lies),
    a ``ChaosPlan`` injects process faults (the machine lies): a pool
    worker is SIGKILLed mid-task, hangs past its wall-clock timeout, or
    merely runs slow.  The supervised pool
    (:class:`repro.resilience.runtime.SupervisedPool`) must absorb all
    three without corrupting results — that is exactly what the chaos
    tests and the CI chaos-smoke job assert.

    Decisions are addressed by ``(plan seed, task position, attempt)``
    via :func:`repro.utils.rng.derive_rng`, so a task's fate does not
    depend on scheduling order and re-running a chaos scenario replays
    the same sabotage.  ``max_injections_per_task`` bounds how many
    attempts of one task may be sabotaged (attempts at or beyond the
    bound are left alone), which guarantees every run terminates: after
    at most that many retries each task gets a clean attempt.
    """

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    hang_seconds: float = 3600.0
    slow_seconds: float = 0.05
    max_injections_per_task: int = 1

    def __post_init__(self) -> None:
        _check_rate("kill_rate", self.kill_rate)
        _check_rate("hang_rate", self.hang_rate)
        _check_rate("slow_rate", self.slow_rate)
        total = self.kill_rate + self.hang_rate + self.slow_rate
        if total > 1.0:
            raise ConfigurationError(
                "chaos rates must sum to <= 1 (they partition one "
                f"uniform draw), got {total}"
            )
        if self.hang_seconds < 0 or self.slow_seconds < 0:
            raise ConfigurationError("chaos delays must be >= 0")
        if self.max_injections_per_task < 0:
            raise ConfigurationError(
                "max_injections_per_task must be >= 0, got "
                f"{self.max_injections_per_task}"
            )

    @property
    def injects_anything(self) -> bool:
        return (
            self.max_injections_per_task > 0
            and (self.kill_rate > 0 or self.hang_rate > 0
                 or self.slow_rate > 0)
        )

    def decision(self, position: int, attempt: int) -> str | None:
        """The sabotage (if any) for one ``(task, attempt)`` pair.

        Pure and deterministic — tests call this from the parent to
        predict exactly which tasks a seeded run will sabotage.
        """
        if attempt >= self.max_injections_per_task:
            return None
        draw = derive_rng(self.seed, position, attempt).random()
        edge = 0.0
        for action, rate in zip(
            CHAOS_ACTIONS, (self.kill_rate, self.hang_rate, self.slow_rate)
        ):
            edge += rate
            if draw < edge:
                return action
        return None

    def execute(self, position: int, attempt: int) -> str | None:
        """Carry out this attempt's sabotage (runs *in the worker*).

        ``kill`` SIGKILLs the worker process (the parent sees a broken
        pool), ``hang`` sleeps ``hang_seconds`` (the parent's task
        timeout must fire), ``slow`` sleeps ``slow_seconds`` and lets
        the task proceed.  Returns the action taken, ``None`` for a
        clean attempt.
        """
        action = self.decision(position, attempt)
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            time.sleep(self.hang_seconds)
        elif action == "slow":
            time.sleep(self.slow_seconds)
        return action
