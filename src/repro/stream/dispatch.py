"""The streaming dispatch service: a live market instead of rounds.

Tasks and workers arrive continuously through
:mod:`repro.market.arrivals` processes; the dispatcher merges the two
arrival streams with its internally scheduled events (task deadlines,
session logouts, micro-batch window boundaries) into one global time
order, publishes every event on an :class:`~repro.stream.bus.EventBus`,
and lets the configured policy commit assignments at arrival instants.
Assignments are *emitted incrementally*: :meth:`StreamDispatcher.dispatch`
is a generator yielding each
:class:`~repro.stream.metrics.AssignmentRecord` the moment its event
is processed, which is what lets a caller stream records into a
:class:`~repro.stream.writer.BatchWriter` (or a live printer) while
the market is still running.

Scale: benefits are computed on demand through
:class:`repro.benefit.rows.RowwiseBenefit`, vectorized over the
*active* sets only — open tasks are bounded by ``task_rate × deadline``
and online workers by ``worker_rate × session_length``, so a
10^5 × 10^5 population never materializes a matrix anywhere near its
10^10-entry full benefit table.

Round mode: ``policy = "round"`` delegates wholesale to the batch
engine (:class:`repro.sim.engine.Simulation`) — the round-based loop
becomes just one policy of the service, and its output is bit-identical
to calling the engine directly (a property test pins this).
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.benefit.mutual import LinearCombiner, MutualCombiner
from repro.benefit.rows import RowwiseBenefit
from repro.errors import ConfigurationError, ValidationError
from repro.market.arrivals import ArrivalProcess, PoissonArrivals
from repro.market.market import LaborMarket
from repro.stream.bus import EventBus
from repro.stream.events import (
    AssignmentEmitted,
    StreamEvent,
    TaskExpired,
    TaskPosted,
    WindowFlush,
    WorkerLogin,
    WorkerLogout,
)
from repro.stream.metrics import (
    LATENCY_PERCENTILES,
    AssignmentRecord,
    StreamResult,
)
from repro.stream.policies import ONLINE_POLICIES, make_policy
from repro.stream.sessions import SessionLedger
from repro.utils.rng import SeedLike, as_rng
from repro.utils.stats import gini

#: All dispatch modes: the online policies plus engine delegation.
DISPATCH_POLICIES: tuple[str, ...] = ONLINE_POLICIES + ("round",)


@dataclass
class DispatchConfig:
    """Configuration of the streaming dispatch loop.

    Attributes
    ----------
    policy:
        One of :data:`DISPATCH_POLICIES`.
    task_rate / worker_rate:
        Poisson arrival rates (entities per unit time) for the default
        arrival processes.
    deadline:
        How long a posted task stays open before expiring.
    session_length:
        How long a logged-in worker's session lasts.
    batch_window:
        Micro-batch flush period (micro-batch policy only).
    sample_fraction:
        Fraction of worker arrivals forming the calibration sample
        (sample-price policy only).
    max_open_tasks:
        Backpressure bound: a task arriving while this many are
        already open is *dropped* (counted, never queued).  0 means
        unbounded queueing.
    writer_batch:
        Batch size for the assignment-record writer.
    round_solver / round_rounds:
        Round mode's solver name and round count (ignored by the
        online policies; a full ``Scenario`` passed to the dispatcher
        overrides both).
    """

    policy: str = "greedy"
    task_rate: float = 4.0
    worker_rate: float = 1.0
    deadline: float = 10.0
    session_length: float = 5.0
    batch_window: float = 1.0
    sample_fraction: float = 0.2
    max_open_tasks: int = 0
    writer_batch: int = 256
    round_solver: str = "flow"
    round_rounds: int = 10

    def __post_init__(self) -> None:
        if self.policy not in DISPATCH_POLICIES:
            raise ConfigurationError(
                f"unknown dispatch policy {self.policy!r}; choose from "
                f"{DISPATCH_POLICIES}"
            )
        if self.task_rate <= 0 or self.worker_rate <= 0:
            raise ConfigurationError("arrival rates must be > 0")
        if self.deadline <= 0 or self.session_length <= 0:
            raise ConfigurationError(
                "deadline and session_length must be > 0"
            )
        if self.batch_window <= 0:
            raise ConfigurationError("batch_window must be > 0")
        if not 0.0 <= self.sample_fraction <= 1.0:
            raise ConfigurationError(
                "sample_fraction must lie in [0, 1]"
            )
        if self.max_open_tasks < 0:
            raise ConfigurationError("max_open_tasks must be >= 0")
        if self.writer_batch < 1:
            raise ConfigurationError("writer_batch must be >= 1")
        if self.round_rounds < 1:
            raise ConfigurationError("round_rounds must be >= 1")


class DispatchRuntime:
    """Shared mutable state the policies act on.

    Policies never mutate the open pool or the ledger directly — all
    commitment funnels through :meth:`assign`, which validates,
    updates the books, and publishes the ``assignment`` event.
    """

    def __init__(
        self,
        market: LaborMarket,
        config: DispatchConfig,
        rows: RowwiseBenefit,
        bus: EventBus,
    ) -> None:
        self.market = market
        self.config = config
        self.rows = rows
        self.bus = bus
        self.ledger = SessionLedger()
        #: task_index -> posted_at for unassigned, unexpired tasks.
        self.open: dict[int, float] = {}

    def capacity(self, worker_index: int) -> int:
        return self.ledger.capacity(worker_index)

    def open_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted open task indices, their posting times)."""
        if not self.open:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        tasks = np.fromiter(
            self.open, dtype=np.int64, count=len(self.open)
        )
        tasks.sort()
        posted = np.array([self.open[int(j)] for j in tasks])
        return tasks, posted

    def online_array(self) -> np.ndarray:
        """Online workers with remaining capacity, presence order."""
        return np.asarray(self.ledger.online(), dtype=np.int64)

    def assign(
        self,
        worker_index: int,
        task_index: int,
        time: float,
        benefit: float,
    ) -> None:
        """Commit one edge: book-keep and publish the event."""
        posted_at = self.open.pop(task_index, None)
        if posted_at is None:
            raise ValidationError(
                f"task {task_index} is not open at time {time}"
            )
        self.ledger.consume(worker_index, 1)
        self.bus.publish(
            AssignmentEmitted(
                time=time,
                worker_index=worker_index,
                task_index=task_index,
                instance_id=task_index,
                benefit=benefit,
                posted_at=posted_at,
            )
        )


@dataclass
class _Pending:
    """Records emitted by handlers, drained by the generator loop."""

    records: list[AssignmentRecord] = field(default_factory=list)


class _Telemetry:
    """Windowed live-health scrape on the **simulated** clock.

    Per-event work is deliberately store-free — counters increment
    plain ints and samples append to plain lists — and everything
    lands in the store in one batch per series when the clock crosses
    a window boundary (``advance``).  Events between two boundary
    crossings belong to exactly one aligned window, so batch-flushing
    records the identical series a per-event scrape would, at a
    fraction of the dispatch-loop overhead (the ``obs_overhead`` bench
    case gates the ratio).  The market-health gauges the paper steers
    on — per-window worker-benefit Gini, participation, starvation —
    need *window membership* (who was online, who got work), so one
    window of state is kept alongside.  Everything recorded is a
    function of the event stream alone, so identical seeds scrape
    identical series.
    """

    __slots__ = (
        "store",
        "boundary",
        "_width",
        "_bucket",
        "_expired",
        "_dropped",
        "_depths",
        "_assignments",
        "_online",
        "_prev_assigned",
    )

    def __init__(self, store) -> None:
        self.store = store
        self._width = store.window
        self._bucket: int | None = None
        #: Clock value at which the current window ends.  The dispatch
        #: loop gates its per-event ``advance`` call on this plain
        #: float compare so the common no-crossing case costs one
        #: attribute read instead of a method call.
        self.boundary = float("-inf")
        # Event-level buffers for the current window.  The bookkeeping
        # handlers append to / add to these directly through bound
        # methods (see _subscribe_bookkeeping) — ``_flush`` mutates
        # them in place, never rebinds, so the bound methods stay
        # valid for the whole run.
        self._expired = 0
        self._dropped = 0
        #: Queue depth observed at each posting (len == posted count).
        self._depths: list[int] = []
        #: One ``(worker_index, benefit, wait)`` per assignment.
        self._assignments: list[tuple[int, float, float]] = []
        #: Workers online at any point during the window.
        self._online: set[int] = set()
        #: Workers assigned at least once last window.
        self._prev_assigned: set[int] = set()

    def advance(self, time: float, runtime: "DispatchRuntime") -> None:
        """Flush every window the clock has fully crossed."""
        bucket = int(time // self._width)
        if self._bucket is None:
            self._bucket = bucket
        else:
            while self._bucket < bucket:
                self._flush(runtime)
                self._bucket += 1
        self.boundary = (self._bucket + 1) * self._width

    def finish(self, runtime: "DispatchRuntime") -> None:
        """Flush the final, partial window at end of run."""
        if self._bucket is not None:
            self._flush(runtime)

    def _flush(self, runtime: "DispatchRuntime") -> None:
        store = self.store
        t = store.bucket_time(self._bucket)
        depths = self._depths
        if depths:
            store.count("stream.posted", t, len(depths))
            store.extend("stream.queue_depth", t, depths)
            obs.observe_many("stream.queue_depth", depths)
            depths.clear()
        assignments = self._assignments
        #: worker -> benefit accrued this window (can be negative for
        #: exploitative edges; Gini clips at zero like benefit_gini).
        benefit: dict[int, float] = {}
        assigned: set[int] = set()
        if assignments:
            waits = [event[2] for event in assignments]
            store.count("stream.assigned", t, len(assignments))
            store.extend("stream.wait", t, waits)
            obs.observe_many("stream.time_to_assignment", waits)
            for worker, value, _wait in assignments:
                assigned.add(worker)
                benefit[worker] = benefit.get(worker, 0.0) + value
            assignments.clear()
        if self._expired:
            store.count("stream.expired", t, self._expired)
            self._expired = 0
        if self._dropped:
            store.count("stream.dropped", t, self._dropped)
            self._dropped = 0
        online = self._online
        # Assignment implies an online session, so this is normally a
        # no-op — it keeps the membership exact even if a policy
        # assigns outside a tracked session.
        online |= assigned
        if online:
            # Every benefit key is in ``online``, so the Gini input is
            # the clipped benefits padded with a zero per benefit-less
            # worker; gini() sorts internally, making input order
            # irrelevant.
            benefits = [0.0] * (len(online) - len(benefit))
            benefits += [
                v if v > 0.0 else 0.0 for v in benefit.values()
            ]
            store.gauge("market.benefit_gini", t, gini(benefits))
            store.gauge(
                "market.participation", t, len(assigned) / len(online)
            )
            starved = len(online - assigned - self._prev_assigned)
            store.gauge(
                "market.starvation", t, starved / len(online)
            )
            store.gauge(
                "market.worker_benefit",
                t,
                float(sum(benefit.values())),
            )
        # Workers still online roll into the next window's membership.
        self._prev_assigned = assigned
        online.clear()
        online.update(runtime.ledger.online())


class StreamDispatcher:
    """Event-driven dispatch over a continuously arriving market.

    Parameters
    ----------
    market:
        The full population; each worker and task arrives exactly once
        through its arrival process.
    config:
        Loop configuration; defaults stream greedily.
    combiner:
        Mutual-benefit combiner for on-demand edge scoring.
    task_arrivals / worker_arrivals:
        Arrival-process overrides; Poisson at the configured rates
        when omitted (``TraceArrivals`` makes runs fully scripted).
    scenario:
        Round mode only: a full engine scenario to delegate to.  When
        omitted, round mode builds one from the config's
        ``round_solver``/``round_rounds``.
    """

    def __init__(
        self,
        market: LaborMarket,
        config: DispatchConfig | None = None,
        combiner: MutualCombiner | None = None,
        task_arrivals: ArrivalProcess | None = None,
        worker_arrivals: ArrivalProcess | None = None,
        scenario=None,
    ) -> None:
        if market.n_workers == 0 or market.n_tasks == 0:
            raise ValidationError(
                "streaming dispatch needs a non-empty market"
            )
        self.market = market
        self.config = config if config is not None else DispatchConfig()
        self.combiner = (
            combiner if combiner is not None else LinearCombiner(0.5)
        )
        self.task_arrivals = (
            task_arrivals
            if task_arrivals is not None
            else PoissonArrivals(self.config.task_rate)
        )
        self.worker_arrivals = (
            worker_arrivals
            if worker_arrivals is not None
            else PoissonArrivals(self.config.worker_rate)
        )
        self.scenario = scenario
        self.last_result: StreamResult | None = None

    # -- the event loop ---------------------------------------------------

    def dispatch(self, seed: SeedLike = None) -> Iterator[AssignmentRecord]:
        """Run the online dispatch loop, yielding records as emitted.

        The :class:`StreamResult` accumulated alongside is available as
        :attr:`last_result` once the generator is exhausted (or use
        :meth:`run`, which also times the drain).
        """
        config = self.config
        if config.policy == "round":
            raise ConfigurationError(
                "round mode has no incremental stream; call run()"
            )
        rng = as_rng(seed)
        task_seed = int(rng.integers(2**31))
        worker_seed = int(rng.integers(2**31))

        bus = EventBus()
        rows = RowwiseBenefit(self.market, combiner=self.combiner)
        runtime = DispatchRuntime(self.market, config, rows, bus)
        policy = make_policy(config, self.market.n_workers)
        result = StreamResult(policy=config.policy)
        self.last_result = result
        pending = _Pending()

        # Live telemetry rides the active tracer's windowed store
        # (created here at the default window width unless the run
        # owner — e.g. the monitor CLI — installed one already).
        store = obs.timeseries_store()
        telemetry = _Telemetry(store) if store is not None else None

        # Record-keeping handlers subscribe FIRST so metrics reflect
        # the pre-decision state (queue depth includes the new task
        # before the policy may immediately assign it away).
        self._subscribe_bookkeeping(
            bus, runtime, result, pending, telemetry
        )
        policy.bind(runtime, bus)

        heap: list[tuple[float, int, StreamEvent]] = []
        tiebreak = itertools.count()
        task_stream = self.task_arrivals.stream(
            self.market.n_tasks, seed=task_seed
        )
        worker_stream = self.worker_arrivals.stream(
            self.market.n_workers, seed=worker_seed
        )

        def push(event: StreamEvent) -> None:
            heapq.heappush(heap, (event.time, next(tiebreak), event))

        def pull(stream, make_event) -> None:
            arrival = next(stream, None)
            if arrival is not None:
                push(make_event(arrival))

        def task_event(arrival) -> TaskPosted:
            return TaskPosted(
                time=arrival.time,
                task_index=arrival.index,
                instance_id=arrival.index,
            )

        def worker_event(arrival) -> WorkerLogin:
            session_id = -1  # assigned by the login handler
            return WorkerLogin(
                time=arrival.time,
                worker_index=arrival.index,
                session_id=session_id,
            )

        pull(task_stream, task_event)
        pull(worker_stream, worker_event)
        if config.policy == "micro-batch":
            push(WindowFlush(time=config.batch_window, window_index=0))

        dropped_sessions: set[int] = set()

        def handle(event: StreamEvent) -> None:
            if isinstance(event, TaskPosted):
                pull(task_stream, task_event)
                if (
                    config.max_open_tasks > 0
                    and len(runtime.open) >= config.max_open_tasks
                ):
                    result.dropped_tasks += 1
                    if telemetry is not None:
                        telemetry._dropped += 1
                    return
                runtime.open[event.task_index] = event.time
                push(
                    TaskExpired(
                        time=event.time + config.deadline,
                        instance_id=event.task_index,
                    )
                )
                bus.publish(event)
            elif isinstance(event, WorkerLogin):
                pull(worker_stream, worker_event)
                worker = self.market.workers[event.worker_index]
                if not worker.active:
                    result.skipped_logins += 1
                    return
                session_id = runtime.ledger.login(
                    event.worker_index,
                    worker.capacity,
                    expires_at=event.time + config.session_length,
                )
                push(
                    WorkerLogout(
                        time=event.time + config.session_length,
                        session_id=session_id,
                        worker_index=event.worker_index,
                    )
                )
                bus.publish(
                    WorkerLogin(
                        time=event.time,
                        worker_index=event.worker_index,
                        session_id=session_id,
                    )
                )
            elif isinstance(event, TaskExpired):
                if event.instance_id in runtime.open:
                    del runtime.open[event.instance_id]
                    bus.publish(event)
            elif isinstance(event, WorkerLogout):
                if event.session_id not in dropped_sessions:
                    runtime.ledger.logout(event.session_id)
                    bus.publish(event)
            elif isinstance(event, WindowFlush):
                # Keep flushing only while arrivals can still come.
                bus.publish(event)
                if heap or runtime.open:
                    push(
                        WindowFlush(
                            time=event.time + config.batch_window,
                            window_index=event.window_index + 1,
                        )
                    )

        clock = 0.0
        while heap:
            clock, _tie, event = heapq.heappop(heap)
            if telemetry is not None and clock >= telemetry.boundary:
                telemetry.advance(clock, runtime)
            handle(event)
            if pending.records:
                yield from pending.records
                pending.records.clear()

        policy.finish(clock)
        if pending.records:
            yield from pending.records
            pending.records.clear()
        # Flat obs counters are recorded once from the run totals:
        # a counter call per event is measurable on the dispatch hot
        # path (the obs_overhead bench case gates the ratio), and the
        # end-of-run sums are identical.  ``stream.expired`` must be
        # flushed before unexpired open tasks are folded into the
        # result total below — the counter tracks deadline *events*.
        for name, total in (
            ("stream.posted", result.posted_tasks),
            ("stream.assigned", len(result.records)),
            ("stream.expired", result.expired_tasks),
            ("stream.dropped", result.dropped_tasks),
            ("stream.skipped_logins", result.skipped_logins),
            ("stream.logins", result.logins),
            ("stream.logouts", result.logouts),
        ):
            if total:
                obs.count(name, total)
        bus.flush_metrics()
        result.expired_tasks += len(runtime.open)
        runtime.open.clear()
        result.end_time = clock
        if telemetry is not None:
            telemetry.finish(runtime)
        self._publish_summary(result)

    def _subscribe_bookkeeping(
        self,
        bus: EventBus,
        runtime: DispatchRuntime,
        result: StreamResult,
        pending: _Pending,
        telemetry: _Telemetry | None = None,
    ) -> None:
        # Bound-method handles into the telemetry buffers: the per-event
        # cost of the windowed scrape is one C-level append/add (the
        # obs_overhead bench case gates the ratio).
        if telemetry is not None:
            scrape_depth = telemetry._depths.append
            scrape_online = telemetry._online.add
            scrape_assignment = telemetry._assignments.append
        else:
            scrape_depth = scrape_online = scrape_assignment = None

        def on_posted(event: TaskPosted) -> None:
            result.posted_tasks += 1
            depth = len(runtime.open)
            result.max_queue_depth = max(result.max_queue_depth, depth)
            if scrape_depth is not None:
                scrape_depth(depth)

        def on_login(event: WorkerLogin) -> None:
            result.logins += 1
            if scrape_online is not None:
                scrape_online(event.worker_index)

        def on_logout(event: WorkerLogout) -> None:
            result.logouts += 1

        def on_expired(event: TaskExpired) -> None:
            result.expired_tasks += 1
            if telemetry is not None:
                telemetry._expired += 1

        def on_assignment(event: AssignmentEmitted) -> None:
            record = AssignmentRecord(
                time=event.time,
                worker_index=event.worker_index,
                task_index=event.task_index,
                benefit=event.benefit,
                wait=event.wait,
            )
            result.records.append(record)
            result.combined_benefit += event.benefit
            result.latency.observe(event.wait)
            pending.records.append(record)
            if scrape_assignment is not None:
                scrape_assignment(
                    (event.worker_index, event.benefit, event.wait)
                )

        bus.subscribe("task-posted", on_posted)
        bus.subscribe("worker-login", on_login)
        bus.subscribe("worker-logout", on_logout)
        bus.subscribe("task-deadline", on_expired)
        bus.subscribe("assignment", on_assignment)

    def _publish_summary(self, result: StreamResult) -> None:
        """Exact latency percentiles and throughput as obs gauges."""
        summary = result.latency_summary()
        for q in LATENCY_PERCENTILES:
            key = f"p{q}"
            if key in summary:
                obs.gauge(f"stream.latency.{key}", summary[key])
        obs.gauge("stream.queue_depth.max", float(result.max_queue_depth))
        if result.wall_time > 0:
            obs.gauge(
                "stream.assignments_per_sec",
                result.assignments_per_second,
            )

    # -- draining ---------------------------------------------------------

    def run(
        self, seed: SeedLike = None, on_record=None
    ) -> StreamResult:
        """Drain the dispatch loop and return the finished result."""
        start = _time.perf_counter()
        if self.config.policy == "round":
            result = self._run_round(seed)
        else:
            with obs.span("stream.dispatch", policy=self.config.policy):
                for record in self.dispatch(seed):
                    if on_record is not None:
                        on_record(record)
            result = self.last_result
            assert result is not None
        result.wall_time = _time.perf_counter() - start
        if result.records:
            obs.gauge(
                "stream.assignments_per_sec",
                result.assignments_per_second,
            )
        self.last_result = result
        return result

    # -- round mode -------------------------------------------------------

    def _round_scenario(self):
        """The engine scenario round mode delegates to."""
        if self.scenario is not None:
            return self.scenario
        from repro.sim.scenario import Scenario

        return Scenario(
            market=self.market,
            solver_name=self.config.round_solver,
            combiner=self.combiner,
            n_rounds=self.config.round_rounds,
        )

    def _run_round(self, seed: SeedLike) -> StreamResult:
        """Delegate to the batch engine; bit-identical by construction.

        The engine is invoked exactly as a direct caller would invoke
        it — same scenario, same seed — so every round metric matches
        a standalone ``Simulation(scenario).run(seed)`` bit for bit.
        """
        from repro.sim.engine import Simulation

        scenario = self._round_scenario()
        with obs.span("stream.dispatch", policy="round"):
            sim_result = Simulation(scenario).run(seed=seed)
        result = StreamResult(policy="round")
        result.round_result = sim_result
        result.posted_tasks = sum(
            r.n_assigned_edges for r in sim_result.rounds
        )
        result.combined_benefit = float(
            sum(r.combined_benefit for r in sim_result.rounds)
        )
        result.end_time = float(len(sim_result.rounds))
        self.last_result = result
        return result
