"""A deterministic synchronous event bus.

The dispatcher and the event simulator publish
:mod:`repro.stream.events` objects; subscribers (policy hooks, metric
recorders, the batch writer) receive them in subscription order,
synchronously, on the publisher's stack.  Synchronous delivery is a
deliberate choice: the simulated clock must not advance while an
event's consequences are still pending, and handler order must be a
pure function of subscription order for runs to be reproducible.

The bus never swallows handler exceptions — a failing handler fails
the run, loudly.  Resilience policy belongs to the layers above
(:mod:`repro.resilience`), not to the transport.
"""

from __future__ import annotations

from collections.abc import Callable

from repro import obs
from repro.stream.events import StreamEvent

Handler = Callable[[StreamEvent], None]


class EventBus:
    """Routes events to handlers by their ``kind`` string."""

    __slots__ = ("_handlers", "published", "delivered", "_counted")

    def __init__(self) -> None:
        self._handlers: dict[str, list[Handler]] = {}
        #: Total events published / handler invocations, for tests and
        #: the ``stream.bus.*`` obs counters.
        self.published = 0
        self.delivered = 0
        self._counted = 0

    def subscribe(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` for events of ``kind``.

        Handlers for one kind run in subscription order.
        """
        self._handlers.setdefault(kind, []).append(handler)

    def subscribers(self, kind: str) -> int:
        """Number of handlers currently registered for ``kind``."""
        return len(self._handlers.get(kind, ()))

    def publish(self, event: StreamEvent) -> int:
        """Deliver ``event`` to every subscriber of its kind.

        Returns the number of handlers invoked.  Publishing a kind
        nobody subscribed to is legal and counts zero deliveries —
        emitters stay decoupled from what the run chooses to observe.
        """
        handlers = self._handlers.get(event.kind, ())
        for handler in handlers:
            handler(event)
        self.published += 1
        self.delivered += len(handlers)
        return len(handlers)

    def flush_metrics(self) -> None:
        """Record publishes since the last flush as an obs counter.

        Publishing is the dispatch loop's hottest path, so the
        ``stream.bus.published`` counter is recorded in one batch at
        end of run rather than per event.  Delta-based, so repeated
        flushes never double-count.
        """
        delta = self.published - self._counted
        if delta:
            obs.count("stream.bus.published", delta)
            self._counted = self.published
