"""Pluggable dispatch policies: who gets assigned at each arrival.

A policy is a set of bus subscriptions over the dispatcher's runtime:
it reacts to ``worker-login`` / ``task-posted`` (and, for the
micro-batch policy, ``window-flush``) events by committing assignments
through :meth:`DispatchRuntime.assign`.  Three online policies mirror
the repository's online-matching layer:

* :class:`GreedyPolicy` — arrival-instant best-positive-edge matching,
  the streaming form of
  :func:`repro.matching.online.online_greedy_matching` (a property
  test pins the equivalence on identical arrival orders);
* :class:`SamplePricePolicy` — the TGOA sample-and-price design
  adapted to continuous arrivals: the sample prefix of worker logins
  is matched greedily while observed edge benefits calibrate a price,
  which later arrivals must beat (decaying to zero as a task's
  deadline nears, so a queued task is never priced out forever);
* :class:`MicroBatchPolicy` — accumulate arrivals and re-solve only
  the active window (online workers × open tasks) at each boundary,
  warm-started across windows via the PR-8 ``warm`` solver wrapper:
  entity ids persist between windows, so auction prices carry over.

Round mode is the fourth policy in spirit — it delegates to the batch
engine wholesale and lives in :mod:`repro.stream.dispatch`.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.stream.events import (
    StreamEvent,
    TaskPosted,
    WindowFlush,
    WorkerLogin,
)

#: Online policies selectable in ``DispatchConfig.policy`` (round mode
#: is handled by the dispatcher itself, not by a policy object).
ONLINE_POLICIES: tuple[str, ...] = (
    "greedy",
    "sample-price",
    "micro-batch",
)


class DispatchPolicy(abc.ABC):
    """Reacts to market events by committing assignments."""

    name: str = "abstract"

    def bind(self, runtime, bus) -> None:
        """Subscribe the policy's handlers on the dispatch bus."""
        self.runtime = runtime
        bus.subscribe("worker-login", self._on_login)
        bus.subscribe("task-posted", self._on_posted)

    @abc.abstractmethod
    def _on_login(self, event: StreamEvent) -> None: ...

    @abc.abstractmethod
    def _on_posted(self, event: StreamEvent) -> None: ...

    def finish(self, time: float) -> None:
        """Called once after the last event (micro-batch final flush)."""


class GreedyPolicy(DispatchPolicy):
    """Best-positive-edge assignment at every arrival instant."""

    name = "greedy"

    def _offer(self, worker_index: int, time: float) -> None:
        """Give an online worker their best open tasks, greedily."""
        runtime = self.runtime
        capacity = runtime.capacity(worker_index)
        if capacity <= 0:
            return
        tasks, _posted = runtime.open_arrays()
        if tasks.size == 0:
            return
        benefits = runtime.rows.row(worker_index, tasks)
        # Static scores: taking the top-k one at a time equals taking
        # them at once.  Stable sort keeps ties on the lowest task
        # index, matching the online greedy reference's scan order.
        order = np.argsort(-benefits, kind="stable")[:capacity]
        for position in order:
            benefit = float(benefits[position])
            if benefit <= 0.0:
                break
            runtime.assign(
                worker_index, int(tasks[position]), time, benefit
            )

    def _on_login(self, event: WorkerLogin) -> None:
        self._offer(event.worker_index, event.time)

    def _on_posted(self, event: TaskPosted) -> None:
        runtime = self.runtime
        workers = runtime.online_array()
        if workers.size == 0:
            return
        benefits = runtime.rows.column(event.task_index, workers)
        best = int(np.argmax(benefits))
        if float(benefits[best]) <= 0.0:
            return
        runtime.assign(
            int(workers[best]),
            event.task_index,
            event.time,
            float(benefits[best]),
        )


class SamplePricePolicy(GreedyPolicy):
    """Sample-and-price: greedy prefix calibrates an acceptance price.

    The first ``sample_cutoff`` worker logins behave greedily (they
    still produce value — no discarded secretary sample); the benefits
    they realize become the observed value distribution, whose
    ``price_quantile`` sets the price.  Afterwards an edge is only
    taken when its benefit beats the price scaled by the task's
    remaining deadline fraction — fresh tasks hold out for good
    matches, tasks near expiry accept anything positive.
    """

    name = "sample-price"

    def __init__(
        self, sample_cutoff: int, price_quantile: float = 50.0
    ) -> None:
        if sample_cutoff < 0:
            raise ConfigurationError(
                f"sample_cutoff must be >= 0, got {sample_cutoff}"
            )
        self.sample_cutoff = sample_cutoff
        self.price_quantile = price_quantile
        self._logins_seen = 0
        self._sample_benefits: list[float] = []
        self._price: float | None = None

    def bind(self, runtime, bus) -> None:
        super().bind(runtime, bus)
        bus.subscribe("assignment", self._on_assignment)

    def _on_assignment(self, event) -> None:
        if self._logins_seen <= self.sample_cutoff:
            self._sample_benefits.append(event.benefit)

    @property
    def price(self) -> float:
        """The calibrated acceptance price (0 before calibration)."""
        if self._price is None:
            if not self._sample_benefits:
                return 0.0
            self._price = float(
                np.percentile(
                    np.asarray(self._sample_benefits), self.price_quantile
                )
            )
            obs.gauge("stream.sample_price", self._price)
        return self._price

    def _in_sample(self) -> bool:
        return self._logins_seen <= self.sample_cutoff

    def _thresholds(
        self, posted: np.ndarray, time: float
    ) -> np.ndarray:
        """Per-task acceptance price, decayed by deadline proximity."""
        deadline = self.runtime.config.deadline
        remaining = np.maximum(1.0 - (time - posted) / deadline, 0.0)
        return self.price * remaining

    def _on_login(self, event: WorkerLogin) -> None:
        self._logins_seen += 1
        if self._in_sample():
            self._offer(event.worker_index, event.time)
            return
        runtime = self.runtime
        capacity = runtime.capacity(event.worker_index)
        if capacity <= 0:
            return
        tasks, posted = runtime.open_arrays()
        if tasks.size == 0:
            return
        benefits = runtime.rows.row(event.worker_index, tasks)
        accept = benefits > np.maximum(
            self._thresholds(posted, event.time), 0.0
        )
        order = np.argsort(-benefits, kind="stable")
        for position in order:
            if capacity <= 0:
                break
            if not accept[position] or float(benefits[position]) <= 0.0:
                continue
            runtime.assign(
                event.worker_index,
                int(tasks[position]),
                event.time,
                float(benefits[position]),
            )
            capacity -= 1

    def _on_posted(self, event: TaskPosted) -> None:
        if self._in_sample():
            super()._on_posted(event)
            return
        runtime = self.runtime
        workers = runtime.online_array()
        if workers.size == 0:
            return
        benefits = runtime.rows.column(event.task_index, workers)
        best = int(np.argmax(benefits))
        # A freshly posted task is at full price.
        if float(benefits[best]) <= max(self.price, 0.0):
            return
        runtime.assign(
            int(workers[best]),
            event.task_index,
            event.time,
            float(benefits[best]),
        )


class MicroBatchPolicy(DispatchPolicy):
    """Window re-solves over the active sets, warm-started.

    Between flushes nothing is assigned; at each ``window-flush`` the
    policy builds the bounded submarket of online-with-capacity
    workers against open tasks and solves it with the ``warm`` wrapper
    around the auction solver.  Entity ids are stable across windows,
    so the wrapper's :class:`~repro.core.solvers.state.WarmState`
    reuses auction prices for tasks that stayed open — the re-solve
    touches only the arrival window's worth of fresh state.
    """

    name = "micro-batch"

    def __init__(self) -> None:
        from repro.core.solvers import get_solver

        # churn_threshold=1.0: windows churn by construction (assigned
        # tasks leave), and the auction kernel is correct from any
        # finite price state — always prefer the warm tier.
        self._solver = get_solver(
            "warm", base="auction", exact=False, churn_threshold=1.0
        )
        self.windows_flushed = 0

    def bind(self, runtime, bus) -> None:
        self.runtime = runtime
        bus.subscribe("window-flush", self._on_flush)

    # Arrivals just accumulate in the runtime's open/ledger state.
    def _on_login(self, event: StreamEvent) -> None:  # pragma: no cover
        pass

    def _on_posted(self, event: StreamEvent) -> None:  # pragma: no cover
        pass

    def _on_flush(self, event: WindowFlush) -> None:
        self._flush(event.time)

    def finish(self, time: float) -> None:
        """Final flush so the tail window is not silently dropped."""
        self._flush(time)

    def _flush(self, time: float) -> None:
        from repro.core.problem import MBAProblem

        runtime = self.runtime
        workers = [
            index
            for index in runtime.ledger.online()
            if runtime.capacity(index) > 0
        ]
        tasks, _posted = runtime.open_arrays()
        if not workers or tasks.size == 0:
            return
        from repro.market.market import LaborMarket

        market = runtime.market
        sub_workers = [
            dataclasses.replace(
                market.workers[index],
                capacity=runtime.capacity(index),
            )
            for index in workers
        ]
        sub_tasks = [
            dataclasses.replace(market.tasks[index], replication=1)
            for index in tasks
        ]
        submarket = LaborMarket(
            sub_workers, sub_tasks, market.taxonomy, market.requesters
        )
        with obs.span(
            "stream.window",
            workers=len(sub_workers),
            tasks=len(sub_tasks),
        ):
            problem = MBAProblem(submarket, combiner=runtime.rows.combiner)
            assignment = self._solver.solve(problem, seed=0)
        self.windows_flushed += 1
        obs.count("stream.windows")
        for wi, tj in assignment.edges:
            benefit = float(problem.benefits.combined[wi, tj])
            if benefit <= 0.0:
                continue
            runtime.assign(
                int(workers[wi]), int(tasks[tj]), time, benefit
            )


def make_policy(config, n_workers: int) -> DispatchPolicy:
    """Instantiate the configured online policy."""
    if config.policy == "greedy":
        return GreedyPolicy()
    if config.policy == "sample-price":
        return SamplePricePolicy(
            sample_cutoff=int(round(config.sample_fraction * n_workers))
        )
    if config.policy == "micro-batch":
        return MicroBatchPolicy()
    raise ConfigurationError(
        f"no online policy named {config.policy!r}; "
        f"choose from {ONLINE_POLICIES} (round mode runs through "
        "StreamDispatcher.run)"
    )
