"""Typed events flowing through the streaming dispatch bus.

Every event is a small frozen dataclass with a class-level ``kind``
string — the bus routes on ``kind``, handlers read the typed fields.
The same vocabulary serves both the continuous dispatcher
(:mod:`repro.stream.dispatch`) and the discrete-event simulator
(:mod:`repro.sim.events`), which publishes these events instead of
branching on raw heap tuples.

Time semantics: ``time`` is simulated market time (the arrival
process's clock), never wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class StreamEvent:
    """Base event: everything that happens, happens at a time."""

    kind: ClassVar[str] = "event"

    time: float


@dataclass(frozen=True)
class TaskPosted(StreamEvent):
    """A task instance entered the open pool.

    ``instance_id`` distinguishes repeated postings of the same task
    index (the discrete-event simulator samples with replacement); the
    continuous dispatcher posts each task exactly once and uses the
    task index itself as the instance id.
    """

    kind: ClassVar[str] = "task-posted"

    task_index: int
    instance_id: int


@dataclass(frozen=True)
class TaskExpired(StreamEvent):
    """An open task instance hit its deadline unassigned."""

    kind: ClassVar[str] = "task-deadline"

    instance_id: int


@dataclass(frozen=True)
class WorkerLogin(StreamEvent):
    """A worker session began; its capacity grant is session-scoped."""

    kind: ClassVar[str] = "worker-login"

    worker_index: int
    session_id: int


@dataclass(frozen=True)
class WorkerLogout(StreamEvent):
    """A worker session ended.

    Keyed by ``session_id``, not worker index: with overlapping
    sessions only *this* session's remaining capacity grant is
    withdrawn (the bug the session ledger exists to prevent).
    """

    kind: ClassVar[str] = "worker-logout"

    session_id: int
    worker_index: int


@dataclass(frozen=True)
class WindowFlush(StreamEvent):
    """A micro-batch window boundary: time to re-solve the window."""

    kind: ClassVar[str] = "window-flush"

    window_index: int


@dataclass(frozen=True)
class AssignmentEmitted(StreamEvent):
    """A (worker, task) edge was committed by the dispatch policy."""

    kind: ClassVar[str] = "assignment"

    worker_index: int
    task_index: int
    instance_id: int
    benefit: float
    posted_at: float

    @property
    def wait(self) -> float:
        """Time-to-assignment: how long the task queued."""
        return self.time - self.posted_at
