"""Backpressure and latency metrics for the streaming dispatcher.

Two layers of observability, deliberately redundant:

* **obs** — the dispatcher publishes ``stream.*`` counters, gauges,
  and histograms through :mod:`repro.obs` so traced runs carry the
  queueing story in the standard trace/report format (and the bench
  harness ships them inside ``BENCH_*.json``).
* **StreamResult** — an in-process summary with *exact* latency
  percentiles.  The obs histogram summary only tracks
  count/total/min/max (by design — it is O(1) per observation); the
  dispatcher therefore keeps the raw time-to-assignment samples here
  and publishes p50/p95/p99 as obs *gauges* at run end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.obs.timeseries import exact_percentile

#: Percentiles published as ``stream.latency.p*`` gauges.
LATENCY_PERCENTILES: tuple[int, ...] = (50, 95, 99)


@dataclass(frozen=True)
class AssignmentRecord:
    """One emitted (worker, task) edge, as the writer serializes it."""

    time: float
    worker_index: int
    task_index: int
    benefit: float
    wait: float

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "worker": self.worker_index,
            "task": self.task_index,
            "benefit": self.benefit,
            "wait": self.wait,
        }


class LatencyReservoir:
    """Exact latency sample store with percentile queries.

    Unbounded by default: one float per assignment, which the
    population size bounds in turn — at the 10^5-entity bench scale
    that is under a megabyte, far cheaper than getting approximate
    quantiles wrong.  A ``capacity`` turns it into a ring over the most
    recent samples for callers that want a sliding view; queries after
    wraparound cover exactly the last ``capacity`` observations,
    never the evicted ones.

    Percentiles interpolate linearly via
    :func:`repro.obs.timeseries.exact_percentile` — the same
    arithmetic as the windowed store's ``pNN`` aggregates and
    ``numpy.percentile``'s default method — so p95/p99 are exact even
    with a handful of samples (no index truncation: 19 samples put
    p95 between the two largest, not *at* either), and the SLO gauges
    published from here are bit-identical across identical seeds.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None:
            capacity = int(capacity)
            if capacity < 1:
                raise ValidationError(
                    f"reservoir capacity must be >= 1 sample, got "
                    f"{capacity}"
                )
        self.capacity = capacity
        #: Total observations ever made (retained or evicted).
        self.observed = 0
        self._samples: list[float] = []
        self._cursor = 0  # oldest slot, once the ring is full

    def observe(self, value: float) -> None:
        self.observed += 1
        if (
            self.capacity is None
            or len(self._samples) < self.capacity
        ):
            self._samples.append(float(value))
        else:
            self._samples[self._cursor] = float(value)
            self._cursor = (self._cursor + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the retained samples;
        NaN with no samples."""
        if not self._samples:
            if not 0.0 <= q <= 100.0:
                raise ValidationError(
                    f"percentile must lie in [0, 100], got {q}"
                )
            return float("nan")
        return exact_percentile(sorted(self._samples), q)

    def summary(self) -> dict[str, float]:
        """count/mean/max plus the standard percentile ladder."""
        if not self._samples:
            return {"count": 0.0}
        values = np.asarray(self._samples)
        ordered = sorted(self._samples)
        out = {
            "count": float(values.size),
            "mean": float(values.mean()),
            "max": float(ordered[-1]),
        }
        for q in LATENCY_PERCENTILES:
            out[f"p{q}"] = exact_percentile(ordered, q)
        return out


@dataclass
class StreamResult:
    """Aggregate outcome of one streaming dispatch run."""

    policy: str = ""
    records: list[AssignmentRecord] = field(default_factory=list)
    posted_tasks: int = 0
    expired_tasks: int = 0
    dropped_tasks: int = 0
    logins: int = 0
    logouts: int = 0
    skipped_logins: int = 0
    combined_benefit: float = 0.0
    max_queue_depth: int = 0
    #: Simulated clock value when the run ended.
    end_time: float = 0.0
    #: Wall-clock seconds the dispatch loop took (set by ``run``).
    wall_time: float = 0.0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    #: Round-mode only: the delegated engine's full result, kept so
    #: bit-identity against a direct engine run is checkable.
    round_result: object | None = None

    @property
    def assignments(self) -> int:
        return len(self.records)

    @property
    def fill_rate(self) -> float:
        """Fraction of posted tasks assigned before their deadline."""
        if self.posted_tasks == 0:
            return 0.0
        return len(self.records) / self.posted_tasks

    @property
    def assignments_per_second(self) -> float:
        """Wall-clock emission throughput; NaN before timing is set."""
        if self.wall_time <= 0.0:
            return float("nan")
        return len(self.records) / self.wall_time

    def latency_summary(self) -> dict[str, float]:
        return self.latency.summary()
