"""Session-scoped worker capacity accounting.

A worker's capacity is granted per *session* (login), not per worker:
when sessions overlap — a worker logs in again before a prior logout
fires — each logout must withdraw only the remaining capacity of its
own session.  The previous accounting (a flat ``worker -> capacity``
dict whose logout did ``pop(worker)``) destroyed the second session's
grant at the first logout; this ledger is the fix, shared by the
discrete-event simulator and the streaming dispatcher.

Consumption order is earliest-expiring-first: using up the grant that
dies soonest preserves the most future capacity, and makes the ledger
behave exactly like the old flat dict whenever sessions do not
overlap (so historical single-session runs stay bit-identical).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass
class SessionGrant:
    """One login's capacity grant."""

    session_id: int
    worker_index: int
    remaining: int
    expires_at: float


class SessionLedger:
    """Tracks per-session capacity grants for online workers."""

    def __init__(self) -> None:
        self._grants: dict[int, SessionGrant] = {}
        #: worker -> session ids with remaining capacity, login order.
        self._by_worker: dict[int, list[int]] = {}
        #: Workers with positive total capacity, in the order their
        #: current online presence began (mirrors the insertion-order
        #: semantics of the flat dict this ledger replaced).
        self._active_order: dict[int, None] = {}
        self._ids = itertools.count()

    # -- session lifecycle -------------------------------------------------

    def login(
        self, worker_index: int, capacity: int, expires_at: float
    ) -> int:
        """Open a session granting ``capacity`` units; returns its id."""
        if capacity < 0:
            raise ValidationError(
                f"session capacity must be >= 0, got {capacity}"
            )
        session_id = next(self._ids)
        self._grants[session_id] = SessionGrant(
            session_id, worker_index, capacity, expires_at
        )
        self._by_worker.setdefault(worker_index, []).append(session_id)
        if capacity > 0 and worker_index not in self._active_order:
            self._active_order[worker_index] = None
        return session_id

    def logout(self, session_id: int) -> tuple[int, int]:
        """Withdraw one session's remaining grant.

        Returns ``(worker_index, capacity_released)``.  Other sessions
        of the same worker are untouched — that is the whole point.
        Unknown or already-closed sessions release zero (idempotent,
        like the old ``pop(entity, None)``).
        """
        grant = self._grants.pop(session_id, None)
        if grant is None:
            return (-1, 0)
        sessions = self._by_worker.get(grant.worker_index, [])
        if session_id in sessions:
            sessions.remove(session_id)
        if self.capacity(grant.worker_index) <= 0:
            self._active_order.pop(grant.worker_index, None)
            if not sessions:
                self._by_worker.pop(grant.worker_index, None)
        return (grant.worker_index, grant.remaining)

    # -- capacity ----------------------------------------------------------

    def capacity(self, worker_index: int) -> int:
        """Total remaining capacity across the worker's open sessions."""
        ids = self._by_worker.get(worker_index)
        if not ids:
            return 0
        total = 0
        for sid in ids:
            total += self._grants[sid].remaining
        return total

    def consume(self, worker_index: int, amount: int = 1) -> None:
        """Use up ``amount`` units, earliest-expiring session first."""
        if amount <= 0:
            return
        ids = self._by_worker.get(worker_index, [])
        open_grants = sorted(
            (self._grants[sid] for sid in ids),
            key=lambda g: (g.expires_at, g.session_id),
        )
        for grant in open_grants:
            if amount <= 0:
                break
            used = min(grant.remaining, amount)
            grant.remaining -= used
            amount -= used
        if amount > 0:
            raise ValidationError(
                f"worker {worker_index} has no capacity left to consume"
            )
        if self.capacity(worker_index) <= 0:
            self._active_order.pop(worker_index, None)

    def online(self) -> list[int]:
        """Workers with positive capacity, in online-presence order."""
        return list(self._active_order)

    def session_worker(self, session_id: int) -> int | None:
        """Worker owning an open session, or ``None`` if closed."""
        grant = self._grants.get(session_id)
        return None if grant is None else grant.worker_index

    def open_sessions(self) -> int:
        """Number of sessions not yet logged out."""
        return len(self._grants)
