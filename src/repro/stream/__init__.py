"""Streaming dispatch service: the market as a live event stream.

Instead of solving rounds over a frozen population, this package runs
the labor market continuously — tasks and workers arrive through
:mod:`repro.market.arrivals` processes, events flow over an
:class:`~repro.stream.bus.EventBus`, and pluggable policies
(:mod:`repro.stream.policies`) commit assignments incrementally, from
pure arrival-instant greedy up to warm-started micro-batch re-solving.
The round-based engine survives as one policy (``policy = "round"``)
whose output stays bit-identical to calling it directly.

Entry points: :class:`StreamDispatcher` programmatically, or
``python -m repro stream <spec>`` from the command line.
"""

from repro.stream.bus import EventBus
from repro.stream.dispatch import (
    DISPATCH_POLICIES,
    DispatchConfig,
    DispatchRuntime,
    StreamDispatcher,
)
from repro.stream.events import (
    AssignmentEmitted,
    StreamEvent,
    TaskExpired,
    TaskPosted,
    WindowFlush,
    WorkerLogin,
    WorkerLogout,
)
from repro.stream.metrics import (
    AssignmentRecord,
    LatencyReservoir,
    StreamResult,
)
from repro.stream.policies import (
    ONLINE_POLICIES,
    DispatchPolicy,
    GreedyPolicy,
    MicroBatchPolicy,
    SamplePricePolicy,
    make_policy,
)
from repro.stream.sessions import SessionGrant, SessionLedger
from repro.stream.writer import BatchWriter

__all__ = [
    "DISPATCH_POLICIES",
    "ONLINE_POLICIES",
    "AssignmentEmitted",
    "AssignmentRecord",
    "BatchWriter",
    "DispatchConfig",
    "DispatchPolicy",
    "DispatchRuntime",
    "EventBus",
    "GreedyPolicy",
    "LatencyReservoir",
    "MicroBatchPolicy",
    "SamplePricePolicy",
    "SessionGrant",
    "SessionLedger",
    "StreamDispatcher",
    "StreamEvent",
    "StreamResult",
    "TaskExpired",
    "TaskPosted",
    "WindowFlush",
    "WorkerLogin",
    "WorkerLogout",
    "make_policy",
]
