"""Bounded-batch persistence of emitted assignment records.

The dispatcher emits assignments one at a time; writing each record
individually would put a filesystem syscall inside the hot loop, while
buffering everything until the end would make a long-running service's
output invisible (and lose it all on a crash).  ``BatchWriter`` is the
standard middle ground: records buffer in memory and flush as one
append-mode JSONL write whenever the batch fills (and once at close).

Append-only JSONL is the deliberate format: each flush is a pure
suffix, so a reader never observes a half-rewritten file, and a crash
loses at most the unflushed tail — the same reasoning the obs
registry's index log uses.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.errors import ValidationError
from repro.stream.metrics import AssignmentRecord


class BatchWriter:
    """Flushes assignment records to a JSONL file in bounded batches."""

    def __init__(self, path: str | Path, batch_size: int = 256) -> None:
        if batch_size < 1:
            raise ValidationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.path = Path(path)
        self.batch_size = batch_size
        self._buffer: list[AssignmentRecord] = []
        self.records_written = 0
        self.flushes = 0
        self._closed = False

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "BatchWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def write(self, record: AssignmentRecord) -> None:
        """Buffer one record; flush when the batch is full."""
        if self._closed:
            raise ValidationError("writer is closed")
        self._buffer.append(record)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> int:
        """Append all buffered records; returns how many were written."""
        if not self._buffer:
            return 0
        lines = "".join(
            json.dumps(record.to_dict()) + "\n" for record in self._buffer
        )
        with open(self.path, "a") as handle:
            handle.write(lines)
        written = len(self._buffer)
        self._buffer.clear()
        self.records_written += written
        self.flushes += 1
        obs.count("stream.writer.flushes")
        obs.count("stream.writer.records", written)
        return written

    def close(self) -> None:
        """Flush the tail and refuse further writes."""
        if not self._closed:
            self.flush()
            self._closed = True

    @property
    def pending(self) -> int:
        """Records buffered but not yet on disk."""
        return len(self._buffer)
