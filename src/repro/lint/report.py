"""Render lint results for terminals, CI logs, and tooling."""

from __future__ import annotations

import json

from repro.lint.base import RULE_REGISTRY
from repro.lint.engine import LintResult


def render_text(result: LintResult) -> str:
    """ruff/flake8-style ``path:line:col: RULE message`` lines."""
    lines = [violation.render() for violation in result.violations]
    noun = "violation" if len(result.violations) == 1 else "violations"
    files = "file" if result.files_checked == 1 else "files"
    lines.append(
        f"{len(result.violations)} {noun} "
        f"({result.files_checked} {files} checked)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable keys, sorted violations)."""
    payload = {
        "files_checked": result.files_checked,
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "message": v.message,
            }
            for v in result.violations
        ],
    }
    return json.dumps(payload, indent=2)


def render_rule_list() -> str:
    """The ``--list-rules`` table: id, family, one-line summary."""
    lines = []
    for rule_id in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[rule_id]
        lines.append(f"{rule_id}  {rule.family:<16} {rule.summary}")
    return "\n".join(lines)
