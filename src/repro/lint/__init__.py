"""``repro.lint`` — AST-based invariant checking for this repository.

The evaluation tables in this reproduction are only as trustworthy as
three mechanical properties: determinism (every random draw threads a
seed), solver-contract conformance (every solver is registered,
implements ``solve``, and treats the problem as read-only), and layer
discipline (the algorithmic core never imports orchestration code).
``python -m repro lint`` enforces all of them, plus float-equality
hygiene, directly on the AST — no imports of the checked code, no
runtime monkey-patching, CI-fast.

Typical use::

    from repro.lint import LintConfig, lint_paths
    result = lint_paths(["src/repro"])
    assert result.ok, "\\n".join(v.render() for v in result.violations)

See ``docs/static-analysis.md`` for the rule catalogue and the
``# lint: allow[...]`` whitelisting pragma.
"""

from repro.lint.base import (
    RULE_REGISTRY,
    FileContext,
    Rule,
    Violation,
    all_rules,
    register_rule,
)
from repro.lint.config import LintConfig
from repro.lint.engine import (
    LintResult,
    iter_python_files,
    lint_file,
    lint_paths,
    module_path_for,
)
from repro.lint.report import render_json, render_rule_list, render_text

__all__ = [
    "RULE_REGISTRY",
    "FileContext",
    "LintConfig",
    "LintResult",
    "Rule",
    "Violation",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "module_path_for",
    "register_rule",
    "render_json",
    "render_rule_list",
    "render_text",
]
