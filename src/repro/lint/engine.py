"""Walk files, parse them, run every enabled rule, collect violations.

The engine is deliberately dumb: discovery, module-path inference,
parsing, pragma suppression, sorting.  Everything domain-specific
lives in the rule families under :mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

import repro.lint.rules  # noqa: F401  (registers every rule family)
from repro.lint.base import FileContext, Violation, all_rules
from repro.lint.config import LintConfig

_PACKAGE = "repro"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file stream."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def module_path_for(path: Path) -> str:
    """Dotted module path inferred from the filesystem.

    The last ``repro`` directory component anchors the package root, so
    both ``src/repro/core/flow.py`` and a test fixture tree
    ``tmp/repro/core/bad.py`` resolve to ``repro.core...``.  Files
    outside any ``repro`` tree keep their bare stem, which disables the
    package-relative rules (layering, solver contract) while the
    file-local ones still run.
    """
    parts = list(path.with_suffix("").parts)
    try:
        anchor = len(parts) - 1 - parts[::-1].index(_PACKAGE)
    except ValueError:
        anchor = len(parts) - 1
    module_parts = parts[anchor:]
    if module_parts and module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return ".".join(module_parts) if module_parts else path.stem


def lint_file(
    path: str | Path, config: LintConfig | None = None
) -> list[Violation]:
    """Lint one file; unparseable files yield a single E999 violation."""
    config = config if config is not None else LintConfig()
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Violation(
                path=str(path),
                line=error.lineno or 1,
                col=error.offset or 0,
                rule_id="E999",
                message=f"syntax error: {error.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(
        path=str(path),
        module=module_path_for(path),
        tree=tree,
        source_lines=lines,
        config=config,
    )
    violations = []
    for rule in all_rules():
        if not config.rule_enabled(rule.id):
            continue
        for violation in rule.check(ctx):
            source_line = (
                lines[violation.line - 1]
                if 0 < violation.line <= len(lines)
                else ""
            )
            if config.line_suppresses(source_line, violation.rule_id):
                continue
            violations.append(violation)
    return violations


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> LintResult:
    """Lint every python file under ``paths``; violations come back
    sorted by (path, line, col, rule)."""
    config = config if config is not None else LintConfig()
    result = LintResult()
    for path in iter_python_files(paths):
        result.files_checked += 1
        result.violations.extend(lint_file(path, config))
    result.violations.sort()
    return result
