"""Linter configuration: rule selection, layering table, whitelists.

The defaults encode this repository's invariants; tests construct
custom configs to exercise rules in isolation.  Inline suppression
uses a pragma comment on the offending line::

    value = rng.random()  # lint: allow[R105]

``allow`` with no bracket suppresses every rule on that line.  The
pragma is deliberately loud — greppable, reviewable, and counted by
``python -m repro lint --stats``-style tooling later.
"""

from __future__ import annotations

import re
from collections.abc import Mapping
from dataclasses import dataclass, field

#: Layers that must never be imported by the algorithmic core.  Keys
#: are the top package component under ``repro``; values are forbidden
#: component sets.  ``eval``/``sim``/``benchmarks`` sit *above* the
#: core in the dependency DAG: letting the core reach up would create
#: cycles and drag plotting/IO machinery into every solver import.
DEFAULT_FORBIDDEN_IMPORTS: Mapping[str, frozenset[str]] = {
    "core": frozenset(
        {"eval", "sim", "benchmarks", "resilience", "perf", "spec", "stream"}
    ),
    "matching": frozenset(
        {"eval", "sim", "benchmarks", "resilience", "perf", "spec", "stream"}
    ),
    "benefit": frozenset(
        {"eval", "sim", "benchmarks", "resilience", "perf", "spec", "stream"}
    ),
    # ``repro.stream`` sits beside ``repro.sim``: it may use the core,
    # matching, benefit, market, and (lazily) sim layers, but nothing
    # operational above it — the CLI drives it, the eval/bench layers
    # measure it, the lint layer audits it.
    "stream": frozenset({"eval", "benchmarks", "cli", "lint"}),
    # ``repro.obs`` must be importable from *anywhere* — solvers and
    # simulators alike call into it — so it may depend on nothing above
    # the utils layer: only ``utils``, ``errors``, and itself.
    "obs": frozenset({
        "benchmarks", "benefit", "cli", "core", "crowd", "datagen",
        "eval", "io", "lint", "market", "matching", "perf",
        "resilience", "sim", "spec", "stream", "types",
    }),
}

#: Modules (package prefixes) where broad ``except Exception`` is the
#: *job*: the resilience layer exists to contain arbitrary solver
#: crashes and convert them into recorded, degraded rounds.  Everywhere
#: else R501 demands catching concrete :class:`repro.errors.ReproError`
#: subtypes.
DEFAULT_BROAD_EXCEPT_ALLOWED: frozenset[str] = frozenset(
    {"repro.resilience"}
)

#: Modules that produce *durable* artifacts (saved markets and
#: results, BENCH json, registered traces, checkpoints).  R503 forbids
#: raw write-mode ``open`` / ``Path.write_text`` / ``write_bytes``
#: there: a crash mid-write leaves a truncated file that a later
#: ``--resume`` or ``obs diff`` trusts, so every durable write must go
#: through :mod:`repro.utils.atomic` (write-then-rename).  Append-mode
#: opens stay legal — appending one line is the correct primitive for
#: the registry's index log.
DEFAULT_DURABLE_WRITE_MODULES: frozenset[str] = frozenset(
    {
        "repro.io",
        "repro.perf",
        "repro.obs.export",
        "repro.obs.registry",
        # Alert logs and collapsed-stack profiles are CI artifacts and
        # monitor-gate evidence; a truncated one reads as "no alerts".
        "repro.obs.slo",
        "repro.obs.profile",
        "repro.resilience.runtime",
    }
)

#: Packages whose inner loops are performance-critical: R601 flags
#: scalar Python accumulation over array subscripts there, because the
#: same reduction written as a numpy gather is orders of magnitude
#: faster and these modules sit inside every solver call.  The perf
#: harness is included because its reference reductions time the shard
#: suites at n=10k, where a scalar loop would dominate the measurement.
DEFAULT_PERF_HOT_MODULES: frozenset[str] = frozenset(
    {
        "repro.matching",
        "repro.core.solvers",
        "repro.obs",
        "repro.perf",
        # The dispatch loop runs per arrival event at |W|,|T| = 1e5;
        # a scalar accumulation there multiplies by the event count.
        "repro.stream",
    }
)

#: Module prefixes inside the hot set where scalar loops are the
#: *point* — reference implementations kept deliberately loop-shaped
#: so the vectorized hot paths have an independent oracle.
DEFAULT_PERF_LOOP_ALLOWED: frozenset[str] = frozenset(
    {"repro.matching.reference"}
)

#: ``repro.utils`` is the bottom layer: it may import other ``utils``
#: modules and the shared exception hierarchy, nothing else.
DEFAULT_UTILS_ALLOWED: frozenset[str] = frozenset({"utils", "errors"})

_PRAGMA = re.compile(
    r"#\s*lint:\s*allow(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class LintConfig:
    """Immutable knob set threaded through the engine and every rule."""

    #: When non-``None``, only these rule ids run.
    select: frozenset[str] | None = None
    #: Rule ids that never run (applied after ``select``).
    ignore: frozenset[str] = frozenset()
    #: The one module allowed to touch raw RNG constructors.
    rng_module: str = "repro.utils.rng"
    #: Layer -> forbidden top-level components under ``repro``.
    forbidden_imports: Mapping[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_FORBIDDEN_IMPORTS)
    )
    #: Components ``repro.utils`` may import from ``repro``.
    utils_allowed: frozenset[str] = DEFAULT_UTILS_ALLOWED
    #: Modules where float ``==`` is accepted wholesale (rarely right;
    #: prefer the line pragma).
    float_eq_modules: frozenset[str] = frozenset()
    #: Module/package prefixes exempt from R501's broad-except ban.
    broad_except_allowed: frozenset[str] = DEFAULT_BROAD_EXCEPT_ALLOWED
    #: Module/package prefixes whose file writes R503 requires to be
    #: atomic (write-then-rename via ``repro.utils.atomic``).
    durable_write_modules: frozenset[str] = DEFAULT_DURABLE_WRITE_MODULES
    #: Package prefixes R601 watches for scalar accumulation loops.
    perf_hot_modules: frozenset[str] = DEFAULT_PERF_HOT_MODULES
    #: Prefixes inside the hot set exempt from R601 (reference
    #: implementations that are scalar on purpose).
    perf_loop_allowed: frozenset[str] = DEFAULT_PERF_LOOP_ALLOWED
    #: Module holding the ``Scenario`` dataclass R701/R704 audit
    #: against the spec schema.
    spec_scenario_module: str = "repro.sim.scenario"
    #: Module holding the CLI parser R702 audits for unbound flags.
    spec_cli_module: str = "repro.cli"
    #: Module holding the constraint catalogue R703 audits for
    #: undeclared knob references.
    spec_constraints_module: str = "repro.spec.constraints"

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select is not None:
            return rule_id in self.select
        return True

    @staticmethod
    def line_suppresses(source_line: str, rule_id: str) -> bool:
        """True when the line carries a pragma covering ``rule_id``."""
        match = _PRAGMA.search(source_line)
        if match is None:
            return False
        ids = match.group("ids")
        if ids is None:
            return True
        return rule_id in {part.strip() for part in ids.split(",")}
