"""Core linting vocabulary: violations, file contexts, the rule registry.

Every rule module registers :class:`Rule` subclasses here; the engine
instantiates the registry and runs each rule over a parsed
:class:`FileContext`.  Keeping the vocabulary in one leaf module avoids
import cycles between the engine and the rule packages.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.lint.config import LintConfig

RULE_REGISTRY: dict[str, type["Rule"]] = {}


def register_rule(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to the registry under ``cls.id``."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list["Rule"]:
    """Instantiate every registered rule, sorted by id."""
    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]


@dataclass(frozen=True, order=True)
class Violation:
    """One diagnostic: ``path:line:col: rule_id message``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}"
        )


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file.

    ``module`` is the dotted module path inferred from the filesystem
    (``repro.core.solvers.flow``); rules use it for layer membership
    and for the RNG-module exemption.  Files outside any ``repro``
    package tree get their bare stem, which makes the layering rules
    vacuous for them while the file-local rules still apply.
    """

    path: str
    module: str
    tree: ast.Module
    source_lines: list[str] = field(default_factory=list)
    config: LintConfig = field(default_factory=LintConfig)

    def violation(
        self, node: ast.AST, rule_id: str, message: str
    ) -> Violation:
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )


class Rule(abc.ABC):
    """One invariant checked over a file's AST.

    Subclasses set ``id`` (stable, e.g. ``R102``), ``family`` (the
    rule-family slug used in docs and ``--select``) and ``summary``
    (one line for ``--list-rules``), then implement :meth:`check`.
    """

    id: str = ""
    family: str = ""
    summary: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield every violation of this rule found in ``ctx``."""


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``ast.Name``/``ast.Attribute`` chain as ``a.b.c``.

    Returns ``None`` for anything containing calls or subscripts —
    those are dynamic expressions, not importable names.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def root_name(node: ast.AST) -> str | None:
    """Base variable of an attribute/subscript chain, if it is a name.

    ``problem.benefits.combined[i, j]`` roots at ``problem``; anything
    whose chain passes through a call (``problem.copy().x``) roots at
    ``None`` because the call produced a fresh object.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None
