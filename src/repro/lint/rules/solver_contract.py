"""R2 — solver contract conformance.

Every solver in ``repro.core`` is discovered through the registry and
compared head-to-head in the evaluation tables, so the contract in
:class:`repro.core.solvers.base.Solver` has to hold mechanically:

* **R201** — a ``Solver`` subclass must carry ``@register_solver`` (an
  unregistered solver silently drops out of every benchmark sweep);
* **R202** — it must implement ``solve`` itself (inheriting the
  abstract stub raises at runtime, far from the definition);
* **R203** — ``solve``/helpers must not mutate the shared problem:
  writes to ``problem.*`` attributes, in-place numpy ops on benefit
  matrices reached through ``problem``, or mutating method calls on
  such views corrupt every solver run after the first;
* **R204** — a solver that carries warm-start state (sets
  ``carries_warm_state = True`` or reads ``self.warm_state``) must
  declare a ``warm_state`` keyword in ``__init__``: hidden state that
  cannot be injected through the registered constructor signature
  breaks checkpoint restoration and the spec layer's kwargs checking.

R203 does alias tracking: ``combined = problem.benefits.combined``
makes ``combined`` a *view*, so ``combined *= mask`` is a write to the
problem.  Chains that pass through a call (``problem.worker_capacities()``
returns a copy) break the aliasing and are exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)

_SOLVER_BASE_MODULE = "repro.core.solvers.base"

#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = frozenset({"fill", "sort", "put", "itemset", "partition"})

#: numpy free functions whose first argument is written in place.
_MUTATING_FUNCTIONS = frozenset({"copyto", "place", "put", "putmask"})


def _solver_classes(ctx: FileContext) -> Iterator[ast.ClassDef]:
    for node in ctx.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for base in node.bases:
            name = dotted_name(base)
            if name is not None and name.split(".")[-1] == "Solver":
                yield node
                break


def _is_abstract(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, ast.FunctionDef):
            for decorator in item.decorator_list:
                name = dotted_name(decorator)
                if name is not None and name.endswith("abstractmethod"):
                    return True
    return False


def _applies(ctx: FileContext) -> bool:
    return (
        ctx.module.startswith("repro.core")
        and ctx.module != _SOLVER_BASE_MODULE
    )


@register_rule
class SolverMustRegister(Rule):
    id = "R201"
    family = "solver-contract"
    summary = "Solver subclasses need @register_solver"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in _solver_classes(ctx):
            if node.name.startswith("_") or _is_abstract(node):
                continue
            registered = False
            for decorator in node.decorator_list:
                target = decorator
                if isinstance(decorator, ast.Call):
                    target = decorator.func
                name = dotted_name(target)
                if name is not None and (
                    name.split(".")[-1] == "register_solver"
                ):
                    registered = True
            if not registered:
                yield ctx.violation(
                    node,
                    self.id,
                    f"solver class {node.name} is not decorated with "
                    "@register_solver — it will be invisible to "
                    "get_solver and every benchmark sweep",
                )


@register_rule
class SolverMustImplementSolve(Rule):
    id = "R202"
    family = "solver-contract"
    summary = "Solver subclasses must define solve()"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in _solver_classes(ctx):
            if node.name.startswith("_") or _is_abstract(node):
                continue
            has_solve = any(
                isinstance(item, ast.FunctionDef) and item.name == "solve"
                for item in node.body
            )
            if not has_solve:
                yield ctx.violation(
                    node,
                    self.id,
                    f"solver class {node.name} defines no solve() — the "
                    "inherited abstract stub fails only at call time",
                )


@register_rule
class SolverMustNotMutateProblem(Rule):
    id = "R203"
    family = "solver-contract"
    summary = "solvers must not write to the shared problem instance"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in _solver_classes(ctx):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    yield from self._check_function(ctx, item)

    def _check_function(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        args = func.args
        roots = {
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
            if a.arg == "problem"
            or (
                a.annotation is not None
                and "MBAProblem" in ast.dump(a.annotation)
            )
        }
        if not roots:
            return
        aliases: set[str] = set()

        def rooted(node: ast.AST) -> bool:
            """Attribute/subscript chain ending at a root or alias."""
            base = node
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if not isinstance(base, ast.Name):
                return False
            if base.id in roots:
                # A bare root name is not itself problem *state*.
                return base is not node
            return base.id in aliases

        def visit(stmt: ast.stmt) -> Iterator[Violation]:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and rooted(target):
                        yield ctx.violation(
                            target,
                            self.id,
                            "write to problem state: solvers must treat "
                            "the problem (and its benefit matrices) as "
                            "read-only",
                        )
                    elif isinstance(target, ast.Name):
                        if self._pure_chain_root(stmt.value, roots, aliases):
                            aliases.add(target.id)
                        else:
                            aliases.discard(target.id)
            elif isinstance(stmt, ast.AugAssign):
                target = stmt.target
                if isinstance(target, ast.Name) and target.id in aliases:
                    yield ctx.violation(
                        target,
                        self.id,
                        f"in-place operation on `{target.id}`, a view of "
                        "the problem's matrices — copy before mutating",
                    )
                elif isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and rooted(target):
                    yield ctx.violation(
                        target,
                        self.id,
                        "in-place write to problem state — copy before "
                        "mutating",
                    )
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    yield from visit(child)
                else:
                    yield from check_calls(child)

        def check_calls(node: ast.AST) -> Iterator[Violation]:
            for call in [
                n for n in ast.walk(node) if isinstance(n, ast.Call)
            ]:
                func_node = call.func
                if isinstance(func_node, ast.Attribute):
                    name = dotted_name(func_node)
                    if (
                        func_node.attr in _MUTATING_METHODS
                        and (
                            rooted(func_node.value)
                            or (
                                isinstance(func_node.value, ast.Name)
                                and func_node.value.id in aliases
                            )
                        )
                    ):
                        yield ctx.violation(
                            call,
                            self.id,
                            f"mutating call .{func_node.attr}() on a view "
                            "of the problem's matrices",
                        )
                    elif (
                        name is not None
                        and name.split(".")[-1] in _MUTATING_FUNCTIONS
                        and call.args
                        and (
                            rooted(call.args[0])
                            or (
                                isinstance(call.args[0], ast.Name)
                                and call.args[0].id in aliases
                            )
                        )
                    ):
                        yield ctx.violation(
                            call,
                            self.id,
                            f"{name} writes its first argument in place, "
                            "which aliases the problem's matrices",
                        )

        for stmt in func.body:
            yield from visit(stmt)

    @staticmethod
    def _pure_chain_root(
        value: ast.AST, roots: set[str], aliases: set[str]
    ) -> bool:
        """True when ``value`` is an attribute/subscript chain (no
        calls) whose base name is a problem root or existing alias —
        i.e. assigning it creates another live view."""
        node = value
        if not isinstance(node, (ast.Attribute, ast.Subscript)):
            return False
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and (
            node.id in roots or node.id in aliases
        )


@register_rule
class WarmStateMustBeDeclared(Rule):
    id = "R204"
    family = "solver-contract"
    summary = "warm-state solvers must accept warm_state in __init__"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in _solver_classes(ctx):
            if _is_abstract(node):
                continue
            if not self._carries_warm_state(node):
                continue
            init = next(
                (
                    item
                    for item in node.body
                    if isinstance(item, ast.FunctionDef)
                    and item.name == "__init__"
                ),
                None,
            )
            if init is None or not self._declares_warm_state(init):
                yield ctx.violation(
                    node,
                    self.id,
                    f"solver class {node.name} carries warm-start state "
                    "but its __init__ declares no `warm_state` keyword — "
                    "state that cannot be injected through the "
                    "registered signature breaks checkpoint restoration "
                    "and spec-level kwargs checking",
                )

    @staticmethod
    def _carries_warm_state(node: ast.ClassDef) -> bool:
        """``carries_warm_state = True`` in the body, or any method
        reading/writing ``self.warm_state``."""
        for item in node.body:
            targets: list[ast.expr] = []
            if isinstance(item, ast.Assign):
                targets = item.targets
            elif isinstance(item, ast.AnnAssign) and item.target is not None:
                targets = [item.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "carries_warm_state"
                    and isinstance(getattr(item, "value", None), ast.Constant)
                    and item.value.value is True
                ):
                    return True
        for item in ast.walk(node):
            if (
                isinstance(item, ast.Attribute)
                and item.attr == "warm_state"
                and isinstance(item.value, ast.Name)
                and item.value.id == "self"
            ):
                return True
        return False

    @staticmethod
    def _declares_warm_state(init: ast.FunctionDef) -> bool:
        args = init.args
        names = {
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
        }
        return "warm_state" in names
