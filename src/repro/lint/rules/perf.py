"""R6 — performance hygiene for the solver hot paths.

The matching kernels and the solver layer run inside every experiment
sweep; a Python-level loop that touches an array element per
iteration turns an O(n²) numpy reduction into an O(n²) *interpreter*
loop, which is the difference between milliseconds and minutes at the
instance sizes Figure 7/8 sweep.  The vectorized rewrites of the
Hungarian and auction inner loops exist precisely because this
pattern crept in — R601 keeps it from creeping back.

**R601** flags, inside the configured hot packages
(``LintConfig.perf_hot_modules``, default ``repro.matching`` and
``repro.core.solvers``):

* ``for`` loops over ``range(...)`` or ``enumerate(...)`` whose body
  accumulates a scalar from a subscript — ``total += weights[i, j]``;
* ``sum(...)``/``min(...)``/``max(...)`` over a generator or list
  comprehension whose element expression subscripts an array —
  ``sum(matrix[w, t] for w, t in edges)``.

Both shapes have a one-line numpy equivalent (fancy-indexed gather
plus ``.sum()`` / ``.min()`` / ``.max()``).  Deliberately scalar code
— the reference implementations the fast paths are validated against
— lives under ``LintConfig.perf_loop_allowed`` prefixes
(``repro.matching.reference`` by default); one-off exceptions take
``# lint: allow[R601]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import FileContext, Rule, Violation, register_rule

_COUNTING_ITERS = frozenset({"range", "enumerate"})
_REDUCERS = frozenset({"sum", "min", "max"})


def _is_counting_loop(node: ast.For) -> bool:
    """True for ``for ... in range(...)`` / ``enumerate(...)``."""
    return (
        isinstance(node.iter, ast.Call)
        and isinstance(node.iter.func, ast.Name)
        and node.iter.func.id in _COUNTING_ITERS
    )


def _contains_subscript(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Subscript) for sub in ast.walk(node))


def _scalar_accumulations(loop: ast.For) -> Iterator[ast.AugAssign]:
    """AugAssigns in the loop body that fold a subscripted element
    into a plain name (``total += arr[i]``), including in nested
    loops; writes *into* subscripts (``arr[i] += x``) are scatter
    updates, not scalar accumulation, and stay legal."""
    for node in ast.walk(loop):
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Name)
            and _contains_subscript(node.value)
        ):
            yield node


@register_rule
class NoScalarAccumulation(Rule):
    id = "R601"
    family = "perf"
    summary = (
        "Python-loop accumulation over array elements in a hot module; "
        "use a vectorized numpy reduction"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module = ctx.module
        if not any(
            module == hot or module.startswith(hot + ".")
            for hot in ctx.config.perf_hot_modules
        ):
            return
        if any(
            module == allowed or module.startswith(allowed + ".")
            for allowed in ctx.config.perf_loop_allowed
        ):
            return
        seen: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_counting_loop(node):
                for accumulation in _scalar_accumulations(node):
                    # Nested counting loops both walk the same body;
                    # report each accumulation once.
                    if id(accumulation) in seen:
                        continue
                    seen.add(id(accumulation))
                    yield ctx.violation(
                        accumulation,
                        self.id,
                        "scalar accumulation over array elements in a "
                        "counting loop — gather with fancy indexing and "
                        "reduce with numpy",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _REDUCERS
                and node.args
                and isinstance(
                    node.args[0], (ast.GeneratorExp, ast.ListComp)
                )
                and _contains_subscript(node.args[0].elt)
            ):
                yield ctx.violation(
                    node,
                    self.id,
                    f"{node.func.id}() over a comprehension of array "
                    "subscripts — index with arrays and call "
                    f".{node.func.id}() on the result",
                )
