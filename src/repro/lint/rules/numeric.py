"""R4 — numeric hygiene.

Exact equality between floats is almost always a latent bug: it holds
on one BLAS/OS/numpy combination and silently flips on another, which
is precisely the nondeterminism a reproduction cannot afford.  **R401**
flags ``==``/``!=`` where either operand is *textually* floating
point — a float literal (``x == 1.0``), a ``float(...)`` call, or
``float("inf")``-style constructions.  Integer-label comparisons
(``labels == 1``) are untouched, as are ``<=``/``>=`` threshold
checks, which are well defined on floats.

Legitimate exact comparisons (e.g. testing an algebraic identity that
holds bit-for-bit) are whitelisted with ``# lint: allow[R401]`` on the
line, keeping every exception greppable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)


def _is_floatish(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] == "float"
    return False


@register_rule
class NoFloatEquality(Rule):
    id = "R401"
    family = "numeric"
    summary = "float == / != is platform-dependent; use np.isclose"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.module in ctx.config.float_eq_modules:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    yield ctx.violation(
                        node,
                        self.id,
                        "exact float comparison — compare integer labels, "
                        "use np.isclose/math.isclose for tolerances, or "
                        "math.isinf for infinities",
                    )
                    break
