"""R3 — import layering.

The package is a DAG: ``utils`` and ``errors`` at the bottom, the
algorithmic core (``core``/``matching``/``benefit``) above them, and
the orchestration layers (``eval``, ``sim``, ``benchmarks``) on top.
An upward import from the core — say a solver reaching into
``repro.eval`` for a convenience table — creates an import cycle
waiting to happen and couples every solver import to plotting and IO
machinery.  **R301** rejects them at the AST level, including imports
hidden inside functions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import FileContext, Rule, Violation, register_rule

_PACKAGE = "repro"


def _layer_of(module: str) -> str | None:
    """Top component under ``repro`` (``repro.core.x`` -> ``core``)."""
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != _PACKAGE:
        return None
    return parts[1]


def _imported_repro_components(
    tree: ast.Module,
) -> Iterator[tuple[ast.stmt, str]]:
    """Yield ``(node, component)`` for every import of ``repro.X``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == _PACKAGE and len(parts) > 1:
                    yield node, parts[1]
        elif isinstance(node, ast.ImportFrom):
            if node.level != 0 or node.module is None:
                continue
            parts = node.module.split(".")
            if parts[0] != _PACKAGE:
                continue
            if len(parts) > 1:
                yield node, parts[1]
            else:
                # ``from repro import errors, io`` names components
                # directly.
                for alias in node.names:
                    yield node, alias.name


@register_rule
class LayeredImports(Rule):
    id = "R301"
    family = "layering"
    summary = "core layers must not import eval/sim/benchmarks"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        layer = _layer_of(ctx.module)
        if layer is None:
            return
        forbidden = ctx.config.forbidden_imports.get(layer)
        if forbidden is not None:
            for node, component in _imported_repro_components(ctx.tree):
                if component in forbidden:
                    yield ctx.violation(
                        node,
                        self.id,
                        f"layer `{layer}` imports repro.{component}: the "
                        "algorithmic core must not depend on "
                        "orchestration layers",
                    )
        if layer == "utils":
            allowed = ctx.config.utils_allowed
            for node, component in _imported_repro_components(ctx.tree):
                if component not in allowed:
                    yield ctx.violation(
                        node,
                        self.id,
                        f"repro.utils imports repro.{component}: utils "
                        "sits at the bottom of the DAG and may only use "
                        + ", ".join(sorted(f"repro.{a}" for a in allowed)),
                    )
