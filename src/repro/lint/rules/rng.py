"""R1 — RNG discipline.

Reproducible benchmark tables require one property above all: the same
seed yields the same market, the same answers, the same assignment.
That dies the moment any module grabs global RNG state or buries a
hardcoded seed.  The five rules here force every source of randomness
through the ``SeedLike`` threading in :mod:`repro.utils.rng`:

* **R101** — no ``np.random.seed`` (global state poisons every caller);
* **R102** — no ``default_rng`` outside the RNG module (use ``as_rng``);
* **R103** — no ``import random`` outside the RNG module (the stdlib
  generator has no spawnable streams and tempts global use);
* **R104** — solver ``solve`` methods and stochastic datagen entry
  points must accept a ``seed``/``rng`` parameter;
* **R105** — no literal integer seed passed to ``as_rng``/
  ``spawn_rngs`` (a buried constant makes "vary the seed" a lie).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)

_SEED_PARAM_NAMES = frozenset({"seed", "rng", "generator"})
_RNG_COERCERS = frozenset({"as_rng", "spawn_rngs"})


def _function_params(node: ast.FunctionDef) -> set[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def _in_rng_module(ctx: FileContext) -> bool:
    return ctx.module == ctx.config.rng_module


@register_rule
class NoGlobalSeed(Rule):
    id = "R101"
    family = "rng"
    summary = "np.random.seed mutates global state; thread a Generator"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is not None and name.endswith("random.seed"):
                yield ctx.violation(
                    node,
                    self.id,
                    f"call to {name} seeds *global* numpy state; pass a "
                    "seed through repro.utils.rng.as_rng instead",
                )


@register_rule
class NoRawDefaultRng(Rule):
    id = "R102"
    family = "rng"
    summary = "default_rng belongs in repro.utils.rng only"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if _in_rng_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] != "default_rng":
                continue
            detail = "coerce seeds via repro.utils.rng.as_rng"
            if node.args and isinstance(node.args[0], ast.Constant):
                detail = (
                    "the hardcoded seed "
                    f"{node.args[0].value!r} defeats seed threading; "
                    "accept a SeedLike parameter and call as_rng"
                )
            yield ctx.violation(
                node,
                self.id,
                f"call to {name} outside {ctx.config.rng_module} — "
                f"{detail}",
            )


@register_rule
class NoStdlibRandom(Rule):
    id = "R103"
    family = "rng"
    summary = "stdlib random is banned outside repro.utils.rng"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if _in_rng_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield ctx.violation(
                            node,
                            self.id,
                            "import of stdlib `random` — use numpy "
                            "Generators threaded via repro.utils.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None and (
                    node.module.split(".")[0] == "random"
                ):
                    yield ctx.violation(
                        node,
                        self.id,
                        "import from stdlib `random` — use numpy "
                        "Generators threaded via repro.utils.rng",
                    )


@register_rule
class SeedParameterRequired(Rule):
    id = "R104"
    family = "rng"
    summary = "stochastic entry points must accept seed/rng"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.module.startswith("repro.core.solvers"):
            yield from self._check_solvers(ctx)
        if ctx.module.startswith("repro.datagen"):
            yield from self._check_datagen(ctx)

    def _check_solvers(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_solver_class(node):
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == "solve"
                    and not (_function_params(item) & _SEED_PARAM_NAMES)
                ):
                    yield ctx.violation(
                        item,
                        self.id,
                        f"{node.name}.solve takes no seed/rng parameter; "
                        "solvers must be deterministic given a seed",
                    )

    def _check_datagen(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ctx.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith("_"):
                continue
            if not _references_rng(node):
                continue
            if _function_params(node) & _SEED_PARAM_NAMES:
                continue
            yield ctx.violation(
                node,
                self.id,
                f"datagen entry point {node.name} uses randomness but "
                "accepts no seed/rng parameter",
            )


@register_rule
class NoLiteralSeed(Rule):
    id = "R105"
    family = "rng"
    summary = "literal seeds to as_rng/spawn_rngs freeze the stream"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if _in_rng_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] not in _RNG_COERCERS:
                continue
            seed_arg: ast.AST | None = None
            if node.args:
                seed_arg = node.args[0]
            else:
                for kw in node.keywords:
                    if kw.arg == "seed":
                        seed_arg = kw.value
            if (
                isinstance(seed_arg, ast.Constant)
                and isinstance(seed_arg.value, int)
                and not isinstance(seed_arg.value, bool)
            ):
                yield ctx.violation(
                    node,
                    self.id,
                    f"literal seed {seed_arg.value!r} passed to "
                    f"{name.split('.')[-1]} — accept a SeedLike "
                    "parameter so callers control the stream",
                )


def _is_solver_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1] == "Solver":
            return True
    return False


def _references_rng(node: ast.FunctionDef) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = dotted_name(child.func)
            if name is not None and name.split(".")[-1] in (
                _RNG_COERCERS | {"default_rng"}
            ):
                return True
    return False
