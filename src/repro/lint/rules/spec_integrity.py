"""R7 — config integrity: the spec schema and the code stay in sync.

The schema in :mod:`repro.spec.schema` claims to describe three pieces
of code it does not import: the ``Scenario`` dataclass, the ``simulate``
CLI surface, and the constraint catalogue.  Nothing at runtime forces
those claims to stay true — a new ``Scenario`` field, a new ``--flag``,
or a constraint referencing a renamed knob would silently open a gap
between what specs can express and what the code accepts.  These rules
close the loop statically, the same way R1–R6 police RNG discipline and
layering:

* **R701** — every ``Scenario`` dataclass field is either bound to a
  schema knob (``Knob.scenario_field``) or explicitly waived in
  ``UNSPECCED_SCENARIO_FIELDS`` with a reason;
* **R702** — every ``--flag`` of the ``simulate`` subcommand maps to a
  schema knob (``Knob.cli_flag``) or is a declared operational flag
  (``CLI_OPERATIONAL_FLAGS``);
* **R703** — every knob a :class:`repro.spec.constraints.Constraint`
  declares in its ``knobs=`` tuple exists in the schema (and the tuple
  is a literal, so this check cannot be defeated);
* **R704** — where a bound ``Scenario`` field has a literal default,
  it equals the schema's scenario-side default for that knob.

The rules anchor on configurable module paths (``spec_*_module`` in
:class:`repro.lint.config.LintConfig`) so fixtures can exercise them
under ``tmp_path``.  The schema itself is imported lazily at check
time — it is stdlib-only data, so this keeps the linter runnable over
arbitrary trees without the simulation stack.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)


def _scenario_class(ctx: FileContext) -> ast.ClassDef | None:
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "Scenario":
            return node
    return None


def _dataclass_fields(
    node: ast.ClassDef,
) -> Iterator[tuple[str, ast.AnnAssign]]:
    for item in node.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and not item.target.id.startswith("_")
        ):
            yield item.target.id, item


@register_rule
class ScenarioFieldsInSchema(Rule):
    id = "R701"
    family = "config-integrity"
    summary = "every Scenario field must be schema-covered (or waived)"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.module != ctx.config.spec_scenario_module:
            return
        node = _scenario_class(ctx)
        if node is None:
            return
        from repro.spec.schema import scenario_field_coverage

        covered = scenario_field_coverage()
        for name, item in _dataclass_fields(node):
            if name not in covered:
                yield ctx.violation(
                    item,
                    self.id,
                    f"Scenario field {name!r} is not bound to any spec "
                    "knob — declare a Knob with scenario_field="
                    f"{name!r} in repro.spec.schema, or waive it in "
                    "UNSPECCED_SCENARIO_FIELDS with a reason",
                )


def _simulate_parser_names(tree: ast.Module) -> set[str]:
    """Variables assigned from ``*.add_parser("simulate", ...)``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "add_parser"
            and value.args
            and isinstance(value.args[0], ast.Constant)
            and value.args[0].value == "simulate"
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


@register_rule
class SimulateFlagsInSchema(Rule):
    id = "R702"
    family = "config-integrity"
    summary = "every simulate --flag must map to a spec knob"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.module != ctx.config.spec_cli_module:
            return
        parsers = _simulate_parser_names(ctx.tree)
        if not parsers:
            return
        from repro.spec.schema import CLI_OPERATIONAL_FLAGS, cli_flag_map

        bound = set(cli_flag_map()) | set(CLI_OPERATIONAL_FLAGS)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in parsers
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and node.args[0].value.startswith("--")
            ):
                continue
            flag = node.args[0].value
            if flag not in bound:
                yield ctx.violation(
                    node,
                    self.id,
                    f"simulate flag {flag!r} has no spec-schema binding "
                    "— give its knob cli_flag="
                    f"{flag!r}, or list it in CLI_OPERATIONAL_FLAGS if "
                    "it configures the harness rather than the scenario",
                )


@register_rule
class ConstraintKnobsDeclared(Rule):
    id = "R703"
    family = "config-integrity"
    summary = "constraints may only reference declared knobs"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.module != ctx.config.spec_constraints_module:
            return
        from repro.spec.schema import KNOBS

        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and dotted_name(node.func) is not None
                and dotted_name(node.func).split(".")[-1] == "Constraint"
            ):
                continue
            knobs_kw = next(
                (kw for kw in node.keywords if kw.arg == "knobs"), None
            )
            if knobs_kw is None:
                yield ctx.violation(
                    node,
                    self.id,
                    "Constraint without a knobs= keyword — the knob "
                    "tuple must be spelled literally so it can be "
                    "checked against the schema",
                )
                continue
            value = knobs_kw.value
            if not (
                isinstance(value, ast.Tuple)
                and all(
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                    for element in value.elts
                )
            ):
                yield ctx.violation(
                    knobs_kw.value,
                    self.id,
                    "Constraint knobs= must be a literal tuple of knob "
                    "name strings (computed tuples defeat the static "
                    "schema check)",
                )
                continue
            for element in value.elts:
                if element.value not in KNOBS:  # type: ignore[union-attr]
                    yield ctx.violation(
                        element,
                        self.id,
                        f"constraint references undeclared knob "
                        f"{element.value!r}",  # type: ignore[union-attr]
                    )


@register_rule
class ScenarioDefaultsMatchSchema(Rule):
    id = "R704"
    family = "config-integrity"
    summary = "Scenario literal defaults must equal the schema's"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.module != ctx.config.spec_scenario_module:
            return
        node = _scenario_class(ctx)
        if node is None:
            return
        from repro.spec.schema import SAME_AS_DEFAULT, SCENARIO_KNOBS

        literal_defaults = {
            name: item
            for name, item in _dataclass_fields(node)
            if isinstance(item.value, ast.Constant)
        }
        for knob in SCENARIO_KNOBS:
            field = knob.scenario_field
            if field is None or field not in literal_defaults:
                continue
            expected = (
                knob.default
                if knob.scenario_default is SAME_AS_DEFAULT
                else knob.scenario_default
            )
            item = literal_defaults[field]
            actual = item.value.value  # type: ignore[union-attr]
            if actual != expected or type(actual) is not type(expected):
                yield ctx.violation(
                    item,
                    self.id,
                    f"Scenario.{field} defaults to {actual!r} but the "
                    f"schema ({knob.name}) says {expected!r} — change "
                    "one so specs and direct construction agree",
                )
