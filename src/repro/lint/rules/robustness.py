"""R5 — robustness hygiene.

Graceful degradation only works when failures are *routed*, not
swallowed: the simulation engine catches :class:`repro.errors.SolverError`
to degrade a round, the resilient executor catches everything to
convert crashes into recorded fallback attempts.  A stray
``except Exception`` anywhere else silently eats the very signals that
machinery depends on (and hides genuine programming errors with them).

**R501** forbids handlers for ``Exception`` / ``BaseException`` — bare
``except:`` included, also inside tuple handlers — in every ``repro``
module outside the sanctioned containment layer
(:mod:`repro.resilience`, configurable via
``LintConfig.broad_except_allowed``).  Catch the narrowest
:class:`~repro.errors.ReproError` subtype that names the failure you
can actually handle; genuinely deliberate broad handlers take the
``# lint: allow[R501]`` pragma so every exception stays greppable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_names(handler: ast.ExceptHandler) -> list[str]:
    """The over-broad exception names a handler catches.

    ``except:`` reports ``"(bare)"``; tuple handlers are unpacked so
    ``except (ValueError, Exception)`` is still caught.
    """
    if handler.type is None:
        return ["(bare)"]
    nodes = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    found = []
    for node in nodes:
        name = dotted_name(node)
        if name is not None and name.split(".")[-1] in _BROAD:
            found.append(name)
    return found


@register_rule
class NoBroadExcept(Rule):
    id = "R501"
    family = "robustness"
    summary = (
        "except Exception/BaseException swallows the failures the "
        "resilience layer routes; catch ReproError subtypes"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module = ctx.module
        if module != "repro" and not module.startswith("repro."):
            return
        for allowed in ctx.config.broad_except_allowed:
            if module == allowed or module.startswith(allowed + "."):
                return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for name in _broad_names(node):
                yield ctx.violation(
                    node,
                    self.id,
                    f"over-broad handler `except {name}` — catch a "
                    "concrete ReproError subtype, or route the failure "
                    "through repro.resilience (broad containment is "
                    "its job)",
                )
