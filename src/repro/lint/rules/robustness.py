"""R5 — robustness hygiene.

Graceful degradation only works when failures are *routed*, not
swallowed: the simulation engine catches :class:`repro.errors.SolverError`
to degrade a round, the resilient executor catches everything to
convert crashes into recorded fallback attempts.  A stray
``except Exception`` anywhere else silently eats the very signals that
machinery depends on (and hides genuine programming errors with them).

**R501** forbids handlers for ``Exception`` / ``BaseException`` — bare
``except:`` included, also inside tuple handlers — in every ``repro``
module outside the sanctioned containment layer
(:mod:`repro.resilience`, configurable via
``LintConfig.broad_except_allowed``).  Catch the narrowest
:class:`~repro.errors.ReproError` subtype that names the failure you
can actually handle; genuinely deliberate broad handlers take the
``# lint: allow[R501]`` pragma so every exception stays greppable.

**R503** guards the durability contract the checkpoint/resume
machinery rests on: in the modules that produce durable artifacts
(``LintConfig.durable_write_modules`` — saved markets, BENCH json,
registered traces, checkpoint records) a raw write-mode ``open`` or
``Path.write_text``/``write_bytes`` can be killed mid-write and leave
a truncated file that a later ``--resume`` or ``obs diff`` trusts.
Durable writes go through :mod:`repro.utils.atomic` (write a temp
file, fsync, rename); append-mode opens stay legal because appending
one index line *is* the atomic primitive for a log.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_names(handler: ast.ExceptHandler) -> list[str]:
    """The over-broad exception names a handler catches.

    ``except:`` reports ``"(bare)"``; tuple handlers are unpacked so
    ``except (ValueError, Exception)`` is still caught.
    """
    if handler.type is None:
        return ["(bare)"]
    nodes = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    found = []
    for node in nodes:
        name = dotted_name(node)
        if name is not None and name.split(".")[-1] in _BROAD:
            found.append(name)
    return found


@register_rule
class NoBroadExcept(Rule):
    id = "R501"
    family = "robustness"
    summary = (
        "except Exception/BaseException swallows the failures the "
        "resilience layer routes; catch ReproError subtypes"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module = ctx.module
        if module != "repro" and not module.startswith("repro."):
            return
        for allowed in ctx.config.broad_except_allowed:
            if module == allowed or module.startswith(allowed + "."):
                return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for name in _broad_names(node):
                yield ctx.violation(
                    node,
                    self.id,
                    f"over-broad handler `except {name}` — catch a "
                    "concrete ReproError subtype, or route the failure "
                    "through repro.resilience (broad containment is "
                    "its job)",
                )


def _open_write_mode(call: ast.Call) -> str | None:
    """The write-mode string of an ``open``-style call, if any.

    Covers ``open(path, "w")`` and ``path.open("wb")`` — mode as the
    second positional argument of the builtin, the first of the
    method, or the ``mode=`` keyword of either.  Append (``a``) and
    read modes return ``None``; so does a dynamic (non-literal) mode,
    which this rule cannot judge.
    """
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        positional_mode = 1
    elif isinstance(call.func, ast.Attribute) and call.func.attr == "open":
        positional_mode = 0
    else:
        return None
    mode: ast.AST | None = None
    if len(call.args) > positional_mode:
        mode = call.args[positional_mode]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if not isinstance(mode, ast.Constant) or not isinstance(
        mode.value, str
    ):
        return None
    if {"w", "x"} & set(mode.value):
        return mode.value
    return None


@register_rule
class AtomicDurableWrites(Rule):
    id = "R503"
    family = "robustness"
    summary = (
        "durable artifacts must be written atomically via "
        "repro.utils.atomic, not raw open(.., 'w')/write_text"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module = ctx.module
        policed = any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in ctx.config.durable_write_modules
        )
        if not policed:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("write_text", "write_bytes")
            ):
                yield ctx.violation(
                    node,
                    self.id,
                    f"`.{node.func.attr}(...)` in a durable-artifact "
                    "module is not crash-safe — use "
                    "repro.utils.atomic (write-then-rename) so a "
                    "killed process never leaves a truncated file",
                )
                continue
            mode = _open_write_mode(node)
            if mode is not None:
                yield ctx.violation(
                    node,
                    self.id,
                    f"write-mode `open(..., {mode!r})` in a "
                    "durable-artifact module is not crash-safe — use "
                    "repro.utils.atomic (write-then-rename); "
                    "append-mode logs are exempt",
                )
