"""Rule families for the repro linter.

Importing this package registers every rule with
:data:`repro.lint.base.RULE_REGISTRY`; the engine only ever talks to
the registry, so adding a family is one module plus one import here.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    layering,
    numeric,
    perf,
    rng,
    robustness,
    solver_contract,
    spec_integrity,
)
