"""Machine-readable and human-readable bench reports.

``python -m repro bench`` writes one ``BENCH_<tag>.json`` per run —
the machine-readable artifact CI uploads — and prints the text
rendering of the same payload.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.perf.baseline import Regression, baseline_time
from repro.perf.harness import BenchResult

BENCH_SCHEMA = "repro-perf-bench/1"


def bench_payload(
    results: list[BenchResult],
    regressions: list[Regression],
    baseline: dict | None,
    tag: str,
    threshold: float,
    quick: bool,
    scale: float,
    obs_report: dict | None = None,
) -> dict:
    """Assemble the full machine-readable report.

    ``obs_report`` is a :class:`repro.obs.RunReport` dict — the
    internal counters (bidding rounds, augmenting paths, …) collected
    while the suites ran — so the artifact explains *why* a wall time
    moved, not just that it did.
    """
    cases = []
    for result in results:
        base = baseline_time(baseline, result.name)
        cases.append(
            {
                "name": result.name,
                "suite": result.suite,
                "size": result.size,
                "solver": result.solver,
                "wall_time": result.wall_time,
                "reference_time": result.reference_time,
                "speedup": result.speedup,
                "checksum": result.checksum,
                "reference_checksum": result.reference_checksum,
                "objective_gap": result.objective_gap,
                "gap_tolerance": result.gap_tolerance,
                "checksums_match": result.checksums_match,
                "baseline_time": base,
                "vs_baseline": (
                    base / result.wall_time
                    if base is not None and result.wall_time > 0
                    else None
                ),
            }
        )
    mismatches = [r.name for r in results if not r.checksums_match]
    return {
        "schema": BENCH_SCHEMA,
        "tag": tag,
        "quick": quick,
        "scale": scale,
        "threshold": threshold,
        "baseline_tag": baseline.get("tag") if baseline else None,
        "machine": platform.machine(),
        "python": platform.python_version(),
        "results": cases,
        "obs": obs_report,
        "regressions": [
            {
                "name": regression.name,
                "wall_time": regression.wall_time,
                "baseline_time": regression.baseline_time,
                "ratio": regression.ratio,
            }
            for regression in regressions
        ],
        "checksum_mismatches": mismatches,
        "ok": not regressions and not mismatches,
    }


def write_bench_json(payload: dict, directory: str | Path = ".") -> Path:
    """Write ``BENCH_<tag>.json`` into ``directory``; returns the path.

    Written atomically: a bench run killed mid-write leaves either no
    artifact or a complete one, never a torn JSON that poisons a later
    ``--baseline`` comparison.
    """
    from repro.io import atomic_write_json

    path = Path(directory) / f"BENCH_{payload['tag']}.json"
    return atomic_write_json(path, payload)


def _fmt_secs(value: float | None) -> str:
    return f"{value:8.4f}" if value is not None else "       -"


def _fmt_ratio(value: float | None) -> str:
    return f"{value:7.2f}x" if value is not None else "       -"


def render_text(payload: dict) -> str:
    """Human rendering of a bench payload."""
    lines = [
        f"bench tag={payload['tag']} "
        f"quick={payload['quick']} scale={payload['scale']} "
        f"threshold={payload['threshold']:.0%}",
        f"{'case':<30s} {'wall(s)':>8s} {'ref(s)':>8s} {'speedup':>8s} "
        f"{'vs_base':>8s} {'ok':>3s}",
    ]
    for case in payload["results"]:
        ok = "ok" if case["checksums_match"] else "XX"
        lines.append(
            f"{case['name']:<30s} {case['wall_time']:8.4f} "
            f"{_fmt_secs(case['reference_time'])} "
            f"{_fmt_ratio(case['speedup'])} "
            f"{_fmt_ratio(case['vs_baseline'])} {ok:>3s}"
        )
    if payload["checksum_mismatches"]:
        lines.append(
            "CROSS-VALIDATION FAILED: "
            + ", ".join(payload["checksum_mismatches"])
        )
    if payload["regressions"]:
        lines.append("regressions (wall time vs committed baseline):")
        for regression in payload["regressions"]:
            lines.append(
                f"  {regression['name']}: {regression['wall_time']:.4f}s vs "
                f"baseline {regression['baseline_time']:.4f}s "
                f"({regression['ratio']:.2f}x, allowed "
                f"{1 + payload['threshold']:.2f}x)"
            )
    elif payload["baseline_tag"] is None:
        lines.append(
            "no baseline found — run with --update-baseline to create one"
        )
    else:
        lines.append("no regressions vs baseline "
                     f"'{payload['baseline_tag']}'")
    return "\n".join(lines)
