"""Benchmark cases and suites for the performance harness.

Three suites mirror the paper's scalability experiments plus a
micro-level tier:

* ``f7_scale_workers`` — |W| grows with |T| fixed (Figure 7 shape):
  the Hungarian solve on market-derived benefit matrices, vectorized
  against :func:`repro.matching.reference.hungarian_reference`, and
  the end-to-end flow-solver pipeline.
* ``f8_scale_tasks`` — |T| grows (Figure 8 shape): the auction solve
  in batched Jacobi mode against the sequential Gauss-Seidel mode on
  *specialist* square instances (each bidder strongly prefers its own
  object — the low-contention regime Jacobi targets; see
  ``docs/performance.md``), and the end-to-end greedy pipeline.
* ``micro`` — hot-path microbenchmarks: batched
  :func:`repro.crowd.answer_model.simulate_answers` against its
  scalar reference, and :meth:`BenefitMatrices.side_totals` against a
  Python-loop equivalent.
* ``shard`` — the large-market suite (n=10k workers at the full
  tier): the sharded solver against a cold full-matrix
  ``pruned-greedy`` solve, and multi-round warm-started solving
  against cold per-round re-solving.  The cold side runs on
  :class:`_UncachedProblemView` so every round re-pays the pruning
  pass, exactly as the simulation engine does when it rebuilds the
  planning problem each round.
* ``stream`` — the streaming dispatch service under a Poisson storm
  (|W| = |T| = 10^5 at the full tier): arrival-instant greedy
  dispatch at full scale, and warm-started micro-batch re-solving at
  a tenth of it.  The case checksum is the realized combined benefit;
  throughput (``stream.assignments_per_sec``) and the
  time-to-assignment percentile gauges land in the bench trace, so
  the BENCH json carries latency percentiles alongside wall time.
* ``obs`` — the telemetry-overhead guard: the same seeded dispatch
  storm drained with live telemetry on vs off, gap-gated so the
  overhead ratio stays under 5% (see ``_obs_overhead_case``).

Every case that has a reference implementation also records both
checksums, so a bench run doubles as a cross-validation pass: a
result whose checksums disagree fails the run regardless of timing.
Approximate cases (the sharded solver trades a bounded objective gap
for speed) instead record an ``objective_gap`` against the reference
objective and are validated against a ``gap_tolerance``.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.benefit.matrices import build_benefit_matrices
from repro.obs.diff import (
    DEFAULT_DIFF_THRESHOLD,
    DEFAULT_NOISE_FLOOR,
    TraceDiff,
    diff_traces,
)
from repro.obs.registry import (
    DEFAULT_REGISTRY_ROOT,
    RunEntry,
    RunRegistry,
    current_git_rev,
)
from repro.benefit.mutual import LinearCombiner
from repro.core.problem import MBAProblem
from repro.core.solvers import get_solver
from repro.core.solvers.pruned import top_k_edge_mask
from repro.crowd.answer_model import simulate_answers, simulate_answers_reference
from repro.datagen.synthetic import SyntheticConfig, generate_market
from repro.errors import ValidationError
from repro.matching.auction import auction_assignment
from repro.matching.hungarian import hungarian
from repro.matching.reference import hungarian_reference
from repro.utils.rng import as_rng

SUITES = (
    "f7_scale_workers",
    "f8_scale_tasks",
    "micro",
    "shard",
    "stream",
    "obs",
)

_FULL_SIZES = (200, 400, 800)
_QUICK_SIZES = (60, 120)

_CHECKSUM_RTOL = 1e-6

#: Shard-suite instance shapes: (n_workers, n_tasks).  The full tier
#: is the paper-scale target the ISSUE names (n=10k); the quick tier
#: keeps the same worker:task ratio at CI-smoke cost.
_SHARD_FULL_SHAPE = (10_000, 2_000)
_SHARD_QUICK_SHAPE = (1_500, 300)
_SHARD_CATEGORIES = 16
_SHARD_COUNT = 8
#: Sharded solving is gap-gated, not checksum-gated: its objective may
#: legitimately differ from the cold full-matrix solve, but must not
#: fall short by more than this fraction.
_SHARD_GAP_TOLERANCE = 0.05
#: Rounds per warm-start case — matches the simulation scenario
#: default (``Scenario.n_rounds``), so the case measures exactly the
#: round structure the engine drives.
_WARM_ROUNDS = 10

#: Stream-suite population sizes (|W| = |T|).  The full tier is the
#: ISSUE's Poisson-storm target (10^5 on each side); the quick tier
#: keeps CI-smoke cost.  Arrival rates scale with the population so
#: the simulated span stays ~constant and the *active* sets (open
#: tasks ~ task_rate x deadline, online workers ~ worker_rate x
#: session_length) are what grows — the quantity streaming dispatch
#: must stay robust to.
_STREAM_FULL_SIZE = 100_000
_STREAM_QUICK_SIZE = 2_000
#: Simulated span (time units) the arrival rates are derived from.
_STREAM_SPAN = 250.0


@dataclass(frozen=True)
class Measurement:
    """Raw numbers one case runner produced.

    ``objective_gap``/``gap_tolerance`` are set only by approximate
    cases (the shard suite): the gap is the achieved objective's
    relative shortfall against the reference solve, and the case
    passes cross-validation when the gap stays within tolerance.
    """

    wall_time: float
    reference_time: float | None
    checksum: float
    reference_checksum: float | None
    objective_gap: float | None = None
    gap_tolerance: float | None = None


@dataclass(frozen=True)
class BenchCase:
    """One named benchmark: a runner plus its identifying metadata."""

    name: str
    suite: str
    size: int
    solver: str
    runner: Callable[[int], Measurement]


@dataclass(frozen=True)
class BenchResult:
    """A finished case: metadata plus the measurement."""

    name: str
    suite: str
    size: int
    solver: str
    wall_time: float
    reference_time: float | None
    checksum: float
    reference_checksum: float | None
    objective_gap: float | None = None
    gap_tolerance: float | None = None

    @property
    def speedup(self) -> float | None:
        """Reference wall time over vectorized wall time (None when
        the case has no reference implementation)."""
        if self.reference_time is None or self.wall_time <= 0:
            return None
        return self.reference_time / self.wall_time

    @property
    def checksums_match(self) -> bool:
        """Cross-validation verdict; vacuously true without a
        reference.

        Gap-gated cases (``gap_tolerance`` set) pass when the recorded
        objective shortfall stays within tolerance — their checksums
        are expected to differ because the solver under test is a
        documented approximation of the reference.
        """
        if self.gap_tolerance is not None:
            return (
                self.objective_gap is not None
                and 0.0 <= self.objective_gap <= self.gap_tolerance
            )
        if self.reference_checksum is None:
            return True
        scale = max(abs(self.checksum), abs(self.reference_checksum), 1.0)
        return (
            abs(self.checksum - self.reference_checksum)
            <= _CHECKSUM_RTOL * scale
        )


def _best_of(fn: Callable[[], float], repeats: int) -> tuple[float, float]:
    """(best wall time, last return value) over ``repeats`` runs.

    Best-of-N is the standard defence against scheduler noise for
    sub-second kernels; the return value is deterministic across
    repeats so keeping the last one is safe.
    """
    best = float("inf")
    value = 0.0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def specialist_weights(n: int, seed: int) -> np.ndarray:
    """A low-contention square benefit matrix.

    Background benefits are crushed towards zero (``u**8``) and each
    bidder gets one strongly dominant object on the diagonal, so
    bidders mostly want *different* objects — the regime where
    Jacobi's one-bid-per-person-per-round batching pays off.  Market
    matrices from the paper's generator are near rank-1 (log-normal
    payments dominate) and heavily contended; Gauss-Seidel stays the
    better mode there, which is why it stays the default.
    """
    rng = as_rng(seed)
    base = rng.random((n, n)) ** 8 * 0.3
    return base + np.eye(n) * rng.uniform(1.0, 2.0, n)


def _market_cost(n_workers: int, n_tasks: int, seed: int) -> np.ndarray:
    """Maximization market benefit as a Hungarian min-cost matrix with
    rows <= columns."""
    market = generate_market(
        SyntheticConfig(n_workers=n_workers, n_tasks=n_tasks), seed=seed
    )
    combined = build_benefit_matrices(market, LinearCombiner(0.5)).combined
    cost = -combined
    if cost.shape[0] > cost.shape[1]:
        cost = cost.T
    return cost


def _hungarian_case(size: int, n_tasks: int, suite: str) -> BenchCase:
    def runner(repeats: int) -> Measurement:
        cost = _market_cost(size, n_tasks, seed=size)
        wall, total = _best_of(lambda: hungarian(cost)[1], repeats)
        ref_wall, ref_total = _best_of(
            lambda: hungarian_reference(cost)[1], 1
        )
        return Measurement(wall, ref_wall, total, ref_total)

    return BenchCase(
        name=f"hungarian/n={size}",
        suite=suite,
        size=size,
        solver="hungarian",
        runner=runner,
    )


def _auction_case(size: int, suite: str) -> BenchCase:
    def runner(repeats: int) -> Measurement:
        weights = specialist_weights(size, seed=size)
        wall, total = _best_of(
            lambda: auction_assignment(weights, mode="jacobi")[1], repeats
        )
        ref_wall, ref_total = _best_of(
            lambda: auction_assignment(weights, mode="gauss-seidel")[1],
            repeats,
        )
        return Measurement(wall, ref_wall, total, ref_total)

    return BenchCase(
        name=f"auction/n={size}",
        suite=suite,
        size=size,
        solver="auction",
        runner=runner,
    )


def _pipeline_case(
    solver_name: str, n_workers: int, n_tasks: int, size: int, suite: str
) -> BenchCase:
    def runner(repeats: int) -> Measurement:
        market = generate_market(
            SyntheticConfig(n_workers=n_workers, n_tasks=n_tasks), seed=size
        )
        problem = MBAProblem(market, combiner=LinearCombiner(0.5))
        solver = get_solver(solver_name)
        # End-to-end pipeline timings are seconds-long and far less
        # noise-prone than the kernels, so one run is enough.
        wall, total = _best_of(
            lambda: solver.solve(problem, seed=0).combined_total(), 1
        )
        return Measurement(wall, None, total, None)

    return BenchCase(
        name=f"{solver_name}/n={size}",
        suite=suite,
        size=size,
        solver=solver_name,
        runner=runner,
    )


def _answers_case(n_workers: int, n_tasks: int) -> BenchCase:
    n_edges = n_workers * n_tasks

    def runner(repeats: int) -> Measurement:
        market = generate_market(
            SyntheticConfig(n_workers=n_workers, n_tasks=n_tasks), seed=7
        )
        edges = [
            (w, t) for w in range(n_workers) for t in range(n_tasks)
        ]

        def checksum(simulate: Callable) -> float:
            result = simulate(market, edges, seed=123)
            return float(
                sum(result.truths.values())
                + sum(
                    sum(by_worker.values())
                    for by_worker in result.answers.values()
                )
            )

        wall, total = _best_of(lambda: checksum(simulate_answers), repeats)
        ref_wall, ref_total = _best_of(
            lambda: checksum(simulate_answers_reference), 1
        )
        return Measurement(wall, ref_wall, total, ref_total)

    return BenchCase(
        name=f"simulate_answers/edges={n_edges}",
        suite="micro",
        size=n_edges,
        solver="simulate_answers",
        runner=runner,
    )


def _side_totals_case(
    n_edges: int, iterations: int, seed: int = 5
) -> BenchCase:
    def runner(repeats: int) -> Measurement:
        market = generate_market(
            SyntheticConfig(n_workers=200, n_tasks=150), seed=11
        )
        matrices = build_benefit_matrices(market, LinearCombiner(0.5))
        rng = as_rng(seed)
        edges = list(
            zip(
                rng.integers(0, 200, n_edges).tolist(),
                rng.integers(0, 150, n_edges).tolist(),
            )
        )

        def vectorized() -> float:
            req = wrk = 0.0
            for _ in range(iterations):
                req, wrk = matrices.side_totals(edges)
            return req + wrk

        def scalar() -> float:
            req = wrk = 0.0
            for _ in range(iterations):
                req = sum(matrices.requester[w, t] for w, t in edges)  # lint: allow[R601] — the scalar oracle is the point
                wrk = sum(matrices.worker[w, t] for w, t in edges)  # lint: allow[R601] — the scalar oracle is the point
            return float(req + wrk)

        wall, total = _best_of(vectorized, repeats)
        ref_wall, ref_total = _best_of(scalar, 1)
        return Measurement(wall, ref_wall, total, ref_total)

    return BenchCase(
        name=f"side_totals/edges={n_edges}",
        suite="micro",
        size=n_edges,
        solver="side_totals",
        runner=runner,
    )


class _UncachedProblemView:
    """A read-only stand-in for a *fresh* per-round problem.

    The simulation engine rebuilds the planning problem every round,
    so a cold solver re-pays the full-matrix pruning pass each time.
    Rebuilding a real :class:`MBAProblem` at n=10k costs far more in
    benefit-matrix construction than the solve being measured, so the
    cold reference instead solves through this view: it delegates
    everything to the underlying problem except the memoized
    ``top_k_candidates`` cache, forcing each reference round to
    recompute its candidate mask — the per-round cost warm-started
    solving exists to avoid.
    """

    def __init__(self, problem: MBAProblem) -> None:
        self._problem = problem

    def __getattr__(self, name: str):
        if name == "top_k_candidates":
            raise AttributeError(name)
        return getattr(self._problem, name)


def _shard_problem(n_workers: int, n_tasks: int, seed: int) -> MBAProblem:
    market = generate_market(
        SyntheticConfig(
            n_workers=n_workers,
            n_tasks=n_tasks,
            n_categories=_SHARD_CATEGORIES,
        ),
        seed=seed,
    )
    problem = MBAProblem(market, combiner=LinearCombiner(0.5))
    # Fault the benefit matrices and the allocator's large-block
    # arenas in before timing starts: at n=10k the *first* full-matrix
    # argpartition in a process pays several times its steady-state
    # cost in page faults, and that penalty would land on whichever
    # side happens to run first.  The throwaway mask (k=2 is never a
    # real case k, so no solver-visible cache is seeded) makes both
    # sides measure steady state.
    top_k_edge_mask(problem.benefits.combined, 2)
    return problem


def _shortfall(achieved: float, reference: float) -> float:
    """Relative objective shortfall of ``achieved`` vs ``reference``
    (0 when the solver under test matches or beats the reference)."""
    scale = max(abs(reference), 1.0)
    return max(0.0, (reference - achieved) / scale)


def _sharded_case(n_workers: int, n_tasks: int) -> BenchCase:
    def runner(repeats: int) -> Measurement:
        problem = _shard_problem(n_workers, n_tasks, seed=n_workers)
        sharded = get_solver(
            "sharded",
            base="pruned-greedy",
            strategy="balanced",
            n_shards=_SHARD_COUNT,
        )
        cold = get_solver("pruned-greedy")
        cold_view = _UncachedProblemView(problem)
        # Seconds-long solves; one run each, on caches of equal
        # temperature (the sharded side computes its boundary mask,
        # the cold side its pruning mask).
        wall, total = _best_of(
            lambda: sharded.solve(problem, seed=0).combined_total(), 1
        )
        ref_wall, ref_total = _best_of(
            lambda: cold.solve(cold_view, seed=0).combined_total(), 1
        )
        return Measurement(
            wall,
            ref_wall,
            total,
            ref_total,
            objective_gap=_shortfall(total, ref_total),
            gap_tolerance=_SHARD_GAP_TOLERANCE,
        )

    return BenchCase(
        name=f"sharded/n={n_workers}",
        suite="shard",
        size=n_workers,
        solver="sharded",
        runner=runner,
    )


def _warm_rounds_case(
    n_workers: int,
    n_tasks: int,
    warm_base: str,
    warm_base_kwargs: dict | None,
    name: str,
    solver: str,
    gap_tolerance: float | None,
) -> BenchCase:
    """Warm-started multi-round solving vs cold per-round re-solving.

    The warm side constructs one fresh ``warm`` solver and solves the
    same problem ``_WARM_ROUNDS`` times — round one pays the real
    solve, later rounds hit the fingerprint replay path.  The cold
    side re-solves through :class:`_UncachedProblemView` each round.
    When ``gap_tolerance`` is ``None`` the case demands bit-identical
    checksums, pinning replay fidelity end-to-end.
    """

    def runner(repeats: int) -> Measurement:
        problem = _shard_problem(n_workers, n_tasks, seed=n_workers)
        cold_view = _UncachedProblemView(problem)

        def warm_rounds() -> float:
            solver_obj = get_solver(
                "warm", base=warm_base, base_kwargs=warm_base_kwargs
            )
            return sum(
                solver_obj.solve(problem, seed=0).combined_total()
                for _ in range(_WARM_ROUNDS)
            )

        def cold_rounds() -> float:
            cold = get_solver("pruned-greedy")
            return sum(
                cold.solve(cold_view, seed=0).combined_total()
                for _ in range(_WARM_ROUNDS)
            )

        wall, total = _best_of(warm_rounds, 1)
        ref_wall, ref_total = _best_of(cold_rounds, 1)
        gap = (
            _shortfall(total, ref_total)
            if gap_tolerance is not None
            else None
        )
        return Measurement(
            wall,
            ref_wall,
            total,
            ref_total,
            objective_gap=gap,
            gap_tolerance=gap_tolerance,
        )

    return BenchCase(
        name=f"{name}/n={n_workers}",
        suite="shard",
        size=n_workers,
        solver=solver,
        runner=runner,
    )


def build_shard_suite(quick: bool = False, scale: float = 1.0) -> list[BenchCase]:
    """The large-market suite: sharded and warm-started solving."""
    base_workers, base_tasks = (
        _SHARD_QUICK_SHAPE if quick else _SHARD_FULL_SHAPE
    )
    n_workers = max(10, int(round(base_workers * scale)))
    n_tasks = max(10, int(round(base_tasks * scale)))
    return [
        _sharded_case(n_workers, n_tasks),
        _warm_rounds_case(
            n_workers,
            n_tasks,
            warm_base="sharded",
            warm_base_kwargs={
                "base": "pruned-greedy",
                "strategy": "balanced",
                "n_shards": _SHARD_COUNT,
            },
            name="sharded_warm",
            solver="warm",
            gap_tolerance=_SHARD_GAP_TOLERANCE,
        ),
        _warm_rounds_case(
            n_workers,
            n_tasks,
            warm_base="pruned-greedy",
            warm_base_kwargs=None,
            name="warm_replay",
            solver="warm",
            gap_tolerance=None,
        ),
    ]


def _stream_case(
    policy: str, size: int, batch_window: float | None = None
) -> BenchCase:
    """One streaming-dispatch storm: |W| = |T| = ``size``.

    Market construction happens outside the timed region; the
    measured wall time is one full drain of the dispatch loop.  The
    dispatcher's own obs gauges (``stream.assignments_per_sec``,
    ``stream.latency.p50/p95/p99``) are emitted inside the enclosing
    ``bench.case`` span, so the bench trace carries throughput and
    latency percentiles for every stream case.
    """

    def runner(repeats: int) -> Measurement:
        from repro.stream import DispatchConfig, StreamDispatcher

        rate = max(8.0, size / _STREAM_SPAN)
        market = generate_market(
            SyntheticConfig(n_workers=size, n_tasks=size), seed=17
        )
        kwargs = dict(
            policy=policy,
            task_rate=rate,
            worker_rate=rate,
            deadline=1.5,
            session_length=1.0,
        )
        if batch_window is not None:
            kwargs["batch_window"] = batch_window

        def run_once() -> float:
            dispatcher = StreamDispatcher(market, DispatchConfig(**kwargs))
            return dispatcher.run(seed=0).combined_benefit

        # A storm drain is seconds-long end to end; one run suffices.
        wall, total = _best_of(run_once, 1)
        return Measurement(wall, None, total, None)

    return BenchCase(
        name=f"stream_{policy.replace('-', '_')}/n={size}",
        suite="stream",
        size=size,
        solver=f"stream:{policy}",
        runner=runner,
    )


def build_stream_suite(
    quick: bool = False, scale: float = 1.0
) -> list[BenchCase]:
    """The streaming-dispatch suite: greedy storm + micro-batch."""
    base = _STREAM_QUICK_SIZE if quick else _STREAM_FULL_SIZE
    size = max(100, int(round(base * scale)))
    # Micro-batch re-solves windows with a real solver; a tenth of the
    # storm population keeps the per-window submarkets representative
    # without turning the suite into a solver benchmark.
    micro_size = max(100, size // 10)
    return [
        _stream_case("greedy", size),
        _stream_case("micro-batch", micro_size, batch_window=5.0),
    ]


#: Telemetry-overhead population size (|W| = |T|).  Quick-suite sized
#: on both tiers: the case measures a *ratio*, which is scale-free.
_OBS_OVERHEAD_SIZE = 1_200
#: Seconds of simulated arrivals the overhead storm is squeezed into.
#: Dense on purpose: a storm-rate window carries enough dispatch work
#: (greedy scoring over a large online pool) for the per-window flush
#: to amortize the way it does in monitored production runs.
_OBS_OVERHEAD_SPAN = 7.5
#: The regression-gated bound: telemetry-on dispatch wall time may
#: exceed telemetry-off by at most this fraction.
_OBS_OVERHEAD_TOLERANCE = 0.05


def _obs_overhead_case(size: int) -> BenchCase:
    """Dispatcher throughput with live telemetry on vs off.

    The same seeded greedy storm is drained twice: once under an
    enabled tracer (so the dispatcher's ``_Telemetry`` scrape — window
    flushes, per-window Gini, wait samples — is live) and once with
    tracing disabled (the production fast path: one ``is None`` test
    per event).  The measurement rides the harness's gap gate:
    ``objective_gap`` is the relative wall-time overhead and the case
    fails when it exceeds ``_OBS_OVERHEAD_TOLERANCE`` (5%).  The two
    drains must also realize the identical combined benefit —
    telemetry that perturbs dispatch decisions is a bug the checksums
    would surface.
    """

    def runner(repeats: int) -> Measurement:
        from repro.stream import DispatchConfig, StreamDispatcher

        rate = max(8.0, size / _OBS_OVERHEAD_SPAN)
        market = generate_market(
            SyntheticConfig(n_workers=size, n_tasks=size), seed=23
        )
        config = DispatchConfig(
            policy="greedy",
            task_rate=rate,
            worker_rate=rate,
            deadline=1.5,
            session_length=1.0,
        )

        def run_off() -> float:
            # The bench harness traces the whole run; drop to the
            # telemetry-off fast path for the baseline drain only.
            previous = obs.disable()
            try:
                dispatcher = StreamDispatcher(market, config)
                return dispatcher.run(seed=0).combined_benefit
            finally:
                if previous is not None:
                    obs.enable(previous)

        def run_on() -> float:
            with obs.tracing(obs.Tracer()):
                dispatcher = StreamDispatcher(market, config)
                return dispatcher.run(seed=0).combined_benefit

        # Interleave-free best-of on each side; the off side warms
        # every cache first so the on side never pays first-touch
        # costs the off side skipped.
        ref_wall, ref_total = _best_of(run_off, repeats)
        wall, total = _best_of(run_on, repeats)
        overhead = max(0.0, (wall - ref_wall) / max(ref_wall, 1e-9))
        scale_ = max(abs(total), abs(ref_total), 1.0)
        if abs(total - ref_total) > _CHECKSUM_RTOL * scale_:
            # Telemetry perturbed dispatch decisions — fail the gap
            # gate outright, whatever the timing said.
            overhead = float("inf")
        return Measurement(
            wall,
            ref_wall,
            total,
            ref_total,
            objective_gap=overhead,
            gap_tolerance=_OBS_OVERHEAD_TOLERANCE,
        )

    return BenchCase(
        name=f"obs_overhead/n={size}",
        suite="obs",
        size=size,
        solver="stream:greedy",
        runner=runner,
    )


def build_obs_suite(
    quick: bool = False, scale: float = 1.0
) -> list[BenchCase]:
    """The telemetry-overhead suite (quick-sized on every tier)."""
    size = max(100, int(round(_OBS_OVERHEAD_SIZE * scale)))
    return [_obs_overhead_case(size)]


def build_suites(
    quick: bool = False, scale: float = 1.0
) -> dict[str, list[BenchCase]]:
    """All benchmark cases, grouped by suite name.

    ``quick`` swaps in small instances (a CI smoke pass, seconds not
    minutes); ``scale`` multiplies every instance size (minimum 10).
    """
    if scale <= 0:
        raise ValidationError(f"scale must be positive, got {scale}")
    sizes = [
        max(10, int(round(s * scale)))
        for s in (_QUICK_SIZES if quick else _FULL_SIZES)
    ]
    largest = max(sizes)
    # The flow pipeline is O(n) augmentations over an O(n·m)-edge
    # residual graph — minutes at kernel sizes — so it scales on a
    # quarter-size ladder that keeps the whole suite under a minute.
    flow_sizes = [max(10, size // 4) for size in sizes]
    edge_count = 2_500 if quick else 50_000
    f7 = [_hungarian_case(size, largest, "f7_scale_workers") for size in sizes]
    f7 += [
        _pipeline_case("flow", size, max(flow_sizes), size, "f7_scale_workers")
        for size in flow_sizes
    ]
    f8 = [_auction_case(size, "f8_scale_tasks") for size in sizes]
    f8 += [
        _pipeline_case("greedy", sizes[0], size, size, "f8_scale_tasks")
        for size in sizes
    ]
    micro = [
        _answers_case(50 if quick else 250, edge_count // (50 if quick else 250)),
        _side_totals_case(500 if quick else 5_000, 5 if quick else 20),
    ]
    return {
        "f7_scale_workers": f7,
        "f8_scale_tasks": f8,
        "micro": micro,
        "shard": build_shard_suite(quick, scale),
        "stream": build_stream_suite(quick, scale),
        "obs": build_obs_suite(quick, scale),
    }


def register_and_diff(
    tracer,
    tag: str,
    registry_root: str | None = None,
    threshold: float = DEFAULT_DIFF_THRESHOLD,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
) -> tuple[RunEntry, TraceDiff | None]:
    """Archive a bench run's trace and span-diff it against the last
    registered run of the same tag.

    The committed wall-time baseline (:mod:`repro.perf.baseline`)
    gates one number per case; this diff localizes *which stage* moved
    — per-span self time plus the deterministic work counters — by
    comparing against run history in the trace registry.  Returns
    ``(entry, diff)``; ``diff`` is ``None`` on a tag's first run, or
    when the new trace is byte-identical to the previous one.
    """
    registry = RunRegistry(
        registry_root if registry_root is not None else DEFAULT_REGISTRY_ROOT
    )
    previous = registry.latest(tag=tag)
    entry = registry.register_tracer(
        tracer, tag=tag, git_rev=current_git_rev()
    )
    if previous is None or previous.run_id == entry.run_id:
        return entry, None
    diff = diff_traces(
        registry.read(previous),
        registry.read(entry),
        threshold=threshold,
        noise_floor=noise_floor,
        label_a=f"{previous.tag}@{previous.run_id}",
        label_b=f"{entry.tag}@{entry.run_id}",
    )
    return entry, diff


def run_cases(
    suites: dict[str, list[BenchCase]],
    only: Sequence[str] | None = None,
    repeats: int = 3,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run (a selection of) suites and collect results in order."""
    if only is not None:
        unknown = sorted(set(only) - set(suites))
        if unknown:
            raise ValidationError(
                f"unknown suite(s): {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(suites))}"
            )
    results: list[BenchResult] = []
    for suite_name, cases in suites.items():
        if only is not None and suite_name not in only:
            continue
        for case in cases:
            if progress is not None:
                progress(f"{case.suite}: {case.name}")
            with obs.span(
                "bench.case",
                name=case.name,
                suite=case.suite,
                solver=case.solver,
            ):
                measurement = case.runner(repeats)
            obs.count("bench.cases")
            results.append(
                BenchResult(
                    name=case.name,
                    suite=case.suite,
                    size=case.size,
                    solver=case.solver,
                    wall_time=measurement.wall_time,
                    reference_time=measurement.reference_time,
                    checksum=measurement.checksum,
                    reference_checksum=measurement.reference_checksum,
                    objective_gap=measurement.objective_gap,
                    gap_tolerance=measurement.gap_tolerance,
                )
            )
    return results
