"""Benchmark-regression harness: ``python -m repro bench``.

Measures the vectorized hot paths (Hungarian, auction, answer
simulation, objective evaluation) against their scalar references and
against a committed wall-time baseline, emitting a machine-readable
``BENCH_<tag>.json``.  See ``docs/performance.md`` for how to run the
suites and when to refresh the baseline.
"""

from repro.perf.baseline import (
    DEFAULT_THRESHOLD,
    Regression,
    find_regressions,
    load_baseline,
    save_baseline,
)
from repro.perf.harness import (
    SUITES,
    BenchCase,
    BenchResult,
    build_suites,
    register_and_diff,
    run_cases,
)
from repro.perf.report import bench_payload, render_text, write_bench_json

__all__ = [
    "DEFAULT_THRESHOLD",
    "SUITES",
    "BenchCase",
    "BenchResult",
    "Regression",
    "bench_payload",
    "build_suites",
    "find_regressions",
    "load_baseline",
    "register_and_diff",
    "render_text",
    "run_cases",
    "save_baseline",
    "write_bench_json",
]
