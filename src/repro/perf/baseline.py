"""Committed wall-time baselines and regression detection.

The baseline file (``benchmarks/perf_baseline.json`` by convention,
refreshed with ``python -m repro bench --update-baseline``) records
the wall time of every case on the machine that committed it.  A
bench run compares each case against its baseline entry and flags a
*regression* when the measured time exceeds the baseline by more than
the configured threshold.  The default threshold is deliberately
loose (50%) because CI machines differ from the baseline machine —
the check exists to catch algorithmic blowups, not percent-level
drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ValidationError
from repro.perf.harness import BenchResult

BASELINE_SCHEMA = "repro-perf-baseline/1"
DEFAULT_THRESHOLD = 0.5


@dataclass(frozen=True)
class Regression:
    """One case whose wall time blew past its baseline allowance."""

    name: str
    wall_time: float
    baseline_time: float
    ratio: float
    threshold: float


def save_baseline(
    results: list[BenchResult], path: str | Path, tag: str
) -> dict:
    """Write the results into the baseline file; returns the payload.

    Merges with an existing baseline: cases measured this run are
    overwritten, others are kept.  That lets quick (CI-sized) and full
    suite runs contribute entries to the same committed file — their
    case names differ by instance size, so both tiers stay pinned.
    """
    existing = load_baseline(path)
    cases = dict(existing["cases"]) if existing else {}
    cases.update(
        {
            result.name: {
                "suite": result.suite,
                "size": result.size,
                "solver": result.solver,
                "wall_time": result.wall_time,
            }
            for result in results
        }
    )
    payload = {
        "schema": BASELINE_SCHEMA,
        "tag": tag,
        "cases": cases,
    }
    from repro.io import atomic_write_json

    atomic_write_json(Path(path), payload, sort_keys=True)
    return payload


def load_baseline(path: str | Path) -> dict | None:
    """Parse a baseline file; ``None`` when the file does not exist."""
    path = Path(path)
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValidationError(
            f"{path} is not a perf baseline "
            f"(schema {payload.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA!r})"
        )
    return payload


def baseline_time(baseline: dict | None, name: str) -> float | None:
    """Baseline wall time for one case, if recorded."""
    if baseline is None:
        return None
    entry = baseline.get("cases", {}).get(name)
    if entry is None:
        return None
    return float(entry["wall_time"])


def find_regressions(
    results: list[BenchResult],
    baseline: dict | None,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Regression]:
    """Cases slower than ``baseline * (1 + threshold)``.

    Cases missing from the baseline (new benchmarks) are never
    regressions — they get an entry on the next baseline refresh.
    """
    if threshold < 0:
        raise ValidationError(f"threshold must be >= 0, got {threshold}")
    regressions = []
    for result in results:
        allowed = baseline_time(baseline, result.name)
        if allowed is None or allowed <= 0:
            continue
        if result.wall_time > allowed * (1.0 + threshold):
            regressions.append(
                Regression(
                    name=result.name,
                    wall_time=result.wall_time,
                    baseline_time=allowed,
                    ratio=result.wall_time / allowed,
                    threshold=threshold,
                )
            )
    return regressions
