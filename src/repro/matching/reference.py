"""Pure-Python reference implementations of the vectorized solvers.

The hot-path modules (:mod:`repro.matching.hungarian`, the Jacobi mode
of :mod:`repro.matching.auction`) are written with numpy masked
reductions for speed.  Vectorized code is easy to get subtly wrong —
an off-by-one in a mask or a tie broken by a different index is
invisible until an instance hits it — so the original scalar loops
live on here, unchanged, as the ground truth the fast paths are
cross-validated against (see ``tests/test_matching_vectorized.py``)
and as the readable exposition of each algorithm.

These functions are *reference* code: clarity beats speed, and the
per-element Python loops are exempt from lint rule R601 via the
``perf_loop_allowed`` allowlist (they are the one place such loops are
the point).  The perf harness (``python -m repro bench``) times them
against the vectorized implementations to report the speedup.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError


def hungarian_reference(cost: np.ndarray) -> tuple[list[int], float]:
    """Scalar-loop Kuhn–Munkres; contract of
    :func:`repro.matching.hungarian.hungarian`.

    Potentials + shortest-augmenting-path formulation in O(n²·m) for an
    ``n × m`` cost matrix with ``n <= m``; minimizes and assigns every
    row.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    n, m = cost.shape
    if n == 0:
        return [], 0.0
    if n > m:
        raise ValidationError(
            f"cost must have n_rows <= n_cols, got {n} x {m}; "
            "transpose or pad the matrix"
        )
    if not np.all(np.isfinite(cost)):
        raise ValidationError("cost matrix must be finite")

    inf = math.inf
    # 1-indexed potentials; p[j] = row matched to column j (0 = free).
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [inf] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = inf
            j1 = -1
            row = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = row[j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [-1] * n
    for j in range(1, m + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    total = float(sum(cost[i, assignment[i]] for i in range(n)))
    return assignment, total
