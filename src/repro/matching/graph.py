"""A residual flow network for min-cost max-flow.

Edges are stored in a flat arc list where arc ``e`` and its residual
twin ``e ^ 1`` are adjacent — the standard trick that makes pushing
flow O(1) without hash lookups.
"""

from __future__ import annotations

from repro.errors import ValidationError


class FlowNetwork:
    """Directed graph with capacities and costs, supporting residuals.

    Node ids are dense integers ``0 .. n-1``.  Every :meth:`add_edge`
    creates the forward arc and its zero-capacity reverse twin.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 0:
            raise ValidationError(f"n_nodes must be >= 0, got {n_nodes}")
        self.n_nodes = n_nodes
        #: adjacency: node -> list of arc indices leaving it
        self.adj: list[list[int]] = [[] for _ in range(n_nodes)]
        self.to: list[int] = []
        self.cap: list[float] = []
        self.cost: list[float] = []

    def add_node(self) -> int:
        """Append a node; returns its id."""
        self.adj.append([])
        self.n_nodes += 1
        return self.n_nodes - 1

    def add_edge(self, u: int, v: int, capacity: float, cost: float = 0.0) -> int:
        """Add arc ``u -> v``; returns the forward arc index.

        The reverse residual arc is ``index ^ 1``.
        """
        self._check_node(u)
        self._check_node(v)
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0, got {capacity}")
        index = len(self.to)
        self.to.extend((v, u))
        self.cap.extend((capacity, 0.0))
        self.cost.extend((cost, -cost))
        self.adj[u].append(index)
        self.adj[v].append(index + 1)
        return index

    def push(self, arc: int, amount: float) -> None:
        """Move ``amount`` units along ``arc``, updating the residual."""
        if amount > self.cap[arc] + 1e-12:
            raise ValidationError(
                f"cannot push {amount} along arc {arc} with residual "
                f"capacity {self.cap[arc]}"
            )
        self.cap[arc] -= amount
        self.cap[arc ^ 1] += amount

    def flow_on(self, arc: int) -> float:
        """Flow currently on a forward arc (its twin's residual capacity)."""
        return self.cap[arc ^ 1]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValidationError(
                f"node {node} outside [0, {self.n_nodes})"
            )

    def __repr__(self) -> str:
        return f"FlowNetwork(nodes={self.n_nodes}, arcs={len(self.to) // 2})"
