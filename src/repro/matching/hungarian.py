"""The Hungarian algorithm (Kuhn–Munkres) for the assignment problem.

This is the potentials + shortest-augmenting-path formulation running
in O(n²·m) for an ``n × m`` cost matrix with ``n <= m``.  It solves the
*minimization* problem and assigns every row; callers wanting maximum
weight negate the matrix, and callers wanting partial assignment pad
with zero columns.

The inner column scan — reduced-cost updates, the Dijkstra-style
minimum over unreached columns, and the potential shift — runs as
numpy masked reductions over all ``m`` columns at once; the scalar
loop it replaces is preserved as
:func:`repro.matching.reference.hungarian_reference` and the two are
cross-validated on random instances.  Both are independent of the
min-cost-flow solver, giving three optima to compare in tests.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import ValidationError


def hungarian(
    cost: np.ndarray,
    start_potentials: tuple[np.ndarray, np.ndarray] | None = None,
    return_state: bool = False,
) -> tuple[list[int], float] | tuple[list[int], float, tuple[np.ndarray, np.ndarray]]:
    """Minimum-cost perfect assignment of rows to distinct columns.

    Parameters
    ----------
    cost:
        ``(n, m)`` matrix with ``n <= m``; entry ``[i, j]`` is the cost
        of assigning row ``i`` to column ``j``.
    start_potentials:
        Optional ``(u, v)`` warm start: length-``n`` row and length-``m``
        column potentials from a previous, similar instance.  Any finite
        values are *exact*, via two normalizations applied on entry.
        First, correctness of the Dijkstra-style scan needs a
        dual-feasible start (``u[i] + v[j] <= cost[i, j]`` everywhere),
        so the supplied ``u`` is replaced by the tightest row potentials
        feasible for ``v``: ``u[i] = min_j(cost[i, j] - v[j])`` — the
        column potentials are the valuable duals, row potentials
        re-normalize in one vectorized reduction.  Second, a
        *rectangular* instance is squared up with zero dummy rows:
        with ``n < m`` the column constraints are inequalities whose
        duals must satisfy ``v <= 0`` *and* complementary slackness
        forces ``v = 0`` on unmatched columns — conditions a warm ``v``
        cannot be assumed (or cheaply forced) to meet, whereas the
        squared problem has equality constraints with free duals and
        the identical optimum (dummy rows absorb the unmatched columns
        at zero cost).  Good potentials shrink the augmenting-path
        search; stale ones only slow it down.
    return_state:
        When true, additionally return the final ``(u, v)`` potentials
        (lengths ``n`` and ``m``) for warm-starting the next call.

    Returns
    -------
    (assignment, total)
        ``assignment[i]`` is the column matched to row ``i``; ``total``
        is the summed cost.  With ``return_state`` a third element
        carries the final potentials.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    n, m = cost.shape
    if n == 0:
        if return_state:
            return [], 0.0, (np.zeros(0), np.zeros(m))
        return [], 0.0
    if n > m:
        raise ValidationError(
            f"cost must have n_rows <= n_cols, got {n} x {m}; "
            "transpose or pad the matrix"
        )
    if not np.all(np.isfinite(cost)):
        raise ValidationError("cost matrix must be finite")

    n_real = n
    if start_potentials is not None:
        u0 = np.asarray(start_potentials[0], dtype=float)
        v0 = np.asarray(start_potentials[1], dtype=float)
        if u0.shape != (n,) or v0.shape != (m,):
            raise ValidationError(
                f"start_potentials must have shapes ({n},) and ({m},), "
                f"got {u0.shape} and {v0.shape}"
            )
        if not (np.all(np.isfinite(u0)) and np.all(np.isfinite(v0))):
            raise ValidationError("start_potentials must be finite")
        if n < m:
            # Square up so column duals are free (see the docstring);
            # dummy zero rows leave the optimum and total unchanged.
            cost = np.vstack([cost, np.zeros((m - n, m))])
            n = m

    # 1-indexed potentials; p[j] = row matched to column j (0 = free).
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    if start_potentials is not None:
        v[1:] = v0
        # Dual-feasibility projection: the largest row potentials with
        # u[i] + v[j] <= cost[i, j] for all j.  The supplied u only
        # seeds the search, so the projection discards it.
        u[1:] = (cost - v0[np.newaxis, :]).min(axis=1)
    p = np.zeros(m + 1, dtype=np.int64)
    way = np.zeros(m + 1, dtype=np.int64)
    minv = np.empty(m + 1)
    used = np.empty(m + 1, dtype=bool)
    way_cols = way[1:]
    minv_cols = minv[1:]

    scan_steps = 0
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv[:] = np.inf
        used[:] = False
        while True:
            scan_steps += 1
            used[j0] = True
            i0 = int(p[j0])
            free = ~used[1:]
            # Reduced costs of row i0 against every unreached column.
            reduced = cost[i0 - 1] - (u[i0] + v[1:])
            better = free & (reduced < minv_cols)
            minv_cols[better] = reduced[better]
            way_cols[better] = j0
            # np.argmin takes the first minimum, matching the reference
            # loop's strict `<` (lowest-index tie-break).
            masked = np.where(free, minv_cols, np.inf)
            j1 = int(np.argmin(masked)) + 1
            delta = float(masked[j1 - 1])
            # Shift potentials along the alternating tree: the rows
            # p[used] are pairwise distinct (each reached column is
            # matched to a different row), so fancy += is safe.
            u[p[used]] += delta
            v[used] -= delta
            minv_cols[free] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = int(way[j0])
            p[j0] = p[j1]
            j0 = j1

    # One augmenting path per row; scan steps are the Dijkstra-style
    # column relaxations summed over all paths.
    obs.count("hungarian.augmenting_paths", n)
    obs.count("hungarian.scan_steps", scan_steps)
    assignment = np.full(n, -1, dtype=np.int64)
    matched = np.flatnonzero(p[1:])
    assignment[p[1 + matched] - 1] = matched
    # Dummy rows added for a warm start are dropped again; their zero
    # cost rows never contribute to the total.
    assignment = assignment[:n_real]
    total = float(cost[np.arange(n_real), assignment].sum())
    if return_state:
        return (
            assignment.tolist(),
            total,
            (u[1 : n_real + 1].copy(), v[1:].copy()),
        )
    return assignment.tolist(), total


def max_weight_assignment(
    weights: np.ndarray,
    start_potentials: tuple[np.ndarray, np.ndarray] | None = None,
    return_state: bool = False,
) -> tuple[list[int], float] | tuple[list[int], float, tuple[np.ndarray, np.ndarray]]:
    """Maximum-weight assignment where leaving a row unmatched is free.

    Pads the (negated) weight matrix with zero columns so rows whose
    best edge is negative stay effectively unassigned (signalled by
    ``-1`` in the returned list).  ``start_potentials``/``return_state``
    mirror :func:`hungarian` in *entity* space — ``u`` of length ``n``
    and ``v`` of length ``m`` — with the dummy-column potentials pinned
    to zero on entry and dropped on exit.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValidationError(
            f"weights must be 2-D, got shape {weights.shape}"
        )
    n, m = weights.shape
    if n == 0 or m == 0:
        if return_state:
            return [-1] * n, 0.0, (np.zeros(n), np.zeros(m))
        return [-1] * n, 0.0
    # Negate for minimization; add n dummy zero-cost columns that mean
    # "unassigned" so the perfect-assignment requirement is harmless.
    padded = np.zeros((n, m + n))
    padded[:, :m] = -weights
    padded_potentials = None
    if start_potentials is not None:
        u0 = np.asarray(start_potentials[0], dtype=float)
        v0 = np.asarray(start_potentials[1], dtype=float)
        if u0.shape != (n,) or v0.shape != (m,):
            raise ValidationError(
                f"start_potentials must have shapes ({n},) and ({m},), "
                f"got {u0.shape} and {v0.shape}"
            )
        padded_potentials = (u0, np.concatenate([v0, np.zeros(n)]))
    solved = hungarian(
        padded, start_potentials=padded_potentials, return_state=return_state
    )
    assignment, neg_total = solved[0], solved[1]
    result = [j if j < m else -1 for j in assignment]
    if return_state:
        u, v_padded = solved[2]
        return result, -neg_total, (u, v_padded[:m])
    return result, -neg_total
