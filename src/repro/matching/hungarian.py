"""The Hungarian algorithm (Kuhn–Munkres) for the assignment problem.

This is the potentials + shortest-augmenting-path formulation running
in O(n²·m) for an ``n × m`` cost matrix with ``n <= m``.  It solves the
*minimization* problem and assigns every row; callers wanting maximum
weight negate the matrix, and callers wanting partial assignment pad
with zero columns.

This implementation is independent of the min-cost-flow solver so the
two can cross-validate each other in tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError


def hungarian(cost: np.ndarray) -> tuple[list[int], float]:
    """Minimum-cost perfect assignment of rows to distinct columns.

    Parameters
    ----------
    cost:
        ``(n, m)`` matrix with ``n <= m``; entry ``[i, j]`` is the cost
        of assigning row ``i`` to column ``j``.

    Returns
    -------
    (assignment, total)
        ``assignment[i]`` is the column matched to row ``i``; ``total``
        is the summed cost.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    n, m = cost.shape
    if n == 0:
        return [], 0.0
    if n > m:
        raise ValidationError(
            f"cost must have n_rows <= n_cols, got {n} x {m}; "
            "transpose or pad the matrix"
        )
    if not np.all(np.isfinite(cost)):
        raise ValidationError("cost matrix must be finite")

    inf = math.inf
    # 1-indexed potentials; p[j] = row matched to column j (0 = free).
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [inf] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = inf
            j1 = -1
            row = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = row[j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [-1] * n
    for j in range(1, m + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    total = float(sum(cost[i, assignment[i]] for i in range(n)))
    return assignment, total


def max_weight_assignment(weights: np.ndarray) -> tuple[list[int], float]:
    """Maximum-weight assignment where leaving a row unmatched is free.

    Pads the (negated) weight matrix with zero columns so rows whose
    best edge is negative stay effectively unassigned (signalled by
    ``-1`` in the returned list).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValidationError(
            f"weights must be 2-D, got shape {weights.shape}"
        )
    n, m = weights.shape
    if n == 0 or m == 0:
        return [-1] * n, 0.0
    # Negate for minimization; add n dummy zero-cost columns that mean
    # "unassigned" so the perfect-assignment requirement is harmless.
    padded = np.zeros((n, m + n))
    padded[:, :m] = -weights
    assignment, neg_total = hungarian(padded)
    result = [j if j < m else -1 for j in assignment]
    return result, -neg_total
