"""The Hungarian algorithm (Kuhn–Munkres) for the assignment problem.

This is the potentials + shortest-augmenting-path formulation running
in O(n²·m) for an ``n × m`` cost matrix with ``n <= m``.  It solves the
*minimization* problem and assigns every row; callers wanting maximum
weight negate the matrix, and callers wanting partial assignment pad
with zero columns.

The inner column scan — reduced-cost updates, the Dijkstra-style
minimum over unreached columns, and the potential shift — runs as
numpy masked reductions over all ``m`` columns at once; the scalar
loop it replaces is preserved as
:func:`repro.matching.reference.hungarian_reference` and the two are
cross-validated on random instances.  Both are independent of the
min-cost-flow solver, giving three optima to compare in tests.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import ValidationError


def hungarian(cost: np.ndarray) -> tuple[list[int], float]:
    """Minimum-cost perfect assignment of rows to distinct columns.

    Parameters
    ----------
    cost:
        ``(n, m)`` matrix with ``n <= m``; entry ``[i, j]`` is the cost
        of assigning row ``i`` to column ``j``.

    Returns
    -------
    (assignment, total)
        ``assignment[i]`` is the column matched to row ``i``; ``total``
        is the summed cost.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    n, m = cost.shape
    if n == 0:
        return [], 0.0
    if n > m:
        raise ValidationError(
            f"cost must have n_rows <= n_cols, got {n} x {m}; "
            "transpose or pad the matrix"
        )
    if not np.all(np.isfinite(cost)):
        raise ValidationError("cost matrix must be finite")

    # 1-indexed potentials; p[j] = row matched to column j (0 = free).
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    p = np.zeros(m + 1, dtype=np.int64)
    way = np.zeros(m + 1, dtype=np.int64)
    minv = np.empty(m + 1)
    used = np.empty(m + 1, dtype=bool)
    way_cols = way[1:]
    minv_cols = minv[1:]

    scan_steps = 0
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv[:] = np.inf
        used[:] = False
        while True:
            scan_steps += 1
            used[j0] = True
            i0 = int(p[j0])
            free = ~used[1:]
            # Reduced costs of row i0 against every unreached column.
            reduced = cost[i0 - 1] - (u[i0] + v[1:])
            better = free & (reduced < minv_cols)
            minv_cols[better] = reduced[better]
            way_cols[better] = j0
            # np.argmin takes the first minimum, matching the reference
            # loop's strict `<` (lowest-index tie-break).
            masked = np.where(free, minv_cols, np.inf)
            j1 = int(np.argmin(masked)) + 1
            delta = float(masked[j1 - 1])
            # Shift potentials along the alternating tree: the rows
            # p[used] are pairwise distinct (each reached column is
            # matched to a different row), so fancy += is safe.
            u[p[used]] += delta
            v[used] -= delta
            minv_cols[free] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = int(way[j0])
            p[j0] = p[j1]
            j0 = j1

    # One augmenting path per row; scan steps are the Dijkstra-style
    # column relaxations summed over all paths.
    obs.count("hungarian.augmenting_paths", n)
    obs.count("hungarian.scan_steps", scan_steps)
    assignment = np.full(n, -1, dtype=np.int64)
    matched = np.flatnonzero(p[1:])
    assignment[p[1 + matched] - 1] = matched
    total = float(cost[np.arange(n), assignment].sum())
    return assignment.tolist(), total


def max_weight_assignment(weights: np.ndarray) -> tuple[list[int], float]:
    """Maximum-weight assignment where leaving a row unmatched is free.

    Pads the (negated) weight matrix with zero columns so rows whose
    best edge is negative stay effectively unassigned (signalled by
    ``-1`` in the returned list).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValidationError(
            f"weights must be 2-D, got shape {weights.shape}"
        )
    n, m = weights.shape
    if n == 0 or m == 0:
        return [-1] * n, 0.0
    # Negate for minimization; add n dummy zero-cost columns that mean
    # "unassigned" so the perfect-assignment requirement is harmless.
    padded = np.zeros((n, m + n))
    padded[:, :m] = -weights
    assignment, neg_total = hungarian(padded)
    result = [j if j < m else -1 for j in assignment]
    return result, -neg_total
