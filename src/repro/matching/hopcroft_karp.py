"""Hopcroft–Karp maximum-cardinality bipartite matching in O(E·sqrt(V)).

Used by the feasibility checker (can every task get its replication
quota of distinct workers at all?) and as the unweighted baseline in
the online-matching experiments.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro import obs

INF = float("inf")


def hopcroft_karp(
    n_left: int, n_right: int, adjacency: Sequence[Sequence[int]]
) -> tuple[int, list[int], list[int]]:
    """Maximum matching of a bipartite graph.

    Parameters
    ----------
    n_left, n_right:
        Sizes of the two vertex sets.
    adjacency:
        ``adjacency[u]`` lists the right-vertices adjacent to left
        vertex ``u``.

    Returns
    -------
    (size, match_left, match_right)
        ``match_left[u]`` is the right vertex matched to ``u`` (or −1);
        ``match_right[v]`` symmetric.
    """
    if len(adjacency) != n_left:
        raise ValueError(
            f"adjacency has {len(adjacency)} rows, expected {n_left}"
        )
    match_left = [-1] * n_left
    match_right = [-1] * n_right
    dist = [0.0] * n_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found_free = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found_free

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    size = 0
    phases = 0
    while bfs():
        phases += 1
        for u in range(n_left):
            if match_left[u] == -1 and dfs(u):
                size += 1
    obs.count("hopcroft_karp.phases", phases)
    obs.count("hopcroft_karp.augmenting_paths", size)
    return size, match_left, match_right
