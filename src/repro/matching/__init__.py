"""Bipartite matching and flow substrate, implemented from scratch.

This package contains the combinatorial machinery the assignment
solvers are built on:

* :mod:`graph` — a residual flow network;
* :mod:`mincost_flow` — successive-shortest-path min-cost max-flow with
  Johnson potentials (the workhorse behind the flow-optimal solver);
* :mod:`hungarian` — the O(n³) Hungarian algorithm for square
  assignment (independent implementation used to cross-validate flow);
* :mod:`hopcroft_karp` — maximum-cardinality bipartite matching;
* :mod:`auction` — Bertsekas' ε-scaling auction algorithm (a third
  independent optimum for cross-validation), with sequential
  (Gauss-Seidel) and batched (Jacobi) bidding modes;
* :mod:`reference` — scalar-loop reference implementations the
  vectorized hot paths are cross-validated and benchmarked against;
* :mod:`b_matching` — capacitated maximum-weight b-matching via flow;
* :mod:`online` — online bipartite matching: greedy, Ranking, and a
  two-phase sample-then-match algorithm.
"""

from repro.matching.auction import auction_assignment
from repro.matching.b_matching import max_weight_b_matching
from repro.matching.graph import FlowNetwork
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.hungarian import hungarian
from repro.matching.mincost_flow import MinCostFlowResult, min_cost_flow
from repro.matching.online import (
    online_greedy_matching,
    ranking_matching,
    two_phase_matching,
)
from repro.matching.reference import hungarian_reference

__all__ = [
    "FlowNetwork",
    "MinCostFlowResult",
    "auction_assignment",
    "hopcroft_karp",
    "hungarian",
    "hungarian_reference",
    "max_weight_b_matching",
    "min_cost_flow",
    "online_greedy_matching",
    "ranking_matching",
    "two_phase_matching",
]
