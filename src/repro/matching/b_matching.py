"""Maximum-weight capacitated b-matching via min-cost flow.

This is the reduction the flow-optimal MBA solver uses:

* source → worker ``i`` with capacity = worker capacity, cost 0;
* worker ``i`` → task ``j`` with capacity 1 (a worker answers a task at
  most once), cost = −weight[i, j];
* task ``j`` → sink with capacity = task replication, cost 0.

Running min-cost flow with the *stop-when-nonimproving* rule yields the
flow of maximum total weight — exactly the optimal b-matching for an
additive objective.  Edges with non-positive weight are omitted up
front: they can never be part of an improving augmenting path's best
solution and skipping them shrinks the graph.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import ValidationError
from repro.matching.graph import FlowNetwork
from repro.matching.mincost_flow import min_cost_flow
from repro.utils.stats import edge_matrix_sum


def max_weight_b_matching(
    weights: np.ndarray,
    row_capacities: np.ndarray,
    col_capacities: np.ndarray,
    include_nonpositive: bool = False,
) -> tuple[list[tuple[int, int]], float]:
    """Maximum-weight b-matching of a dense bipartite weight matrix.

    Parameters
    ----------
    weights:
        ``(n, m)`` edge weights; only positive-weight edges are
        candidates unless ``include_nonpositive`` is set (in which case
        all finite edges are candidates but the objective still stops
        at the profit-maximal flow, so adding them cannot reduce the
        total — useful only for degenerate tests).
    row_capacities / col_capacities:
        Per-row (worker) and per-column (task) degree bounds.

    Returns
    -------
    (edges, total)
        Chosen edges as (row, col) pairs and their summed weight.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValidationError(f"weights must be 2-D, got {weights.shape}")
    n, m = weights.shape
    row_capacities = np.asarray(row_capacities, dtype=int)
    col_capacities = np.asarray(col_capacities, dtype=int)
    if row_capacities.shape != (n,):
        raise ValidationError(
            f"row_capacities shape {row_capacities.shape} != ({n},)"
        )
    if col_capacities.shape != (m,):
        raise ValidationError(
            f"col_capacities shape {col_capacities.shape} != ({m},)"
        )
    if np.any(row_capacities < 0) or np.any(col_capacities < 0):
        raise ValidationError("capacities must be non-negative")

    source = 0
    worker_base = 1
    task_base = 1 + n
    sink = 1 + n + m
    network = FlowNetwork(n + m + 2)
    for i in range(n):
        if row_capacities[i] > 0:
            network.add_edge(source, worker_base + i, float(row_capacities[i]))
    for j in range(m):
        if col_capacities[j] > 0:
            network.add_edge(task_base + j, sink, float(col_capacities[j]))
    edge_arcs: dict[int, tuple[int, int]] = {}
    for i in range(n):
        if row_capacities[i] == 0:
            continue
        for j in range(m):
            if col_capacities[j] == 0:
                continue
            w = weights[i, j]
            if w > 0 or include_nonpositive:
                arc = network.add_edge(
                    worker_base + i, task_base + j, 1.0, -float(w)
                )
                edge_arcs[arc] = (i, j)

    result = min_cost_flow(
        network, source, sink, stop_when_nonimproving=True
    )
    edges = [
        edge_arcs[arc]
        for arc, amount in result.arc_flow.items()
        if arc in edge_arcs and amount > 0.5
    ]
    edges.sort()
    obs.count("b_matching.augmentations", result.augmentations)
    obs.count("b_matching.candidate_edges", len(edge_arcs))
    obs.count("b_matching.matched_edges", len(edges))
    total = edge_matrix_sum(weights, edges)
    return edges, total
