"""Min-cost max-flow via successive shortest paths with potentials.

The first shortest-path computation uses Bellman–Ford (costs may be
negative, e.g. when benefits are encoded as negative costs); every
subsequent one uses Dijkstra on Johnson-reduced costs, which are
non-negative once valid potentials exist.  This is the textbook
polynomial algorithm and is exact for the linear-objective assignment
problems in this library.

Two stopping rules are supported:

* ``max_flow`` (default) — augment until no augmenting path exists;
* ``stop_when_nonimproving=True`` — stop as soon as the cheapest
  augmenting path has non-negative cost.  With benefits encoded as
  negative costs this computes the *maximum-profit* flow rather than
  the maximum flow, which is what maximum-weight b-matching needs
  (assigning a harmful edge just to push more flow would lower total
  benefit).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro import obs
from repro.errors import SolverError
from repro.matching.graph import FlowNetwork

_EPS = 1e-9


@dataclass(frozen=True)
class MinCostFlowResult:
    """Outcome of a min-cost flow computation."""

    flow: float
    cost: float
    #: flow on each *forward* arc, indexed by arc id (even indices).
    arc_flow: dict[int, float]
    #: how many augmenting paths were pushed (work-done metric).
    augmentations: int = 0


def min_cost_flow(
    network: FlowNetwork,
    source: int,
    sink: int,
    max_flow: float = math.inf,
    stop_when_nonimproving: bool = False,
) -> MinCostFlowResult:
    """Send up to ``max_flow`` units from source to sink at minimum cost.

    Mutates ``network`` (pushes flow); callers wanting a pristine graph
    should rebuild it, which is cheap relative to the solve.
    """
    n = network.n_nodes
    potential = _initial_potentials(network, source)
    total_flow = 0.0
    total_cost = 0.0
    augmentations = 0
    pushes = 0

    while total_flow < max_flow - _EPS:
        dist, parent_arc = _dijkstra(network, source, potential)
        if dist[sink] == math.inf:
            break
        # True path cost = reduced distance + potential difference.
        path_cost = dist[sink] + potential[sink] - potential[source]
        if stop_when_nonimproving and path_cost >= -_EPS:
            break
        # Update potentials for the next round (only reachable nodes).
        for v in range(n):
            if dist[v] < math.inf:
                potential[v] += dist[v]
        # Find bottleneck along the path.
        bottleneck = max_flow - total_flow
        v = sink
        while v != source:
            arc = parent_arc[v]
            bottleneck = min(bottleneck, network.cap[arc])
            v = network.to[arc ^ 1]
        if bottleneck <= _EPS:
            raise SolverError("augmenting path with zero bottleneck")
        # Push.
        v = sink
        while v != source:
            arc = parent_arc[v]
            network.push(arc, bottleneck)
            pushes += 1
            v = network.to[arc ^ 1]
        augmentations += 1
        total_flow += bottleneck
        total_cost += bottleneck * path_cost

    obs.count("mincost_flow.augmentations", augmentations)
    obs.count("mincost_flow.pushes", pushes)
    arc_flow = {
        arc: network.flow_on(arc)
        for arc in range(0, len(network.to), 2)
        if network.flow_on(arc) > _EPS
    }
    return MinCostFlowResult(
        flow=total_flow,
        cost=total_cost,
        arc_flow=arc_flow,
        augmentations=augmentations,
    )


def _initial_potentials(network: FlowNetwork, source: int) -> list[float]:
    """Bellman–Ford distances from the source handle negative arc costs.

    Unreachable nodes get potential 0 — any finite value works because
    they can only become reachable through arcs whose reduced cost is
    then recomputed against updated potentials.
    """
    n = network.n_nodes
    dist = [math.inf] * n
    dist[source] = 0.0
    for round_index in range(n):
        changed = False
        for u in range(n):
            if dist[u] == math.inf:
                continue
            for arc in network.adj[u]:
                if network.cap[arc] > _EPS:
                    v = network.to[arc]
                    candidate = dist[u] + network.cost[arc]
                    if candidate < dist[v] - _EPS:
                        dist[v] = candidate
                        changed = True
        if not changed:
            break
    else:
        raise SolverError("negative-cost cycle detected in flow network")
    return [d if d < math.inf else 0.0 for d in dist]


def _dijkstra(
    network: FlowNetwork, source: int, potential: list[float]
) -> tuple[list[float], list[int]]:
    """Dijkstra on reduced costs; returns (distances, parent arcs)."""
    n = network.n_nodes
    dist = [math.inf] * n
    parent_arc = [-1] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u] + _EPS:
            continue
        for arc in network.adj[u]:
            if network.cap[arc] <= _EPS:
                continue
            v = network.to[arc]
            reduced = network.cost[arc] + potential[u] - potential[v]
            if reduced < -1e-6:
                # Potentials should make all residual arcs non-negative;
                # tiny violations come from float accumulation.
                reduced = 0.0
            candidate = d + reduced
            if candidate < dist[v] - _EPS:
                dist[v] = candidate
                parent_arc[v] = arc
                heapq.heappush(heap, (candidate, v))
    return dist, parent_arc
