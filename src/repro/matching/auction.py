"""Bertsekas' auction algorithm for maximum-weight assignment.

Persons (rows) bid for objects (columns); prices rise until everyone
holds an object they (almost) maximally value.  With ε-scaling and
integer-scaled values the final assignment is exactly optimal when
``epsilon < 1/n`` times the value resolution.

Kept as a third independent optimum — tests cross-validate it against
the Hungarian algorithm and the flow solver on random instances.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConvergenceError, ValidationError


def auction_assignment(
    weights: np.ndarray,
    epsilon_start: float | None = None,
    scaling: float = 4.0,
    max_rounds: int = 10_000_000,
) -> tuple[list[int], float]:
    """Maximum-weight perfect assignment via ε-scaling auction.

    Parameters
    ----------
    weights:
        ``(n, m)`` value matrix with ``n <= m``; every row gets a
        distinct column.
    epsilon_start:
        Initial ε (defaults to ``max|w| / 2``).
    scaling:
        Factor by which ε shrinks between scaling phases.
    max_rounds:
        Bidding-iteration budget across all phases.

    Returns
    -------
    (assignment, total) as in :func:`repro.matching.hungarian.hungarian`
    but maximizing.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValidationError(f"weights must be 2-D, got {weights.shape}")
    n, m = weights.shape
    if n == 0:
        return [], 0.0
    if n > m:
        raise ValidationError(f"need n_rows <= n_cols, got {n} x {m}")
    if not np.all(np.isfinite(weights)):
        raise ValidationError("weights must be finite")

    span = float(np.abs(weights).max())
    if span <= 0.0:
        return list(range(n)), 0.0
    if n < m:
        # Pad to a square problem with zero-weight dummy persons: the
        # epsilon-scaling optimality argument needs every object
        # assigned (otherwise prices raised in an early phase on an
        # object that ends up unassigned break epsilon-complementary
        # slackness).  Dummies absorb the leftover objects at weight 0,
        # so the square optimum restricted to the real rows is exactly
        # the rectangular optimum.
        padded = np.zeros((m, m))
        padded[:n] = weights
        try:
            assignment, _total = auction_assignment(
                padded, epsilon_start, scaling, max_rounds
            )
        except ConvergenceError as error:
            # Re-key the square problem's partial to the real rows so
            # callers can salvage it (dummy rows carry no value).
            if error.partial is not None:
                error.partial = [
                    (i, j) for i, j in error.partial if i < n
                ]
            raise
        real = assignment[:n]
        total = float(sum(weights[i, real[i]] for i in range(n)))
        return real, total
    # Optimality requires final epsilon < (min value gap)/n; for float
    # inputs we target a resolution proportional to the value span.
    epsilon_final = span * 1e-9 / max(n, 1) + 1e-12
    epsilon = epsilon_start if epsilon_start is not None else span / 2.0
    # A subnormal epsilon (possible when the value span itself is
    # subnormal) would add nothing to bids and deadlock the bidding
    # loop; never start below the final resolution.
    epsilon = max(epsilon, epsilon_final)

    prices = np.zeros(m)
    owner = [-1] * m  # column -> row
    assigned = [-1] * n  # row -> column
    rounds = 0

    while True:
        # Reset assignment each ε-phase (prices persist: that is the
        # point of scaling — good prices transfer between phases).
        owner = [-1] * m
        assigned = [-1] * n
        unassigned = list(range(n))
        while unassigned:
            rounds += 1
            if rounds > max_rounds:
                # The phase's in-progress matching is feasible (each
                # person holds at most one object and vice versa), so
                # hand it to callers as a salvageable partial result.
                raise ConvergenceError(
                    f"auction exceeded {max_rounds} bidding rounds",
                    rounds,
                    partial=[
                        (i, j)
                        for i, j in enumerate(assigned)
                        if j != -1
                    ],
                )
            person = unassigned.pop()
            values = weights[person] - prices
            best = int(np.argmax(values))
            best_value = values[best]
            values[best] = -math.inf
            second_value = float(values.max()) if m > 1 else best_value - span
            bid = prices[best] + (best_value - second_value) + epsilon
            prices[best] = bid
            previous = owner[best]
            owner[best] = person
            assigned[person] = best
            if previous != -1:
                assigned[previous] = -1
                unassigned.append(previous)
        if epsilon <= epsilon_final:
            break
        epsilon = max(epsilon / scaling, epsilon_final)

    total = float(sum(weights[i, assigned[i]] for i in range(n)))
    return assigned, total
