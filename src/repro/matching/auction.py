"""Bertsekas' auction algorithm for maximum-weight assignment.

Persons (rows) bid for objects (columns); prices rise until everyone
holds an object they (almost) maximally value.  With ε-scaling and
integer-scaled values the final assignment is exactly optimal when
``epsilon < 1/n`` times the value resolution.

Two bidding schedules are provided:

* ``mode="gauss-seidel"`` (default) — the classic sequential auction:
  one unassigned person bids per iteration, prices update immediately.
  This loop is kept verbatim as the reference implementation.
* ``mode="jacobi"`` — batched bidding: every unassigned person bids in
  one vectorized step against the same price vector (top-2 values via
  ``np.partition``, price raises via ``np.maximum.at``), and each
  object goes to its highest bidder with ties broken deterministically
  toward the lowest person index.  The batched mode additionally keeps
  a per-person top-``K`` candidate cache and carries the assignment
  across ε-phases (dropping only pairs that violate the new phase's
  ε-complementary slackness), which is what makes it fast — see
  :func:`_auction_jacobi` for the invariants.

Which mode wins is a property of the instance, not of the code: on
*structured* markets (specialist/diagonally-dominant benefit matrices,
where most persons want different objects) the batched mode does a
handful of large rounds and is several times faster than the
sequential loop; on *reward-dominated* (near-rank-1) matrices where
everyone covets the same few objects, simultaneous bids are mostly
wasted and the sequential mode remains the right choice.  Batching
applies to square instances; rectangular inputs are padded and routed
through the sequential loop, where zero-weight dummy rows spread
naturally instead of stampeding (see the padding comment in
:func:`auction_assignment`).  See ``docs/performance.md`` for
measurements of both regimes.

Both modes reach the same optimum under the same ε-schedule, so tests
cross-validate them against each other, the Hungarian algorithm, and
the min-cost-flow solver on random instances.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.errors import ConvergenceError, ValidationError

_MODES = ("gauss-seidel", "jacobi")

#: Candidate-cache width of the Jacobi mode (top-K objects per person).
_JACOBI_CACHE_WIDTH = 16


def auction_assignment(
    weights: np.ndarray,
    epsilon_start: float | None = None,
    scaling: float = 4.0,
    max_rounds: int = 10_000_000,
    mode: str = "gauss-seidel",
    start_prices: np.ndarray | None = None,
    return_state: bool = False,
) -> tuple[list[int], float] | tuple[list[int], float, np.ndarray]:
    """Maximum-weight perfect assignment via ε-scaling auction.

    Parameters
    ----------
    weights:
        ``(n, m)`` value matrix with ``n <= m``; every row gets a
        distinct column.
    epsilon_start:
        Initial ε (defaults to ``max|w| / 2``).
    scaling:
        Factor by which ε shrinks between scaling phases.
    max_rounds:
        Bidding-iteration budget across all phases (a Jacobi step of
        ``k`` simultaneous bids counts as ``k`` iterations).
    mode:
        ``"gauss-seidel"`` for the sequential reference loop,
        ``"jacobi"`` for vectorized batched bidding.
    start_prices:
        Optional length-``m`` initial object prices (a warm start from
        a previous, similar instance).  Any finite vector is *correct*
        — each ε-phase rebuilds the assignment from scratch and ends in
        ε-complementary slackness regardless of where prices began — so
        staleness costs only extra bidding rounds, never optimality.
    return_state:
        When true, additionally return the final price vector so
        callers can warm-start the next round.

    Returns
    -------
    (assignment, total) as in :func:`repro.matching.hungarian.hungarian`
    but maximizing; with ``return_state`` a third element carries the
    final length-``m`` prices.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValidationError(f"weights must be 2-D, got {weights.shape}")
    if mode not in _MODES:
        raise ValidationError(
            f"unknown auction mode {mode!r}; expected one of {_MODES}"
        )
    n, m = weights.shape
    if start_prices is None:
        initial_prices = np.zeros(m)
    else:
        initial_prices = np.asarray(start_prices, dtype=float).copy()
        if initial_prices.shape != (m,):
            raise ValidationError(
                f"start_prices must have shape ({m},), "
                f"got {initial_prices.shape}"
            )
        if not np.all(np.isfinite(initial_prices)):
            raise ValidationError("start_prices must be finite")
    if n == 0:
        if return_state:
            return [], 0.0, initial_prices
        return [], 0.0
    if n > m:
        raise ValidationError(f"need n_rows <= n_cols, got {n} x {m}")
    if not np.all(np.isfinite(weights)):
        raise ValidationError("weights must be finite")

    span = float(np.abs(weights).max())
    if span <= 0.0:
        if return_state:
            return list(range(n)), 0.0, initial_prices
        return list(range(n)), 0.0
    if n < m:
        # Pad to a square problem with zero-weight dummy persons: the
        # epsilon-scaling optimality argument needs every object
        # assigned (otherwise prices raised in an early phase on an
        # object that ends up unassigned break epsilon-complementary
        # slackness).  Dummies absorb the leftover objects at weight 0,
        # so the square optimum restricted to the real rows is exactly
        # the rectangular optimum.
        padded = np.zeros((m, m))
        padded[:n] = weights
        # Batched bidding is square-only: the zero-weight dummy rows
        # are value-identical, so in a Jacobi round they all tie on
        # the same cheapest object (lowest-index argmax) and exactly
        # one wins — settling m - n dummies costs O((m - n)^2) bids
        # *per ε-phase*.  The sequential loop spreads dummies
        # naturally (prices update between their bids), so rectangular
        # instances always take the sequential path; ``mode="jacobi"``
        # still validates and agrees, it just does not batch here.
        try:
            # Columns (hence prices) are unchanged by row padding, so a
            # warm price vector threads straight through the recursion.
            square = auction_assignment(
                padded,
                epsilon_start,
                scaling,
                max_rounds,
                "gauss-seidel",
                start_prices=start_prices,
                return_state=return_state,
            )
        except ConvergenceError as error:
            # Re-key the square problem's partial to the real rows so
            # callers can salvage it (dummy rows carry no value).
            if error.partial is not None:
                error.partial = [
                    (i, j) for i, j in error.partial if i < n
                ]
            raise
        assignment = square[0]
        real = assignment[:n]
        total = float(weights[np.arange(n), real].sum())
        if return_state:
            return real, total, square[2]
        return real, total
    # Optimality requires final epsilon < (min value gap)/n; for float
    # inputs we target a resolution proportional to the value span.
    epsilon_final = span * 1e-9 / max(n, 1) + 1e-12
    epsilon = epsilon_start if epsilon_start is not None else span / 2.0
    # A subnormal epsilon (possible when the value span itself is
    # subnormal) would add nothing to bids and deadlock the bidding
    # loop; never start below the final resolution.
    epsilon = max(epsilon, epsilon_final)

    if mode == "jacobi":
        assigned, prices = _auction_jacobi(
            weights,
            epsilon,
            epsilon_final,
            scaling,
            max_rounds,
            span,
            initial_prices,
        )
        total = float(weights[np.arange(n), assigned].sum())
        if return_state:
            return assigned.tolist(), total, prices
        return assigned.tolist(), total

    prices = initial_prices
    owner = [-1] * m  # column -> row
    assigned = [-1] * n  # row -> column
    rounds = 0
    phases = 0

    while True:
        phases += 1
        # Reset assignment each ε-phase (prices persist: that is the
        # point of scaling — good prices transfer between phases).
        owner = [-1] * m
        assigned = [-1] * n
        unassigned = list(range(n))
        while unassigned:
            rounds += 1
            if rounds > max_rounds:
                # The phase's in-progress matching is feasible (each
                # person holds at most one object and vice versa), so
                # hand it to callers as a salvageable partial result.
                raise ConvergenceError(
                    f"auction exceeded {max_rounds} bidding rounds",
                    rounds,
                    partial=[
                        (i, j)
                        for i, j in enumerate(assigned)
                        if j != -1
                    ],
                )
            person = unassigned.pop()
            values = weights[person] - prices
            best = int(np.argmax(values))
            best_value = values[best]
            values[best] = -math.inf
            second_value = float(values.max()) if m > 1 else best_value - span
            bid = prices[best] + (best_value - second_value) + epsilon
            prices[best] = bid
            previous = owner[best]
            owner[best] = person
            assigned[person] = best
            if previous != -1:
                assigned[previous] = -1
                unassigned.append(previous)
        if epsilon <= epsilon_final:
            break
        epsilon = max(epsilon / scaling, epsilon_final)

    # Gauss-Seidel updates one price per bid, so bids == price updates.
    obs.count("auction.bids", rounds)
    obs.count("auction.price_updates", rounds)
    obs.count("auction.phases", phases)
    total = float(weights[np.arange(n), np.asarray(assigned)].sum())
    if return_state:
        return assigned, total, prices
    return assigned, total


def _auction_jacobi(
    weights: np.ndarray,
    epsilon: float,
    epsilon_final: float,
    scaling: float,
    max_rounds: int,
    span: float,
    start_prices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """ε-scaling auction with batched (Jacobi) bidding on a square matrix.

    Every unassigned person computes their bid against the *same*
    price vector; each contested object then goes to its highest
    bidder (lowest person index on exact bid ties) at that bid, and
    the displaced owners rejoin the unassigned pool.

    Three structural optimizations ride on one invariant — **prices
    only rise** (``np.maximum.at``), hence values only fall:

    * *Candidate cache.*  Each person caches their top-``K`` objects
      and the value of the (K+1)-th best (``thresh``) at the snapshot
      prices.  Because non-candidate values were ``<= thresh`` at the
      snapshot and can only have fallen since, the cached argmax is
      the true best while it stays ``>= thresh``; once it dips below
      ("burned"), the row is re-scanned.  Bids therefore cost O(K)
      instead of O(m).  The second-best value used in the bid is
      ``max(cached second, thresh)`` — an upper bound on the true
      second-best, which underbids but preserves ε-complementary
      slackness (the winner's post-bid value is ``sv_used - ε >=
      true_second - ε``).
    * *Phase retention.*  Instead of restarting every ε-phase from an
      empty matching (as the sequential reference does), holders keep
      their object if it still satisfies the new phase's ε-CS:
      ``held_value >= best_value - ε``.  A cached per-person slack
      lower bound (``held - best_upper_bound``) makes this check a
      single vector compare when no price changed since it was
      computed, so late phases on settled instances cost O(n) each.
    * *Scalar cascade step.*  Eviction chains produce long runs of
      rounds with a single bidder, where the fixed overhead of the
      vectorized round dominates; those take a direct scalar path
      over the candidate cache.

    The ε-schedule matches the Gauss-Seidel loop exactly and every
    phase ends with a full assignment satisfying ε-CS, so both modes
    reach the same optimum and are cross-validated on the same
    instances.
    """
    n, m = weights.shape
    cache_width = min(_JACOBI_CACHE_WIDTH, m)
    prices = start_prices
    candidates = np.empty((n, cache_width), dtype=np.int64)
    thresh = np.empty(n)
    owner = np.full(m, -1, dtype=np.int64)
    assigned = np.full(n, -1, dtype=np.int64)
    # slack[i] lower-bounds (held value - best value) for holder i;
    # valid only between price changes (see phase-retention above).
    slack = np.full(n, np.inf)
    slack_valid = False
    rounds = 0
    phases = 0
    price_updates = 0

    def refresh(people: np.ndarray) -> None:
        """Re-scan full rows: cache top-K objects + the (K+1)-th value."""
        values = weights[people] - prices
        if cache_width < m:
            part = np.argpartition(values, m - cache_width - 1, axis=1)
            candidates[people] = part[:, m - cache_width:]
            thresh[people] = values[
                np.arange(people.size), part[:, m - cache_width - 1]
            ]
        else:
            candidates[people] = np.arange(m)[np.newaxis, :]
            thresh[people] = -np.inf

    def cached_best(
        people: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(best value, second-best bound, best object) per person."""
        while True:
            cols = candidates[people]
            values = weights[people[:, np.newaxis], cols] - prices[cols]
            row_index = np.arange(people.size)
            best_slot = np.argmax(values, axis=1)
            best_value = values[row_index, best_slot]
            burned = best_value < thresh[people]
            if not burned.any():
                break
            refresh(people[burned])
        if cache_width > 1:
            second = np.maximum(
                np.partition(values, cache_width - 2, axis=1)[:, -2],
                thresh[people],
            )
        else:
            second = np.maximum(best_value - span, thresh[people])
        return best_value, second, cols[row_index, best_slot]

    refresh(np.arange(n, dtype=np.int64))
    while True:
        phases += 1
        if (assigned >= 0).any():
            if not slack_valid:
                holders = np.flatnonzero(assigned >= 0)
                held = (
                    weights[holders, assigned[holders]]
                    - prices[assigned[holders]]
                )
                # Loose upper bound on the true best value: cached
                # candidates at current prices, or the snapshot
                # threshold for burned rows — either dominates every
                # non-candidate, so no full re-scan is needed here.
                cols = candidates[holders]
                best_bound = np.maximum(
                    (weights[holders[:, np.newaxis], cols]
                     - prices[cols]).max(axis=1),
                    thresh[holders],
                )
                slack[:] = np.inf
                slack[holders] = held - best_bound
                slack_valid = True
            # Exact ε-CS check only where the loose bound is violated.
            suspect = np.flatnonzero(slack < -epsilon)
            if suspect.size:
                best_value, _, _ = cached_best(suspect)
                held = (
                    weights[suspect, assigned[suspect]]
                    - prices[assigned[suspect]]
                )
                slack[suspect] = held - best_value
                dropped = suspect[slack[suspect] < -epsilon]
                if dropped.size:
                    owner[assigned[dropped]] = -1
                    assigned[dropped] = -1
        unassigned = list(np.flatnonzero(assigned < 0))
        if unassigned:
            slack_valid = False
        while unassigned:
            rounds += len(unassigned)
            if rounds > max_rounds:
                raise ConvergenceError(
                    f"auction exceeded {max_rounds} bidding rounds",
                    rounds,
                    partial=[
                        (int(i), int(j))
                        for i, j in enumerate(assigned)
                        if j != -1
                    ],
                )
            if len(unassigned) == 1:
                # Scalar cascade step (see docstring).
                person = int(unassigned.pop())
                while True:
                    cols = candidates[person]
                    values = weights[person, cols] - prices[cols]
                    best_slot = int(np.argmax(values))
                    best_value = float(values[best_slot])
                    if best_value >= thresh[person]:
                        break
                    refresh(np.array([person], dtype=np.int64))
                if cache_width > 1:
                    second = max(
                        float(np.partition(values, cache_width - 2)[-2]),
                        float(thresh[person]),
                    )
                else:
                    second = max(best_value - span, float(thresh[person]))
                obj = int(cols[best_slot])
                prices[obj] += (best_value - second) + epsilon
                price_updates += 1
                previous = int(owner[obj])
                owner[obj] = person
                assigned[person] = obj
                if previous >= 0:
                    assigned[previous] = -1
                    unassigned.append(previous)
                continue
            people = np.array(unassigned, dtype=np.int64)
            best_value, second, best_obj = cached_best(people)
            bids = prices[best_obj] + (best_value - second) + epsilon
            # Highest bid per object; every accepted bid strictly
            # exceeds the old price, so the maximum IS the winning bid.
            np.maximum.at(prices, best_obj, bids)
            # Winner per object: sort by (object, -bid, person) and
            # keep the first row of each object group — the highest
            # bid, ties broken toward the lowest person index.
            order = np.lexsort((people, -bids, best_obj))
            ordered_obj = best_obj[order]
            first = np.ones(order.size, dtype=bool)
            first[1:] = ordered_obj[1:] != ordered_obj[:-1]
            winners = order[first]
            won_obj = best_obj[winners]
            won_person = people[winners]
            price_updates += int(winners.size)
            evicted = owner[won_obj]
            evicted = evicted[evicted >= 0]
            assigned[evicted] = -1
            owner[won_obj] = won_person
            assigned[won_person] = won_obj
            lost = np.ones(people.size, dtype=bool)
            lost[winners] = False
            unassigned = list(people[lost]) + list(evicted)
        if epsilon <= epsilon_final:
            break
        epsilon = max(epsilon / scaling, epsilon_final)
    obs.count("auction.bids", rounds)
    obs.count("auction.price_updates", price_updates)
    obs.count("auction.phases", phases)
    return assigned, prices
