"""Stable matching: Gale–Shapley deferred acceptance, many-to-one.

In the matching-theory view of a two-sided market, "mutual benefit" has
a classical formalization: a matching is *stable* when no worker-task
pair prefers each other to what they currently hold (no *blocking
pair*).  Deferred acceptance computes a stable many-to-one matching in
O(n·m); it is the natural matching-theory baseline for the MBA problem
and the F19 experiment compares them:

* DA yields (essentially) zero blocking pairs but optimizes nobody's
  *total* benefit;
* the MBA solvers maximize total benefit and tolerate a few blocking
  pairs — the price of utilitarian optimality.

Preferences here are induced by the benefit matrices: worker ``i``
ranks tasks by worker-side benefit, task ``j`` ranks workers by
requester-side benefit, and only positive-benefit partners are
acceptable (matching an unacceptable partner would itself be blocked by
the outside option).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro import obs
from repro.errors import ValidationError


def deferred_acceptance(
    worker_preferences: np.ndarray,
    task_preferences: np.ndarray,
    worker_capacities: np.ndarray,
    task_capacities: np.ndarray,
) -> list[tuple[int, int]]:
    """Worker-proposing deferred acceptance with capacities on both sides.

    Parameters
    ----------
    worker_preferences:
        ``(n, m)`` scores: worker ``i``'s value for task ``j``; only
        strictly positive entries are acceptable.
    task_preferences:
        ``(n, m)`` scores: task ``j``'s value for worker ``i``; only
        strictly positive entries are acceptable.
    worker_capacities / task_capacities:
        How many partners each side can hold.

    Returns
    -------
    Matched (worker, task) edges.  The result is stable w.r.t. the
    given preferences under the standard responsive-preference
    semantics: no mutually-acceptable pair exists where both sides
    would profitably deviate (taking an open slot or displacing their
    worst-held partner).
    """
    worker_preferences = np.asarray(worker_preferences, dtype=float)
    task_preferences = np.asarray(task_preferences, dtype=float)
    if worker_preferences.shape != task_preferences.shape:
        raise ValidationError(
            "preference matrices must share a shape, got "
            f"{worker_preferences.shape} vs {task_preferences.shape}"
        )
    n, m = worker_preferences.shape
    worker_capacities = np.asarray(worker_capacities, dtype=int)
    task_capacities = np.asarray(task_capacities, dtype=int)
    if worker_capacities.shape != (n,) or task_capacities.shape != (m,):
        raise ValidationError("capacity vectors must match matrix shape")

    # Each worker's proposal order: acceptable tasks, best first.
    proposal_order: list[deque[int]] = []
    for i in range(n):
        acceptable = [
            j for j in range(m) if worker_preferences[i, j] > 0
            and task_preferences[i, j] > 0
        ]
        acceptable.sort(key=lambda j: -worker_preferences[i, j])
        proposal_order.append(deque(acceptable))

    held_by_task: list[list[int]] = [[] for _ in range(m)]
    held_by_worker: list[set[int]] = [set() for _ in range(n)]
    # Workers with spare capacity and proposals left.
    free = deque(
        i for i in range(n) if worker_capacities[i] > 0 and proposal_order[i]
    )

    proposal_rounds = 0
    proposals = 0
    displacements = 0
    while free:
        i = free.popleft()
        proposal_rounds += 1
        while (
            len(held_by_worker[i]) < worker_capacities[i]
            and proposal_order[i]
        ):
            j = proposal_order[i].popleft()
            proposals += 1
            capacity = task_capacities[j]
            if capacity <= 0:
                continue
            if len(held_by_task[j]) < capacity:
                held_by_task[j].append(i)
                held_by_worker[i].add(j)
            else:
                worst = min(
                    held_by_task[j], key=lambda w: task_preferences[w, j]
                )
                if task_preferences[i, j] > task_preferences[worst, j]:
                    held_by_task[j].remove(worst)
                    held_by_worker[worst].discard(j)
                    held_by_task[j].append(i)
                    held_by_worker[i].add(j)
                    displacements += 1
                    if proposal_order[worst]:
                        free.append(worst)
        # A displaced worker re-enters via the free queue above.
    obs.count("stable.proposal_rounds", proposal_rounds)
    obs.count("stable.proposals", proposals)
    obs.count("stable.displacements", displacements)

    return sorted(
        (i, j) for j in range(m) for i in held_by_task[j]
    )


def blocking_pairs(
    edges: list[tuple[int, int]],
    worker_preferences: np.ndarray,
    task_preferences: np.ndarray,
    worker_capacities: np.ndarray,
    task_capacities: np.ndarray,
) -> list[tuple[int, int]]:
    """All blocking pairs of a matching under the induced preferences.

    A mutually-acceptable pair (i, j) ∉ M blocks M when *both* sides
    would deviate: worker ``i`` has spare capacity or holds a task
    worse than ``j``, and task ``j`` has a spare slot or holds a worker
    worse than ``i``.  Fewer blocking pairs = more "mutually
    agreeable" in the matching-theory sense; F19 reports the count.
    """
    worker_preferences = np.asarray(worker_preferences, dtype=float)
    task_preferences = np.asarray(task_preferences, dtype=float)
    n, m = worker_preferences.shape
    edge_set = set(edges)
    held_by_worker: dict[int, list[int]] = {}
    held_by_task: dict[int, list[int]] = {}
    for i, j in edges:
        held_by_worker.setdefault(i, []).append(j)
        held_by_task.setdefault(j, []).append(i)

    worker_capacities = np.asarray(worker_capacities, dtype=int)
    task_capacities = np.asarray(task_capacities, dtype=int)
    blockers: list[tuple[int, int]] = []
    for i in range(n):
        for j in range(m):
            if (i, j) in edge_set:
                continue
            if worker_preferences[i, j] <= 0 or task_preferences[i, j] <= 0:
                continue
            worker_holdings = held_by_worker.get(i, [])
            worker_wants = len(worker_holdings) < worker_capacities[i] or any(
                worker_preferences[i, held] < worker_preferences[i, j]
                for held in worker_holdings
            )
            if not worker_wants:
                continue
            task_holdings = held_by_task.get(j, [])
            task_wants = len(task_holdings) < task_capacities[j] or any(
                task_preferences[held, j] < task_preferences[i, j]
                for held in task_holdings
            )
            if task_wants:
                blockers.append((i, j))
    return blockers
