"""Online bipartite matching algorithms.

Left vertices (workers) arrive one at a time; each must be matched
immediately and irrevocably to a still-available right vertex (task
slot) or dropped.  Three algorithms:

* :func:`online_greedy_matching` — match each arrival to its best
  available edge.  1/2-competitive for weighted matching under random
  order.
* :func:`ranking_matching` — the Karp–Vazirani–Vazirani RANKING
  algorithm for *unweighted* matching, (1−1/e)-competitive against
  adversarial order.  Included as the classical baseline.
* :func:`two_phase_matching` — observe the first ``sample_fraction``
  of arrivals greedily, then use the optimal matching on the observed
  prefix as a price guide for the remainder (the sample-and-price
  design used by the TGOA line of online task-assignment algorithms).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.matching.hungarian import max_weight_assignment
from repro.utils.rng import SeedLike, as_rng

#: Returns the weight of (left, right) or None if the edge is absent.
WeightFn = Callable[[int, int], float | None]


def _check_order(order: Sequence[int], n_left: int) -> None:
    if sorted(order) != list(range(n_left)):
        raise ValidationError(
            f"order must be a permutation of range({n_left})"
        )


def online_greedy_matching(
    order: Sequence[int],
    n_right: int,
    weight_of: WeightFn,
    right_capacities: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """Greedy online weighted matching with optional right capacities.

    Each arriving left vertex takes its maximum-positive-weight right
    vertex among those with remaining capacity, or stays unmatched if
    every candidate edge is non-positive/absent.
    """
    _check_order(order, len(order))
    remaining = (
        list(right_capacities)
        if right_capacities is not None
        else [1] * n_right
    )
    if len(remaining) != n_right:
        raise ValidationError(
            f"right_capacities has {len(remaining)} entries, expected {n_right}"
        )
    matches: list[tuple[int, int]] = []
    for left in order:
        best_right = -1
        best_weight = 0.0
        for right in range(n_right):
            if remaining[right] <= 0:
                continue
            w = weight_of(left, right)
            if w is not None and w > best_weight:
                best_weight = w
                best_right = right
        if best_right >= 0:
            remaining[best_right] -= 1
            matches.append((left, best_right))
    return matches


def ranking_matching(
    order: Sequence[int],
    n_right: int,
    neighbors: Callable[[int], Sequence[int]],
    seed: SeedLike = None,
) -> list[tuple[int, int]]:
    """KVV RANKING for unweighted online bipartite matching.

    Right vertices are ranked uniformly at random up front; each
    arriving left vertex matches its *highest-ranked* free neighbour.
    """
    _check_order(order, len(order))
    rng = as_rng(seed)
    rank = rng.permutation(n_right)
    free = [True] * n_right
    matches: list[tuple[int, int]] = []
    for left in order:
        candidates = [r for r in neighbors(left) if 0 <= r < n_right and free[r]]
        if candidates:
            chosen = min(candidates, key=lambda r: rank[r])
            free[chosen] = False
            matches.append((left, chosen))
    return matches


def two_phase_matching(
    order: Sequence[int],
    n_right: int,
    weight_of: WeightFn,
    right_capacities: Sequence[int] | None = None,
    sample_fraction: float = 0.5,
) -> list[tuple[int, int]]:
    """Sample-and-price online matching.

    Phase 1 (the first ``sample_fraction`` of arrivals): match greedily
    — these arrivals still produce value, unlike the classical
    secretary algorithm that discards its sample.

    Phase 2: compute the optimal assignment of the *observed* left
    vertices to the remaining right capacity; the weight each right
    vertex earns there becomes its price.  Later arrivals only take a
    right vertex if they beat its price, which filters out
    low-value grabs that would block high-value future edges.
    """
    _check_order(order, len(order))
    if not 0.0 <= sample_fraction <= 1.0:
        raise ValidationError(
            f"sample_fraction must lie in [0, 1], got {sample_fraction}"
        )
    n_left = len(order)
    cutoff = int(round(sample_fraction * n_left))
    sample, rest = list(order[:cutoff]), list(order[cutoff:])

    remaining = (
        list(right_capacities)
        if right_capacities is not None
        else [1] * n_right
    )
    matches: list[tuple[int, int]] = []

    def greedy_step(left: int, threshold: Sequence[float]) -> None:
        best_right, best_weight = -1, 0.0
        for right in range(n_right):
            if remaining[right] <= 0:
                continue
            w = weight_of(left, right)
            if w is None:
                continue
            if w > threshold[right] and w > best_weight:
                best_weight = w
                best_right = right
        if best_right >= 0:
            remaining[best_right] -= 1
            matches.append((left, best_right))

    zero_threshold = [0.0] * n_right
    for left in sample:
        greedy_step(left, zero_threshold)

    # Price each right vertex by its earnings in the optimal assignment
    # of the sampled left vertices (capacity-expanded columns).  Only
    # vertices with remaining capacity get slots: an exhausted vertex
    # can never be taken in phase 2, and a phantom slot for it would
    # absorb sample rows that should price the live vertices.
    prices = [0.0] * n_right
    slots: list[int] = []
    for right in range(n_right):
        if remaining[right] > 0:
            slots.extend([right] * remaining[right])
    if sample and slots:
        weight_rows = np.zeros((len(sample), len(slots)))
        for si, left in enumerate(sample):
            for ci, right in enumerate(slots):
                w = weight_of(left, right)
                weight_rows[si, ci] = w if w is not None else 0.0
        assignment, _total = max_weight_assignment(weight_rows)
        for si, ci in enumerate(assignment):
            if ci >= 0:
                right = slots[ci]
                prices[right] = max(prices[right], float(weight_rows[si, ci]))

    for left in rest:
        greedy_step(left, prices)
    return matches
