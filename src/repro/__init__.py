"""repro — Mutual Benefit Aware Task Assignment in a Bipartite Labor Market.

A from-scratch reproduction of Zheng & Chen, ICDE 2016.  The public API
covers the full pipeline::

    from repro import (
        uniform_market, MBAProblem, LinearCombiner, get_solver,
        Simulation, Scenario,
    )

    market = uniform_market(n_workers=100, n_tasks=50, seed=7)
    problem = MBAProblem(market, combiner=LinearCombiner(lam=0.5))
    assignment = get_solver("flow").solve(problem)
    print(assignment.requester_total(), assignment.worker_total())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.benefit import (
    BenefitMatrices,
    EgalitarianCombiner,
    LinearCombiner,
    MutualCombiner,
    NashCombiner,
    NetRewardBenefit,
    NormalizedBenefit,
    QualityGainBenefit,
    build_benefit_matrices,
    make_combiner,
    normalized_problem,
)
from repro.core import (
    Assignment,
    AssignmentReport,
    CoverageObjective,
    LinearObjective,
    MBAProblem,
    analyze,
    get_solver,
    list_solvers,
)
from repro.io import load_market, save_market
from repro.datagen import (
    SyntheticConfig,
    amt_like_market,
    generate_market,
    uniform_market,
    upwork_like_market,
    zipf_market,
)
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    DeadlineExceededError,
    InfeasibleError,
    ReproError,
    ResilienceExhaustedError,
    SolverError,
    ValidationError,
)
from repro.resilience import (
    FaultPlan,
    ResilientSolver,
    RetryPolicy,
    SolveReport,
)
from repro.market import (
    CategoryTaxonomy,
    LaborMarket,
    Requester,
    RetentionModel,
    Task,
    Worker,
)
from repro.sim import Scenario, Simulation, SimulationResult
from repro.types import Combiner

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "AssignmentReport",
    "BenefitMatrices",
    "CategoryTaxonomy",
    "Combiner",
    "ConfigurationError",
    "ConvergenceError",
    "CoverageObjective",
    "DeadlineExceededError",
    "FaultPlan",
    "EgalitarianCombiner",
    "InfeasibleError",
    "LaborMarket",
    "LinearCombiner",
    "LinearObjective",
    "MBAProblem",
    "MutualCombiner",
    "NashCombiner",
    "NetRewardBenefit",
    "NormalizedBenefit",
    "QualityGainBenefit",
    "ReproError",
    "Requester",
    "ResilienceExhaustedError",
    "ResilientSolver",
    "RetentionModel",
    "RetryPolicy",
    "Scenario",
    "Simulation",
    "SimulationResult",
    "SolveReport",
    "SolverError",
    "SyntheticConfig",
    "Task",
    "ValidationError",
    "Worker",
    "amt_like_market",
    "analyze",
    "build_benefit_matrices",
    "generate_market",
    "get_solver",
    "list_solvers",
    "load_market",
    "make_combiner",
    "normalized_problem",
    "save_market",
    "uniform_market",
    "upwork_like_market",
    "zipf_market",
    "__version__",
]
