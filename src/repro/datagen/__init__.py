"""Workload generation: synthetic markets and trace-shaped substitutes.

The paper evaluated on real platform traces we do not have; per the
substitution policy (DESIGN.md §4) this package generates markets whose
*distributional shape* matches published aggregate statistics of real
micro-task (AMT-like) and freelance (Upwork-like) markets.  All
generators are fully seeded.
"""

from repro.datagen.synthetic import (
    SyntheticConfig,
    generate_market,
    uniform_market,
    zipf_market,
)
from repro.datagen.traces import amt_like_market, upwork_like_market

__all__ = [
    "SyntheticConfig",
    "amt_like_market",
    "generate_market",
    "uniform_market",
    "upwork_like_market",
    "zipf_market",
]
