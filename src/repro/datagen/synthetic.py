"""Parametric synthetic market generation.

A :class:`SyntheticConfig` names every distributional knob the
experiments sweep; :func:`generate_market` materializes a seeded
:class:`~repro.market.market.LaborMarket` from it.  The two convenience
constructors, :func:`uniform_market` and :func:`zipf_market`, are the
"synthetic-uniform" and "synthetic-zipf" workloads of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.market.categories import CategoryTaxonomy
from repro.market.market import LaborMarket
from repro.market.requester import Requester
from repro.market.task import Task
from repro.market.worker import Worker
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class SyntheticConfig:
    """All knobs of the synthetic market generator.

    Attributes
    ----------
    n_workers / n_tasks / n_categories:
        Population sizes.
    skill_distribution:
        ``"uniform"`` (skills ~ U[skill_low, skill_high]),
        ``"gaussian"`` (clipped normal around skill_mean/skill_std),
        ``"zipf"`` (a few experts per category, most workers mediocre),
        or ``"bimodal"`` (a trained minority near skill_high, a novice
        majority near skill_low — the two-population shape real
        qualification tests induce).
    skill_low / skill_high / skill_mean / skill_std / zipf_exponent:
        Parameters of the above.
    category_popularity:
        ``"uniform"`` or ``"zipf"`` — how task categories are drawn.
    difficulty_low / difficulty_high:
        Task difficulty range (uniform).
    payment_mean / payment_sigma:
        Log-normal payment parameters (real market payments are
        heavy-tailed).
    capacity_low / capacity_high:
        Worker capacity range (uniform integer, inclusive).
    replication_choices:
        Replication factors tasks draw from (uniformly).
    reservation_fraction:
        Worker reservation wage as a fraction of the mean payment.
    effort:
        Effort units per task (drives the worker-side cost; raising it
        relative to ``payment_mean`` creates tasks that *lose* workers
        money — the regime where ignoring the worker side bites).
    n_requesters:
        Tasks are spread over this many requesters (0 = standalone).
    """

    n_workers: int = 100
    n_tasks: int = 50
    n_categories: int = 10
    skill_distribution: str = "uniform"
    skill_low: float = 0.5
    skill_high: float = 0.95
    skill_mean: float = 0.75
    skill_std: float = 0.12
    zipf_exponent: float = 1.5
    category_popularity: str = "uniform"
    difficulty_low: float = 0.0
    difficulty_high: float = 0.6
    payment_mean: float = 1.0
    payment_sigma: float = 0.35
    capacity_low: int = 1
    capacity_high: int = 3
    replication_choices: tuple[int, ...] = (1, 3, 5)
    reservation_fraction: float = 0.2
    effort: float = 1.0
    n_requesters: int = 5

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_tasks < 1 or self.n_categories < 1:
            raise ConfigurationError(
                "n_workers, n_tasks, n_categories must all be >= 1"
            )
        if self.skill_distribution not in (
            "uniform", "gaussian", "zipf", "bimodal"
        ):
            raise ConfigurationError(
                f"unknown skill_distribution {self.skill_distribution!r}"
            )
        if self.category_popularity not in ("uniform", "zipf"):
            raise ConfigurationError(
                f"unknown category_popularity {self.category_popularity!r}"
            )
        if not 0.0 <= self.skill_low <= self.skill_high <= 1.0:
            raise ConfigurationError(
                "need 0 <= skill_low <= skill_high <= 1"
            )
        if not 0.0 <= self.difficulty_low <= self.difficulty_high <= 1.0:
            raise ConfigurationError(
                "need 0 <= difficulty_low <= difficulty_high <= 1"
            )
        if self.capacity_low < 0 or self.capacity_high < self.capacity_low:
            raise ConfigurationError(
                "need 0 <= capacity_low <= capacity_high"
            )
        if not self.replication_choices or min(self.replication_choices) < 1:
            raise ConfigurationError(
                "replication_choices must be non-empty with entries >= 1"
            )
        if self.effort <= 0:
            raise ConfigurationError("effort must be > 0")

    def scaled(self, n_workers: int, n_tasks: int) -> "SyntheticConfig":
        """Copy with different population sizes (for scalability sweeps)."""
        return replace(self, n_workers=n_workers, n_tasks=n_tasks)


def _draw_skills(
    config: SyntheticConfig, rng: np.random.Generator
) -> np.ndarray:
    shape = (config.n_workers, config.n_categories)
    if config.skill_distribution == "uniform":
        return rng.uniform(config.skill_low, config.skill_high, shape)
    if config.skill_distribution == "gaussian":
        skills = rng.normal(config.skill_mean, config.skill_std, shape)
        return np.clip(skills, 0.0, 1.0)
    if config.skill_distribution == "bimodal":
        # ~30 % trained workers near the ceiling, the rest near the
        # floor; per-worker membership, small per-category jitter.
        trained = rng.random(config.n_workers) < 0.3
        centers = np.where(trained, config.skill_high, config.skill_low)
        skills = centers[:, np.newaxis] + rng.normal(0.0, 0.05, shape)
        return np.clip(skills, 0.0, 1.0)
    # zipf: each worker's base quality is Pareto-tailed above 0.5, so a
    # small elite is near-perfect while the mass sits near the floor.
    base = rng.pareto(config.zipf_exponent, shape)
    normalized = base / (base + 1.0)  # maps [0, inf) -> [0, 1)
    return config.skill_low + (config.skill_high - config.skill_low) * normalized


def _draw_categories(
    config: SyntheticConfig, rng: np.random.Generator
) -> np.ndarray:
    if config.category_popularity == "uniform":
        return rng.integers(0, config.n_categories, config.n_tasks)
    ranks = np.arange(1, config.n_categories + 1, dtype=float)
    weights = ranks ** (-config.zipf_exponent)
    weights /= weights.sum()
    return rng.choice(config.n_categories, size=config.n_tasks, p=weights)


def generate_market(
    config: SyntheticConfig, seed: SeedLike = None
) -> LaborMarket:
    """Materialize a seeded market from a config."""
    rng = as_rng(seed)
    taxonomy = CategoryTaxonomy.default(config.n_categories)

    skills = _draw_skills(config, rng)
    interests = rng.uniform(0.0, 1.0, skills.shape)
    capacities = rng.integers(
        config.capacity_low, config.capacity_high + 1, config.n_workers
    )
    reservation = config.reservation_fraction * config.payment_mean
    workers = [
        Worker(
            worker_id=i,
            skills=skills[i],
            capacity=int(capacities[i]),
            reservation_wage=reservation,
            interests=interests[i],
        )
        for i in range(config.n_workers)
    ]

    categories = _draw_categories(config, rng)
    difficulties = rng.uniform(
        config.difficulty_low, config.difficulty_high, config.n_tasks
    )
    payments = rng.lognormal(
        np.log(config.payment_mean), config.payment_sigma, config.n_tasks
    )
    replications = rng.choice(config.replication_choices, config.n_tasks)
    requester_ids = (
        rng.integers(0, config.n_requesters, config.n_tasks)
        if config.n_requesters > 0
        else np.full(config.n_tasks, -1)
    )
    tasks = [
        Task(
            task_id=j,
            category=int(categories[j]),
            difficulty=float(difficulties[j]),
            payment=float(payments[j]),
            replication=int(replications[j]),
            requester_id=int(requester_ids[j]),
            effort=config.effort,
        )
        for j in range(config.n_tasks)
    ]
    requesters = [
        Requester(requester_id=r) for r in range(config.n_requesters)
    ]
    return LaborMarket(workers, tasks, taxonomy, requesters)


def uniform_market(
    n_workers: int = 100, n_tasks: int = 50, seed: SeedLike = None
) -> LaborMarket:
    """The "synthetic-uniform" workload: everything uniform."""
    return generate_market(
        SyntheticConfig(n_workers=n_workers, n_tasks=n_tasks), seed
    )


def zipf_market(
    n_workers: int = 100, n_tasks: int = 50, seed: SeedLike = None
) -> LaborMarket:
    """The "synthetic-zipf" workload: skewed skills and categories."""
    return generate_market(
        SyntheticConfig(
            n_workers=n_workers,
            n_tasks=n_tasks,
            skill_distribution="zipf",
            category_popularity="zipf",
        ),
        seed,
    )
