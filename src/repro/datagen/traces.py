"""Trace-shaped market generators (the real-data substitutes).

The paper evaluated on real labor-market traces; those are proprietary.
These two generators produce markets whose aggregate statistics match
what is publicly documented about the two market archetypes.  The
algorithms only ever see benefit matrices and arrival orders, so
matching the distributional shape exercises the same code paths.

**AMT-like (micro-task)** — many cheap tasks, modest worker pool, high
capacities, high replication, worker accuracy mostly 0.6–0.95 with the
documented long tail of low-quality workers, Zipf-popular categories.

**Upwork-like (freelance)** — fewer, expensive tasks, replication 1
(one freelancer per job), low worker capacity (1–2 concurrent jobs),
strongly specialized skills (high in 1–2 categories, low elsewhere),
log-normal budgets with a heavy tail, meaningful reservation wages.
"""

from __future__ import annotations

import numpy as np

from repro.market.categories import CategoryTaxonomy
from repro.market.market import LaborMarket
from repro.market.requester import Requester
from repro.market.task import Task
from repro.market.worker import Worker
from repro.utils.rng import SeedLike, as_rng


def amt_like_market(
    n_workers: int = 200, n_tasks: int = 100, seed: SeedLike = None
) -> LaborMarket:
    """Micro-task platform shape (Mechanical-Turk-like)."""
    rng = as_rng(seed)
    n_categories = 10
    taxonomy = CategoryTaxonomy.default(n_categories)

    # Worker accuracy: beta(6, 2) has mean ~0.75 and the documented tail
    # of sub-0.5 spammy workers (~3 %); skills correlate across
    # categories through a per-worker base plus small category jitter.
    base = rng.beta(6.0, 2.0, n_workers)
    jitter = rng.normal(0.0, 0.05, (n_workers, n_categories))
    skills = np.clip(base[:, np.newaxis] + jitter, 0.0, 1.0)
    interests = rng.uniform(0.0, 1.0, (n_workers, n_categories))
    # Activity is heavy-tailed: most workers do a handful of HITs, a few
    # do hundreds. Capacity = 1 + Pareto-ish draw, capped.
    capacity = 1 + np.minimum(
        rng.pareto(1.2, n_workers).astype(int), 9
    )
    workers = [
        Worker(
            worker_id=i,
            skills=skills[i],
            capacity=int(capacity[i]),
            reservation_wage=0.02,
            interests=interests[i],
        )
        for i in range(n_workers)
    ]

    # Categories Zipf-popular; payments are cents-scale; replication is
    # 3 or 5 (answer aggregation is the point of micro-tasks).
    ranks = np.arange(1, n_categories + 1, dtype=float)
    weights = ranks ** -1.2
    weights /= weights.sum()
    categories = rng.choice(n_categories, size=n_tasks, p=weights)
    payments = np.round(rng.lognormal(np.log(0.08), 0.6, n_tasks), 3)
    payments = np.maximum(payments, 0.01)
    difficulties = rng.beta(2.0, 4.0, n_tasks)  # mostly easy, some hard
    replication = rng.choice([3, 5], size=n_tasks, p=[0.7, 0.3])
    requester_ids = rng.integers(0, max(n_tasks // 20, 1), n_tasks)
    tasks = [
        Task(
            task_id=j,
            category=int(categories[j]),
            difficulty=float(difficulties[j]),
            payment=float(payments[j]),
            replication=int(replication[j]),
            requester_id=int(requester_ids[j]),
            effort=0.2,
        )
        for j in range(n_tasks)
    ]
    requesters = [
        Requester(requester_id=r) for r in range(int(requester_ids.max()) + 1)
    ]
    return LaborMarket(workers, tasks, taxonomy, requesters)


def upwork_like_market(
    n_workers: int = 150, n_tasks: int = 60, seed: SeedLike = None
) -> LaborMarket:
    """Freelance marketplace shape (Upwork/oDesk-like)."""
    rng = as_rng(seed)
    n_categories = 8
    taxonomy = CategoryTaxonomy.default(n_categories)

    # Freelancers are specialists: 1–2 strong categories, weak elsewhere.
    skills = rng.uniform(0.35, 0.55, (n_workers, n_categories))
    for i in range(n_workers):
        n_special = int(rng.integers(1, 3))
        special = rng.choice(n_categories, size=n_special, replace=False)
        skills[i, special] = rng.uniform(0.75, 0.98, n_special)
    interests = np.clip(
        skills + rng.normal(0.0, 0.15, skills.shape), 0.0, 1.0
    )
    capacity = rng.choice([1, 2], size=n_workers, p=[0.7, 0.3])
    # Hourly-rate-like reservation wages, log-normal.
    reservations = rng.lognormal(np.log(3.0), 0.5, n_workers)
    workers = [
        Worker(
            worker_id=i,
            skills=skills[i],
            capacity=int(capacity[i]),
            reservation_wage=float(reservations[i]),
            interests=interests[i],
        )
        for i in range(n_workers)
    ]

    categories = rng.integers(0, n_categories, n_tasks)
    payments = rng.lognormal(np.log(8.0), 0.8, n_tasks)  # heavy tail
    difficulties = rng.beta(3.0, 3.0, n_tasks)  # centered, varied
    requester_ids = rng.integers(0, max(n_tasks // 4, 1), n_tasks)
    tasks = [
        Task(
            task_id=j,
            category=int(categories[j]),
            difficulty=float(difficulties[j]),
            payment=float(payments[j]),
            replication=1,  # one freelancer per job
            requester_id=int(requester_ids[j]),
            effort=2.0,
        )
        for j in range(n_tasks)
    ]
    requesters = [
        Requester(requester_id=r) for r in range(int(requester_ids.max()) + 1)
    ]
    return LaborMarket(workers, tasks, taxonomy, requesters)


def workload_registry():
    """Name -> generator for the four Table-1 workloads."""
    from repro.datagen.synthetic import uniform_market, zipf_market

    return {
        "synthetic-uniform": uniform_market,
        "synthetic-zipf": zipf_market,
        "amt-like": amt_like_market,
        "upwork-like": upwork_like_market,
    }
