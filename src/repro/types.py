"""Common type aliases and enumerations shared across subpackages."""

from __future__ import annotations

import enum
from typing import TypeAlias

import numpy as np

WorkerId: TypeAlias = int
TaskId: TypeAlias = int
CategoryId: TypeAlias = int
Edge: TypeAlias = tuple[WorkerId, TaskId]

#: A dense benefit matrix indexed ``[worker_index, task_index]``.
BenefitMatrix: TypeAlias = np.ndarray


class Side(enum.Enum):
    """The two sides of the bipartite labor market."""

    REQUESTER = "requester"
    WORKER = "worker"


class Combiner(enum.Enum):
    """How the two sides' benefits are combined into a mutual objective.

    ``LINEAR``       weighted sum  ``lam * B_req + (1 - lam) * B_wrk``
    ``EGALITARIAN``  ``min`` of the two (normalized) side totals
    ``NASH``         sum of logs (Nash bargaining product)
    ``COVERAGE``     submodular per-task quality + linear worker benefit
    """

    LINEAR = "linear"
    EGALITARIAN = "egalitarian"
    NASH = "nash"
    COVERAGE = "coverage"


class ArrivalOrder(enum.Enum):
    """How online entities arrive in a simulated stream."""

    RANDOM = "random"
    ADVERSARIAL = "adversarial"
    TRACE = "trace"
