"""Round-based market simulation.

The simulator closes the loop the abstract describes: assignment
quality and worker willingness feed back into each other.  Each round:

1. fresh tasks are posted (regenerated from the scenario's task
   distribution);
2. the scenario's solver assigns active workers to tasks;
3. assigned workers produce answers; answers are aggregated; accuracy
   against ground truth is recorded;
4. workers receive their worker-side benefit; the retention model
   updates satisfaction and stochastically churns dissatisfied workers.

Long-run metrics (experiments T4/F5) come out of this loop.
"""

from repro.sim.engine import Simulation
from repro.sim.events import EventSimConfig, EventSimResult, EventSimulation
from repro.sim.metrics import RoundMetrics, SimulationResult
from repro.sim.scenario import Scenario

__all__ = [
    "EventSimConfig",
    "EventSimResult",
    "EventSimulation",
    "RoundMetrics",
    "Scenario",
    "Simulation",
    "SimulationResult",
]
