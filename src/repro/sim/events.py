"""Event-driven continuous-time market simulation.

The round-based engine (:mod:`repro.sim.engine`) assumes synchronized
batches.  Real platforms are asynchronous: tasks are posted with
deadlines, workers log in and out, and assignment decisions happen *at
arrival instants*.  This module is a classic discrete-event simulator
over that dynamic:

* ``TaskPosted(time, task)``     — a task enters the open pool;
* ``TaskDeadline(time, task)``   — an unfilled task expires (lost);
* ``WorkerLogin(time, worker)``  — a worker becomes available and is
  immediately offered tasks by the dispatch policy;
* ``WorkerLogout(time, worker)`` — a worker leaves; unstarted offers
  are returned to the pool.

Dispatch policies mirror the online solvers: ``greedy`` (take the best
open tasks above zero) and ``threshold`` (take tasks above a price that
decays as their deadline nears — the continuous-time analogue of
sample-and-price).  Metrics: fill rate, expired tasks, realized
benefit, mean time-to-assignment.

The heap is only the *clock*: each popped entry is translated into a
typed :mod:`repro.stream.events` event and published on an
:class:`~repro.stream.bus.EventBus`, whose handlers hold all the
simulation logic.  Worker capacity is session-scoped through a
:class:`~repro.stream.sessions.SessionLedger`: when a worker's
sessions overlap, each logout withdraws only its own remaining grant
(a flat ``online`` dict would let the first logout destroy the
capacity the second login granted).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.benefit.matrices import BenefitMatrices, build_benefit_matrices
from repro.benefit.mutual import LinearCombiner, MutualCombiner
from repro.errors import ConfigurationError, ValidationError
from repro.market.market import LaborMarket
from repro.stream.bus import EventBus
from repro.stream.events import (
    TaskExpired,
    TaskPosted,
    WorkerLogin,
    WorkerLogout,
)
from repro.stream.sessions import SessionLedger
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class EventLogEntry:
    """One processed event, for inspection and tests."""

    time: float
    kind: str
    entity_id: int
    detail: str = ""


@dataclass
class EventSimConfig:
    """Configuration for the event-driven simulation.

    Attributes
    ----------
    horizon:
        Simulated time span.
    task_rate / worker_rate:
        Poisson rates of task postings and worker logins per time unit.
    deadline:
        Time a posted task stays open before expiring.
    session_length:
        How long a logged-in worker stays before logging out.
    policy:
        ``"greedy"`` or ``"threshold"``.
    threshold_start:
        Initial price for the threshold policy, as a fraction of the
        market's maximum edge benefit; decays linearly to 0 over each
        task's deadline window.
    """

    horizon: float = 100.0
    task_rate: float = 1.0
    worker_rate: float = 1.0
    deadline: float = 10.0
    session_length: float = 5.0
    policy: str = "greedy"
    threshold_start: float = 0.5

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be > 0")
        if self.task_rate <= 0 or self.worker_rate <= 0:
            raise ConfigurationError("rates must be > 0")
        if self.deadline <= 0 or self.session_length <= 0:
            raise ConfigurationError(
                "deadline and session_length must be > 0"
            )
        if self.policy not in ("greedy", "threshold"):
            raise ConfigurationError(f"unknown policy {self.policy!r}")
        if not 0.0 <= self.threshold_start <= 1.0:
            raise ConfigurationError(
                "threshold_start must lie in [0, 1]"
            )


@dataclass
class EventSimResult:
    """Aggregate outcome of one event-driven run."""

    assignments: list[tuple[float, int, int]] = field(default_factory=list)
    expired_tasks: int = 0
    posted_tasks: int = 0
    combined_benefit: float = 0.0
    requester_benefit: float = 0.0
    worker_benefit: float = 0.0
    waiting_times: list[float] = field(default_factory=list)
    log: list[EventLogEntry] = field(default_factory=list)

    @property
    def fill_rate(self) -> float:
        """Fraction of posted task slots that got a worker in time."""
        if self.posted_tasks == 0:
            return 0.0
        return len(self.assignments) / self.posted_tasks

    @property
    def mean_waiting_time(self) -> float:
        if not self.waiting_times:
            return float("nan")
        return float(np.mean(self.waiting_times))


class EventSimulation:
    """Discrete-event simulation of an asynchronous market.

    The market supplies the *population*: posted tasks are sampled
    (with replacement) from ``market.tasks`` and logging-in workers
    from ``market.workers``.  Each posted task instance wants one
    worker (replication collapses to repeated postings in the
    continuous model).
    """

    def __init__(
        self,
        market: LaborMarket,
        config: EventSimConfig | None = None,
        combiner: MutualCombiner | None = None,
    ) -> None:
        if market.n_workers == 0 or market.n_tasks == 0:
            raise ValidationError(
                "event simulation needs a non-empty market"
            )
        self.market = market
        self.config = config if config is not None else EventSimConfig()
        self.combiner = combiner if combiner is not None else LinearCombiner(0.5)
        self.benefits: BenefitMatrices = build_benefit_matrices(
            market, combiner=self.combiner
        )
        self._max_benefit = float(max(self.benefits.combined.max(), 0.0))

    # -- event generation --------------------------------------------------

    def _schedule_arrivals(self, rng) -> list[tuple[float, int, str, int]]:
        """Pre-draw all Poisson arrivals over the horizon."""
        config = self.config
        counter = itertools.count()
        events: list[tuple[float, int, str, int]] = []
        time = 0.0
        while True:
            time += rng.exponential(1.0 / config.task_rate)
            if time >= config.horizon:
                break
            task_index = int(rng.integers(self.market.n_tasks))
            events.append((time, next(counter), "task-posted", task_index))
        time = 0.0
        while True:
            time += rng.exponential(1.0 / config.worker_rate)
            if time >= config.horizon:
                break
            worker_index = int(rng.integers(self.market.n_workers))
            events.append((time, next(counter), "worker-login", worker_index))
        return events

    # -- policies -----------------------------------------------------------

    def _acceptance_threshold(self, time: float, posted_at: float) -> float:
        """Price a task must beat now, under the configured policy."""
        if self.config.policy == "greedy":
            return 0.0
        # threshold: start high, decay linearly to 0 at the deadline.
        elapsed = time - posted_at
        remaining = max(1.0 - elapsed / self.config.deadline, 0.0)
        return self.config.threshold_start * self._max_benefit * remaining

    # -- main loop ------------------------------------------------------------

    def run(self, seed: SeedLike = None) -> EventSimResult:
        rng = as_rng(seed)
        config = self.config
        result = EventSimResult()
        bus = EventBus()

        counter = itertools.count(10_000_000)
        heap: list[tuple[float, int, str, int]] = []
        for event in self._schedule_arrivals(rng):
            heapq.heappush(heap, event)

        # Open task instances: instance_id -> (task_index, posted_at).
        open_tasks: dict[int, tuple[int, float]] = {}
        instance_counter = itertools.count()
        # Session-scoped capacity: overlapping logins of the same
        # worker each hold their own grant, and a logout withdraws
        # only its own session's remaining capacity.
        ledger = SessionLedger()

        def offer_tasks(worker_index: int, time: float) -> None:
            """Give an online worker their best open instances."""
            capacity = ledger.capacity(worker_index)
            if capacity <= 0:
                return
            scored = []
            for instance_id, (task_index, posted_at) in open_tasks.items():
                benefit = float(
                    self.benefits.combined[worker_index, task_index]
                )
                if benefit <= 0:
                    continue
                if benefit <= self._acceptance_threshold(time, posted_at):
                    continue
                scored.append((benefit, instance_id, task_index, posted_at))
            scored.sort(reverse=True)
            for benefit, instance_id, task_index, posted_at in scored[
                :capacity
            ]:
                del open_tasks[instance_id]
                ledger.consume(worker_index, 1)
                result.assignments.append((time, worker_index, task_index))
                result.combined_benefit += benefit
                result.requester_benefit += float(
                    self.benefits.requester[worker_index, task_index]
                )
                result.worker_benefit += float(
                    self.benefits.worker[worker_index, task_index]
                )
                result.waiting_times.append(time - posted_at)
                result.log.append(
                    EventLogEntry(time, "assigned", task_index,
                                  f"worker={worker_index}")
                )

        def on_posted(event: TaskPosted) -> None:
            open_tasks[event.instance_id] = (event.task_index, event.time)
            result.posted_tasks += 1
            result.log.append(
                EventLogEntry(event.time, event.kind, event.task_index)
            )
            heapq.heappush(
                heap,
                (event.time + config.deadline, next(counter),
                 "task-deadline", event.instance_id),
            )
            # A newly posted task may suit an already-online worker.
            for worker_index in ledger.online():
                offer_tasks(worker_index, event.time)

        def on_deadline(event: TaskExpired) -> None:
            if event.instance_id in open_tasks:
                del open_tasks[event.instance_id]
                result.expired_tasks += 1
                result.log.append(
                    EventLogEntry(
                        event.time, event.kind, event.instance_id, "expired"
                    )
                )

        def on_login(event: WorkerLogin) -> None:
            worker = self.market.workers[event.worker_index]
            if not worker.active:
                # Inactive logins must leave a trace: a silently
                # dropped event is indistinguishable from a lost one.
                result.log.append(
                    EventLogEntry(
                        event.time, event.kind, event.worker_index, "skipped"
                    )
                )
                return
            session_id = ledger.login(
                event.worker_index,
                worker.capacity,
                expires_at=event.time + config.session_length,
            )
            result.log.append(
                EventLogEntry(event.time, event.kind, event.worker_index)
            )
            heapq.heappush(
                heap,
                (event.time + config.session_length, next(counter),
                 "worker-logout", session_id),
            )
            offer_tasks(event.worker_index, event.time)

        def on_logout(event: WorkerLogout) -> None:
            ledger.logout(event.session_id)
            result.log.append(
                EventLogEntry(event.time, event.kind, event.worker_index)
            )

        bus.subscribe("task-posted", on_posted)
        bus.subscribe("task-deadline", on_deadline)
        bus.subscribe("worker-login", on_login)
        bus.subscribe("worker-logout", on_logout)

        # The heap is just the clock: pop, translate to a typed event,
        # publish.  All simulation logic lives in the bus handlers.
        while heap:
            time, _tie, kind, entity = heapq.heappop(heap)
            if time >= config.horizon:
                break
            if kind == "task-posted":
                bus.publish(
                    TaskPosted(
                        time=time,
                        task_index=entity,
                        instance_id=next(instance_counter),
                    )
                )
            elif kind == "task-deadline":
                bus.publish(TaskExpired(time=time, instance_id=entity))
            elif kind == "worker-login":
                bus.publish(
                    WorkerLogin(time=time, worker_index=entity, session_id=-1)
                )
            elif kind == "worker-logout":
                # Logout heap entries carry the *session* id.
                owner = ledger.session_worker(entity)
                bus.publish(
                    WorkerLogout(
                        time=time,
                        session_id=entity,
                        worker_index=-1 if owner is None else owner,
                    )
                )
        bus.flush_metrics()
        return result
