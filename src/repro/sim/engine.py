"""The round-based simulation engine."""

from __future__ import annotations

import dataclasses
import math
import pickle
from pathlib import Path

from repro import obs
from repro.core.assignment import Assignment
from repro.core.fairness import benefit_gini
from repro.core.problem import MBAProblem
from repro.core.solvers import get_solver
from repro.crowd.aggregation import get_aggregator
from repro.crowd.answer_model import AnswerSet, simulate_answers
from repro.crowd.estimation import BetaSkillEstimator
from repro.errors import (
    InfeasibleError,
    ResilienceExhaustedError,
    SolverError,
    ValidationError,
)
from repro.market.market import LaborMarket
from repro.market.retention import RetentionModel
from repro.resilience import CheckpointStore, ResilientSolver, SolveReport
from repro.sim.metrics import RoundMetrics, SimulationResult
from repro.sim.scenario import Scenario
from repro.utils.atomic import atomic_write_bytes
from repro.utils.rng import SeedLike, as_rng
from repro.utils.timer import Timer

SIM_STATE_SCHEMA = "repro-sim-checkpoint/1"
_STATE_NAME = "state.pkl"


class Simulation:
    """Runs a :class:`Scenario` to completion.

    The engine owns the feedback loops: benefits received this round
    move worker satisfaction, satisfaction moves participation, and —
    when an estimator is configured — each round's answers refine the
    skill estimates the next round's assignment plans with.

    Each :meth:`run` is independent: the scenario's market, retention
    model, and estimator are never mutated — workers are copied and the
    stateful models start fresh — so the same scenario can be run with
    several solvers or seeds and compared fairly.

    The engine degrades gracefully instead of crashing: a solver that
    fails a round (even without a resilience policy) costs that round,
    not the run; injected faults (see
    :class:`repro.resilience.FaultPlan`) remove the affected edges
    from realization and accounting; and every degradation is recorded
    in :class:`RoundMetrics` (``faulted_edges``, ``solver_retries``,
    ``fallback_tier``, ``solver_wall_time``) so it is visible, never
    silent.
    """

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self._mean_accuracy_cache: dict[int, float] | None = None

    def run(
        self,
        seed: SeedLike = None,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        checkpoint_every: int = 1,
    ) -> SimulationResult:
        """Simulate the scenario, optionally durably.

        ``checkpoint`` names a directory: after each completed round
        the full mutable state (RNG, workers, retention, estimator,
        solver memory, collected metrics) is pickled, and the snapshot
        is written atomically every ``checkpoint_every`` rounds, at
        the final round, and on ``KeyboardInterrupt`` (which then
        re-raises, so callers see the interrupt).  ``resume=True``
        restores the latest snapshot and continues — the resumed run
        is bit-identical to one that never stopped, because the
        snapshot carries the exact generator state.

        The checkpoint fingerprint covers everything that shapes the
        per-round values *except* ``n_rounds``, so an interrupted
        3-round checkpoint can resume into a 10-round horizon.
        ``task_refresh`` is code, not data — changing it between runs
        is not detected.
        """
        rng = as_rng(seed)
        self._mean_accuracy_cache = None
        scenario = self.scenario
        if checkpoint_every < 1:
            raise ValidationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if resume and checkpoint is None:
            raise ValidationError(
                "resume=True needs a checkpoint directory to resume "
                "from"
            )
        store = (
            CheckpointStore(checkpoint, self._fingerprint(rng))
            if checkpoint is not None
            else None
        )
        policy = scenario.resilience_policy()
        if policy is not None:
            solver = ResilientSolver(
                primary=scenario.solver_name,
                policy=policy,
                solver_kwargs=scenario.solver_kwargs,
            )
        else:
            solver = get_solver(
                scenario.solver_name, **scenario.solver_kwargs
            )
        plan = scenario.fault_plan
        result = SimulationResult(solver_name=scenario.solver_name)

        # Private copies so runs never contaminate each other.  Skill
        # and interest arrays are copied too: the drift model mutates
        # skills in place.
        base = scenario.market
        workers = [
            dataclasses.replace(
                w, skills=w.skills.copy(), interests=w.interests.copy()
            )
            for w in base.workers
        ]
        retention = (
            dataclasses.replace(scenario.retention, _satisfaction={})
            if scenario.retention is not None
            else None
        )
        estimator = (
            dataclasses.replace(scenario.estimator, _counts={})
            if scenario.estimator is not None
            else None
        )

        start_round = 0
        latest: bytes | None = None
        if resume and store is not None:
            snapshot = self._load_snapshot(store)
            if snapshot is not None:
                rng = snapshot["rng"]
                workers = snapshot["workers"]
                retention = snapshot["retention"]
                estimator = snapshot["estimator"]
                solver = snapshot["solver"]
                result.rounds = snapshot["rounds"]
                start_round = snapshot["next_round"]
                with obs.span(
                    "runtime.resume", kind="simulation",
                    rounds=start_round,
                ):
                    obs.count(
                        "resilience.runtime.checkpoint.hits", start_round
                    )
        if start_round > scenario.n_rounds:
            # Resuming into a *shorter* horizon: the extra rounds are
            # already computed; report exactly the asked-for prefix.
            result.rounds = result.rounds[: scenario.n_rounds]
            start_round = scenario.n_rounds

        def _run_round(round_index: int, round_span) -> None:
            faults = (
                plan.for_round(round_index) if plan is not None else None
            )
            tasks = self._round_tasks(round_index)
            market = LaborMarket(
                workers, tasks, base.taxonomy, base.requesters
            )
            active = market.active_worker_indices()
            if not tasks or not active:
                # Nothing posted, or nobody to do it: an empty
                # round, not an error — the run continues.
                obs.count("sim.empty_rounds")
                round_span.tag(outcome="empty")
                result.rounds.append(
                    self._empty_round(round_index, market)
                )
                return

            # Plan on estimated skills when an estimator is
            # configured; account and realize on the true market
            # either way.
            true_problem = MBAProblem(market, combiner=scenario.combiner)
            planning_problem = (
                MBAProblem(
                    estimator.estimated_market(market),
                    combiner=scenario.combiner,
                )
                if estimator is not None
                else true_problem
            )
            with obs.span(
                "assign", solver=scenario.solver_name
            ) as assign_span:
                planned, report = self._solve_round(
                    solver, planning_problem, rng, faults
                )
                assign_span.tag(
                    tier=report.tier, retries=report.retries
                )
                # Warm-start-capable solvers report how they served the
                # round (replay / warm / cold); tag it so obs diffs can
                # attribute assign-time shifts to warm-hit-rate shifts.
                warm_outcome = getattr(solver, "last_warm_outcome", None)
                if warm_outcome is not None:
                    assign_span.tag(warm=warm_outcome)
                    obs.count(f"sim.warm.{warm_outcome}")
            obs.count("sim.solver_retries", report.retries)
            if planned is None:
                # Infeasible round or exhausted solver stack: the
                # round is lost, the run continues.
                obs.count("sim.degraded_rounds")
                round_span.tag(outcome="degraded")
                result.rounds.append(
                    self._empty_round(
                        round_index,
                        market,
                        solver_retries=report.retries,
                        fallback_tier=-1,
                        solver_wall_time=report.wall_time,
                    )
                )
                return
            assignment = Assignment(
                true_problem, list(planned.edges), solver_name=solver.name
            )

            declined = 0
            if scenario.workers_decline:
                worker_matrix = true_problem.benefits.worker
                accepted = [
                    (i, j)
                    for i, j in assignment.edges
                    if worker_matrix[i, j] >= 0
                ]
                declined = len(assignment.edges) - len(accepted)
                assignment = Assignment(
                    true_problem, accepted, solver_name=solver.name
                )

            # Unfulfilled edges — worker no-shows and mid-round
            # task cancellations — vanish from realization *and*
            # accounting: no answer, no pay, no practice, no
            # satisfaction.
            faulted = 0
            if faults is not None:
                assignment, faulted = self._apply_edge_faults(
                    true_problem, assignment, faults, market.n_tasks
                )

            solver.observe_round(true_problem, assignment)

            # Dropped answers: the work happened (and is paid /
            # accounted), but the answer never reaches aggregation.
            dropped = (
                faults.dropped_answers(assignment.edges)
                if faults is not None
                else frozenset()
            )
            accuracy, answers, labels = self._realize_answers(
                market, assignment, rng, dropped
            )
            faulted += len(dropped)
            if estimator is not None and answers is not None:
                with obs.span("estimate", tasks=len(answers.answers)):
                    self._update_estimator(
                        estimator, market, answers, labels, rng
                    )
            churned = self._apply_retention(
                retention, market, assignment, rng
            )
            if scenario.drift is not None:
                scenario.drift.apply(market, list(assignment.edges))

            obs.count("sim.rounds")
            round_span.tag(outcome="ok", edges=len(assignment))
            obs.count("sim.assigned_edges", len(assignment))
            obs.count("sim.declined_edges", declined)
            obs.count("sim.faulted_edges", faulted)
            obs.count("sim.churned_workers", churned)
            result.rounds.append(
                RoundMetrics(
                    round_index=round_index,
                    n_active_workers=len(active),
                    n_assigned_edges=len(assignment),
                    requester_benefit=assignment.requester_total(),
                    worker_benefit=assignment.worker_total(),
                    combined_benefit=assignment.combined_total(),
                    aggregated_accuracy=accuracy,
                    participation_rate=(
                        sum(w.active for w in market.workers)
                        / market.n_workers
                    ),
                    benefit_gini=benefit_gini(assignment),
                    churned_workers=churned,
                    declined_edges=declined,
                    faulted_edges=faulted,
                    solver_retries=report.retries,
                    fallback_tier=report.tier,
                    solver_wall_time=report.wall_time,
                )
            )

        state_path = (
            store.root / _STATE_NAME if store is not None else None
        )
        try:
            for round_index in range(start_round, scenario.n_rounds):
                with obs.span("round", index=round_index) as round_span:
                    _run_round(round_index, round_span)
                self._scrape_round(result.rounds[-1])
                if store is None:
                    continue
                # Serialize after *every* round (the only moment the
                # state is consistent) so an interrupt always has a
                # snapshot to flush; write it out on the configured
                # cadence and at the end of the run.
                latest = self._snapshot_bytes(
                    store, round_index + 1, rng, workers, retention,
                    estimator, solver, result,
                )
                rounds_done = round_index + 1 - start_round
                if (
                    rounds_done % checkpoint_every == 0
                    or round_index + 1 == scenario.n_rounds
                ):
                    atomic_write_bytes(state_path, latest)
                    obs.count("resilience.runtime.checkpoint.writes")
        except KeyboardInterrupt:
            if state_path is not None and latest is not None:
                atomic_write_bytes(state_path, latest)
                obs.count("resilience.runtime.checkpoint.writes")
            obs.count("resilience.runtime.interrupts")
            raise
        if obs.enabled():
            # Snapshot of the active tracer's metrics as of run end —
            # exactly this run's numbers when the run is traced in
            # isolation (``with obs.tracing(): sim.run()``), cumulative
            # when several runs share one tracer.
            result.report = obs.RunReport.from_tracer(obs.active())
        return result

    # -- checkpointing ---------------------------------------------------

    def _fingerprint(self, rng) -> dict:
        """What makes checkpointed rounds reusable.

        Everything that shapes per-round values: the market, the full
        model stack (via their stable dataclass/custom reprs), and the
        *initial* generator state.  ``n_rounds`` is deliberately
        absent — the horizon says how long to run, not what the rounds
        contain — so a short run's checkpoint extends into a longer
        one.  ``task_refresh`` is a callable (code, not data) and
        cannot be fingerprinted; see :meth:`run`.
        """
        from repro.io import market_to_dict

        scenario = self.scenario
        policy = scenario.resilience_policy()
        return {
            "kind": "simulation",
            "market": market_to_dict(scenario.market),
            "solver": scenario.solver_name,
            "solver_kwargs": scenario.solver_kwargs,
            "combiner": repr(scenario.combiner),
            "retention": repr(scenario.retention),
            "estimator": repr(scenario.estimator),
            "drift": repr(scenario.drift),
            "fault_plan": repr(scenario.fault_plan),
            "aggregator": scenario.aggregator,
            "gold_fraction": scenario.gold_fraction,
            "workers_decline": scenario.workers_decline,
            "resilience": repr(policy),
            "rng_state": rng.bit_generator.state,
        }

    def _snapshot_bytes(
        self, store, next_round, rng, workers, retention, estimator,
        solver, result,
    ) -> bytes:
        payload = {
            "schema": SIM_STATE_SCHEMA,
            "fingerprint_id": store.fingerprint_id,
            "next_round": next_round,
            "rng": rng,
            "workers": workers,
            "retention": retention,
            "estimator": estimator,
            # The whole solver object: history-aware solvers (previous
            # edges) and warm-start wrappers (WarmState with prices /
            # potentials / replayable edges) resume bit-identically
            # because their cross-round state pickles with them.
            "solver": solver,
            "rounds": list(result.rounds),
        }
        try:
            return pickle.dumps(payload)
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            raise ValidationError(
                "simulation state is not picklable, so it cannot be "
                f"checkpointed ({error}); drop the checkpoint option "
                "or make the scenario's models picklable"
            ) from None

    @staticmethod
    def _load_snapshot(store) -> dict | None:
        """The latest state snapshot, or ``None`` for a fresh start."""
        path = store.root / _STATE_NAME
        if not path.exists():
            return None
        try:
            payload = pickle.loads(path.read_bytes())
        except (pickle.UnpicklingError, EOFError, AttributeError):
            raise ValidationError(
                f"checkpoint state {path} is unreadable — remove the "
                "checkpoint directory to start fresh"
            ) from None
        if payload.get("schema") != SIM_STATE_SCHEMA:
            raise ValidationError(
                f"{path} has schema {payload.get('schema')!r}, "
                f"expected {SIM_STATE_SCHEMA!r}"
            )
        if payload.get("fingerprint_id") != store.fingerprint_id:
            raise ValidationError(
                f"checkpoint state {path} belongs to a different run "
                "configuration — point --checkpoint at a fresh "
                "directory"
            )
        return payload

    # -- helpers ---------------------------------------------------------

    def _solve_round(
        self, solver, planning_problem: MBAProblem, rng, faults
    ) -> tuple[Assignment | None, SolveReport]:
        """One round's solve, degraded instead of crashed.

        Returns ``(assignment, report)``; ``assignment`` is ``None``
        when the round is infeasible or every solver tier failed, with
        the report describing what was attempted.
        """
        forced = faults.solver_failure() if faults is not None else None
        planned: Assignment | None = None
        report: SolveReport | None = None
        failed_retries = 0
        with Timer() as timer:
            try:
                planning_problem.require_nonempty_feasible()
                if isinstance(solver, ResilientSolver):
                    planned, report = solver.solve_resilient(
                        planning_problem, seed=rng, forced_failure=forced
                    )
                elif forced is not None:
                    # Fault injection without a resilience policy: the
                    # bare solver has no retry stack, so a forced
                    # failure simply costs the round.
                    failed_retries = 1
                else:
                    planned = solver.solve(planning_problem, seed=rng)
            except InfeasibleError:
                failed_retries = 0
            except ResilienceExhaustedError as error:
                failed_retries = len(error.attempts)
            except SolverError:
                failed_retries = 1
        if planned is not None:
            if report is None:
                report = SolveReport(
                    solver_name=solver.name,
                    tier=0,
                    retries=0,
                    wall_time=timer.elapsed,
                )
            return planned, report
        return None, SolveReport(
            solver_name=solver.name,
            tier=-1,
            retries=failed_retries,
            wall_time=timer.elapsed,
        )

    @staticmethod
    def _apply_edge_faults(
        true_problem: MBAProblem,
        assignment: Assignment,
        faults,
        n_tasks: int,
    ) -> tuple[Assignment, int]:
        """Remove no-show and cancelled-task edges from the assignment."""
        edges = assignment.edges
        cancelled = faults.cancelled_tasks(n_tasks)
        no_shows = faults.no_shows(edges)
        kept = [
            edge
            for edge in edges
            if edge[1] not in cancelled and edge not in no_shows
        ]
        faulted = len(edges) - len(kept)
        if faulted == 0:
            return assignment, 0
        return (
            Assignment(
                true_problem, kept, solver_name=assignment.solver_name
            ),
            faulted,
        )

    def _round_tasks(self, round_index: int) -> list:
        scenario = self.scenario
        if scenario.task_refresh is not None:
            return scenario.task_refresh(round_index)
        # Default: replay the market's initial tasks each round.  Task
        # ids are deliberately *stable* across rounds — they denote the
        # recurring task, which is what history-aware solvers (e.g.
        # incremental-flow) key their memory on.
        return list(scenario.market.tasks)

    def _realize_answers(
        self,
        market,
        assignment,
        rng,
        dropped: frozenset[tuple[int, int]] = frozenset(),
    ) -> tuple[float, AnswerSet | None, dict[int, int]]:
        """Simulate answers, aggregate, score against ground truth.

        ``dropped`` edges produce an answer (the worker did the work,
        so the RNG stream advances identically either way) that is then
        lost before aggregation — tasks left with no surviving answer
        are not scored.
        """
        edges = list(assignment.edges)
        if not edges:
            return float("nan"), None, {}
        with obs.span("simulate", edges=len(edges)):
            answers = simulate_answers(market, edges, seed=rng)
        if dropped:
            answers = self._drop_answers(answers, dropped)
            if not answers.answers:
                return float("nan"), None, {}
        aggregator = get_aggregator(self.scenario.aggregator)
        with obs.span(
            "aggregate",
            aggregator=aggregator.name,
            tasks=len(answers.answers),
        ):
            # Weight-hungry aggregators get the planner-known
            # accuracies (the planner's model of workers; estimation
            # from data is exercised by the dawid-skene option).
            weights = (
                self._weighted_mean_accuracy(market)
                if aggregator.needs_weights
                else None
            )
            labels = aggregator.run(answers, weights=weights, seed=rng)
        scored = [
            labels[task] == truth for task, truth in answers.truths.items()
        ]
        accuracy = sum(scored) / len(scored) if scored else float("nan")
        return accuracy, answers, labels

    def _weighted_mean_accuracy(self, market) -> dict[int, float]:
        """Per-worker mean planner accuracy for the weighted aggregator.

        The full ``accuracy_matrix`` is an (n_workers, n_tasks) build
        per call; with neither skill drift nor task refresh configured
        the planner model never changes between rounds, so the means
        are computed once per run and reused.  Any drift or refresh
        disables the cache (worker churn only toggles ``active`` flags,
        which do not enter the accuracy matrix).
        """
        scenario = self.scenario
        cacheable = (
            scenario.drift is None and scenario.task_refresh is None
        )
        if cacheable and self._mean_accuracy_cache is not None:
            return self._mean_accuracy_cache
        accuracy_matrix = market.accuracy_matrix()
        means = accuracy_matrix.mean(axis=1)
        mean_accuracy = {
            i: float(means[i]) for i in range(market.n_workers)
        }
        if cacheable:
            self._mean_accuracy_cache = mean_accuracy
        return mean_accuracy

    @staticmethod
    def _drop_answers(
        answers: AnswerSet, dropped: frozenset[tuple[int, int]]
    ) -> AnswerSet:
        """A copy of ``answers`` without the dropped edges' answers."""
        kept = AnswerSet()
        for task_index, by_worker in answers.answers.items():
            surviving = {
                worker_index: answer
                for worker_index, answer in by_worker.items()
                if (worker_index, task_index) not in dropped
            }
            if surviving:
                kept.answers[task_index] = surviving
                kept.truths[task_index] = answers.truths[task_index]
        return kept

    def _update_estimator(
        self,
        estimator: BetaSkillEstimator,
        market,
        answers: AnswerSet,
        labels: dict[int, int],
        rng,
    ) -> None:
        """Gold tasks reveal truth; the rest teach via aggregated labels.

        Aggregated labels only teach when the committee has at least
        three members: with one or two answers the label is (close to)
        the worker's own vote, so "agreement" would be self-confirming
        noise that inflates every estimate.
        """
        gold_fraction = self.scenario.gold_fraction
        reference: dict[int, int] = {}
        for task_index, by_worker in answers.answers.items():
            if rng.random() < gold_fraction:
                reference[task_index] = answers.truths[task_index]
            elif task_index in labels and len(by_worker) >= 3:
                reference[task_index] = labels[task_index]
        estimator.record_answers(market, answers, reference)

    @staticmethod
    def _apply_retention(
        retention: RetentionModel | None, market, assignment, rng
    ) -> int:
        if retention is None:
            return 0
        received = assignment.per_worker_benefit()
        benefits = {
            market.workers[i].worker_id: received.get(i, 0.0)
            for i in range(market.n_workers)
            if market.workers[i].active
        }
        retention.record_round(benefits)
        return len(retention.apply(market, seed=rng))

    @staticmethod
    def _scrape_round(metrics: RoundMetrics) -> None:
        """Feed one finished round into the live-telemetry store.

        The engine's logical clock is the round index: round ``i``
        lands in window ``i`` of the active tracer's store regardless
        of the configured window width (``bucket_time`` addresses the
        bucket directly), so the same SLO catalogue that watches a
        streaming run watches a batch run per-round.  No-op when
        tracing is off or no store was created.
        """
        store = obs.timeseries_store()
        if store is None:
            return
        t = store.bucket_time(metrics.round_index)
        store.count(
            "sim.assigned_edges", t, float(metrics.n_assigned_edges)
        )
        store.gauge(
            "market.benefit_gini", t, float(metrics.benefit_gini)
        )
        store.gauge(
            "market.participation", t, float(metrics.participation_rate)
        )
        store.gauge(
            "market.worker_benefit", t, float(metrics.worker_benefit)
        )
        if not math.isnan(metrics.aggregated_accuracy):
            store.gauge(
                "sim.accuracy", t, float(metrics.aggregated_accuracy)
            )

    @staticmethod
    def _empty_round(
        round_index: int,
        market,
        solver_retries: int = 0,
        fallback_tier: int = 0,
        solver_wall_time: float = 0.0,
    ) -> RoundMetrics:
        return RoundMetrics(
            round_index=round_index,
            n_active_workers=len(market.active_worker_indices()),
            n_assigned_edges=0,
            requester_benefit=0.0,
            worker_benefit=0.0,
            combined_benefit=0.0,
            aggregated_accuracy=float("nan"),
            participation_rate=(
                sum(w.active for w in market.workers) / market.n_workers
                if market.n_workers
                else 0.0
            ),
            benefit_gini=0.0,
            churned_workers=0,
            solver_retries=solver_retries,
            fallback_tier=fallback_tier,
            solver_wall_time=solver_wall_time,
        )
