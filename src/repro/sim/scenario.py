"""Simulation scenario configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.benefit.mutual import LinearCombiner, MutualCombiner
from repro.core.solvers import validate_solver_kwargs
from repro.crowd.aggregation import aggregator_names
from repro.crowd.estimation import BetaSkillEstimator
from repro.errors import ConfigurationError
from repro.market.drift import SkillDriftModel
from repro.market.market import LaborMarket
from repro.market.retention import RetentionModel
from repro.resilience import FaultPlan, RetryPolicy, get_profile

#: Builds the tasks for one round: (round_index, rng) -> LaborMarket
#: task list source.  In practice a partial over the datagen helpers.
TaskSource = Callable[[int], list]


@dataclass
class Scenario:
    """Everything one simulation run needs.

    Attributes
    ----------
    market:
        The worker population (tasks inside are treated as round 0's
        tasks and replaced each round via ``task_refresh``).
    solver_name:
        Registered solver to use each round.
    solver_kwargs:
        Constructor arguments for the solver.
    combiner:
        Mutual-benefit combiner used to build each round's problem.
    n_rounds:
        Number of assignment rounds to simulate.
    retention:
        Worker retention model (None disables churn entirely).
    aggregator:
        A name from
        :data:`repro.crowd.aggregation.AGGREGATOR_REGISTRY` (e.g.
        ``"majority"``, ``"weighted"``, ``"dawid-skene"``); the legal
        set is derived from the registry, never hardcoded here.
    task_refresh:
        Callable ``round_index -> list[Task]`` producing the round's
        tasks; defaults to reusing the market's initial tasks each
        round (ids are rewritten to stay unique per round).
    estimator:
        When set, the solver plans against this estimator's *estimated*
        skills instead of the true ones (answers are still generated
        from true skills), and after each round the estimator learns
        from the aggregated labels — the realistic
        estimate → assign → answer → update loop.
    gold_fraction:
        Fraction of each round's tasks whose ground truth is revealed
        to the estimator (gold/honeypot questions); the rest update
        against aggregated labels.  Only meaningful with an estimator.
    workers_decline:
        When True, workers refuse assignments whose (true) worker-side
        benefit is negative: the edge produces no answer and the slot
        is wasted.  This is the behavioural teeth behind "willingness
        to participate" — worker-blind policies lose answers
        immediately, not just via slow churn.
    drift:
        Optional :class:`repro.market.drift.SkillDriftModel`: after
        each round, workers improve at practiced categories and rust at
        idle ones, coupling today's assignment policy to tomorrow's
        skill pool (experiment F23).
    fault_plan:
        Optional :class:`repro.resilience.FaultPlan` injecting worker
        no-shows, dropped answers, task cancellations, and forced
        solver failures each round; the faults are deterministic given
        the plan's own seed (experiment F24, ``docs/resilience.md``).
    resilience:
        ``None`` runs the solver bare (a failed round degrades to an
        empty round); a :class:`repro.resilience.RetryPolicy` or a
        profile name (``"default"``, ``"failfast"``, ``"patient"``,
        ``"no-fallback"``) wraps it in the resilient executor —
        deadline, escalating retries, partial-result salvage, and a
        fallback chain.
    """

    market: LaborMarket
    solver_name: str = "flow"
    solver_kwargs: dict = field(default_factory=dict)
    combiner: MutualCombiner = field(default_factory=lambda: LinearCombiner(0.5))
    n_rounds: int = 10
    retention: RetentionModel | None = field(default_factory=RetentionModel)
    aggregator: str = "majority"
    task_refresh: TaskSource | None = None
    estimator: BetaSkillEstimator | None = None
    gold_fraction: float = 0.1
    workers_decline: bool = False
    drift: "SkillDriftModel | None" = None
    fault_plan: FaultPlan | None = None
    resilience: "RetryPolicy | str | None" = None

    def __post_init__(self) -> None:
        if self.n_rounds < 1:
            raise ConfigurationError(
                f"n_rounds must be >= 1, got {self.n_rounds}"
            )
        if self.aggregator not in aggregator_names():
            raise ConfigurationError(
                f"unknown aggregator {self.aggregator!r}; known: "
                f"{', '.join(aggregator_names())}"
            )
        # A typo'd solver name or solver_kwargs key must fail here, at
        # construction, not at round 1 of a long run.
        validate_solver_kwargs(self.solver_name, self.solver_kwargs)
        if not 0.0 <= self.gold_fraction <= 1.0:
            raise ConfigurationError(
                f"gold_fraction must lie in [0, 1], got {self.gold_fraction}"
            )
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise ConfigurationError(
                "fault_plan must be a repro.resilience.FaultPlan, got "
                f"{type(self.fault_plan).__name__}"
            )
        # Resolve profile names eagerly so a typo fails at construction,
        # not at round 1 of a long run.
        self.resilience_policy()

    def resilience_policy(self) -> RetryPolicy | None:
        """The scenario's resilience setting as a concrete policy."""
        if self.resilience is None:
            return None
        if isinstance(self.resilience, RetryPolicy):
            return self.resilience
        if isinstance(self.resilience, str):
            return get_profile(self.resilience)
        raise ConfigurationError(
            "resilience must be None, a RetryPolicy, or a profile name, "
            f"got {type(self.resilience).__name__}"
        )
