"""Per-round and whole-run simulation metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class RoundMetrics:
    """Everything measured in one simulation round."""

    round_index: int
    n_active_workers: int
    n_assigned_edges: int
    requester_benefit: float
    worker_benefit: float
    combined_benefit: float
    aggregated_accuracy: float
    participation_rate: float
    benefit_gini: float
    churned_workers: int
    #: Offers refused by workers (only nonzero when the scenario's
    #: ``workers_decline`` flag is on).
    declined_edges: int = 0


@dataclass
class SimulationResult:
    """All rounds of one run, with convenience aggregates."""

    solver_name: str
    rounds: list[RoundMetrics] = field(default_factory=list)

    def series(self, attribute: str) -> np.ndarray:
        """Per-round values of one :class:`RoundMetrics` attribute."""
        return np.array(
            [getattr(r, attribute) for r in self.rounds], dtype=float
        )

    @property
    def total_requester_benefit(self) -> float:
        return float(self.series("requester_benefit").sum())

    @property
    def total_worker_benefit(self) -> float:
        return float(self.series("worker_benefit").sum())

    @property
    def mean_accuracy(self) -> float:
        acc = self.series("aggregated_accuracy")
        return float(acc.mean()) if acc.size else float("nan")

    @property
    def final_participation(self) -> float:
        return self.rounds[-1].participation_rate if self.rounds else 0.0

    def cumulative_accuracy(self) -> np.ndarray:
        """Running mean of per-round aggregated accuracy."""
        acc = self.series("aggregated_accuracy")
        if acc.size == 0:
            return acc
        return np.cumsum(acc) / np.arange(1, acc.size + 1)
