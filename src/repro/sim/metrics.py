"""Per-round and whole-run simulation metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import RunReport


@dataclass(frozen=True)
class RoundMetrics:
    """Everything measured in one simulation round."""

    round_index: int
    n_active_workers: int
    n_assigned_edges: int
    requester_benefit: float
    worker_benefit: float
    combined_benefit: float
    aggregated_accuracy: float
    participation_rate: float
    benefit_gini: float
    churned_workers: int
    #: Offers refused by workers (only nonzero when the scenario's
    #: ``workers_decline`` flag is on).
    declined_edges: int = 0
    #: Edges lost to injected faults this round: no-shows, edges of
    #: cancelled tasks, and dropped answers (see ``docs/resilience.md``
    #: for the taxonomy).
    faulted_edges: int = 0
    #: Failed solver attempts before this round's assignment was
    #: produced (0 = first attempt succeeded).
    solver_retries: int = 0
    #: Which tier delivered the assignment: 0 = the scenario's primary
    #: solver, k > 0 = the k-th fallback in the resilience chain,
    #: -1 = no tier delivered (the round was skipped or degraded to
    #: empty).
    fallback_tier: int = 0
    #: Wall-clock seconds the (possibly resilient) solve took.  This is
    #: a measurement of the host machine, not of the scenario: it is
    #: the one field excluded from determinism comparisons.
    solver_wall_time: float = 0.0


@dataclass
class SimulationResult:
    """All rounds of one run, with convenience aggregates.

    Aggregates over *measured* quantities (accuracy, participation)
    exclude rounds with ``fallback_tier == -1``: those rounds were
    degraded to empty because no solver tier delivered, so their
    metrics describe the failure, not the workload — folding them in
    would let an infrastructure outage masquerade as a policy effect.
    The degradation stays visible through :attr:`degraded_rounds` and
    the per-round records themselves.
    """

    solver_name: str
    rounds: list[RoundMetrics] = field(default_factory=list)
    #: Metric snapshot from the active tracer (``repro.obs``) at run
    #: end; ``None`` for untraced runs.
    report: "RunReport | None" = None

    def series(self, attribute: str) -> np.ndarray:
        """Per-round values of one :class:`RoundMetrics` attribute."""
        return np.array(
            [getattr(r, attribute) for r in self.rounds], dtype=float
        )

    def measured_rounds(self) -> list[RoundMetrics]:
        """Rounds actually served by some solver tier.

        Excludes rounds degraded to empty (``fallback_tier == -1``);
        genuinely empty rounds (no tasks / no active workers) count as
        measured — tier 0 served them, there was just nothing to do.
        """
        return [r for r in self.rounds if r.fallback_tier != -1]

    @property
    def total_requester_benefit(self) -> float:
        return float(self.series("requester_benefit").sum())

    @property
    def total_worker_benefit(self) -> float:
        return float(self.series("worker_benefit").sum())

    @property
    def mean_accuracy(self) -> float:
        """Mean aggregated accuracy over rounds that produced answers.

        Empty rounds record NaN accuracy (there is nothing to score);
        they are *skipped*, not propagated — one no-answer round must
        not poison the whole run's aggregate.  Degraded rounds
        (``fallback_tier == -1``) are likewise excluded.  NaN —
        silently, never via a ``RuntimeWarning`` — when no round
        produced answers at all.
        """
        acc = np.array(
            [r.aggregated_accuracy for r in self.measured_rounds()],
            dtype=float,
        )
        acc = acc[~np.isnan(acc)]
        return float(acc.mean()) if acc.size else float("nan")

    @property
    def mean_participation(self) -> float:
        """Mean participation rate over measured (non-degraded) rounds.

        NaN when every round was degraded — a run where no solver tier
        ever delivered has no participation measurement to report.
        """
        rates = [r.participation_rate for r in self.measured_rounds()]
        return float(np.mean(rates)) if rates else float("nan")

    @property
    def total_faulted_edges(self) -> int:
        return int(self.series("faulted_edges").sum())

    @property
    def total_solver_retries(self) -> int:
        return int(self.series("solver_retries").sum())

    @property
    def degraded_rounds(self) -> int:
        """Rounds not served by the primary solver's first attempt."""
        return sum(
            1
            for r in self.rounds
            if r.fallback_tier != 0 or r.solver_retries > 0
        )

    @property
    def final_participation(self) -> float:
        return self.rounds[-1].participation_rate if self.rounds else 0.0

    def cumulative_accuracy(self) -> np.ndarray:
        """Running mean of per-round aggregated accuracy, NaN-skipping.

        Rounds with NaN accuracy contribute nothing to the running
        mean; prefix positions before the first scored round are NaN
        (there is genuinely no data yet), but a NaN round mid-run does
        not poison the tail.
        """
        acc = self.series("aggregated_accuracy")
        if acc.size == 0:
            return acc
        valid = ~np.isnan(acc)
        running_sum = np.cumsum(np.where(valid, acc, 0.0))
        running_count = np.cumsum(valid)
        out = np.full(acc.shape, np.nan)
        scored = running_count > 0
        out[scored] = running_sum[scored] / running_count[scored]
        return out
