"""Deterministic random-number plumbing.

Every stochastic component in the library accepts a ``seed`` argument
that may be ``None``, an integer, or a ``numpy.random.Generator``.
Centralizing the coercion here keeps experiments reproducible: the same
seed always yields the same market, the same answers, and the same
arrival order.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers
    can thread a single stream through several components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Uses :meth:`numpy.random.Generator.spawn` so the child streams are
    statistically independent regardless of how many draws each one
    makes — important when e.g. the market generator and the answer
    simulator must not perturb each other.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    return as_rng(seed).spawn(n)
