"""Deterministic random-number plumbing.

Every stochastic component in the library accepts a ``seed`` argument
that may be ``None``, an integer, or a ``numpy.random.Generator``.
Centralizing the coercion here keeps experiments reproducible: the same
seed always yields the same market, the same answers, and the same
arrival order.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers
    can thread a single stream through several components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: int, *keys: int) -> np.random.Generator:
    """A generator keyed by ``(seed, *keys)``, independent of call order.

    Unlike :func:`spawn_rngs`, which hands out streams in sequence,
    this derives the stream *addressably*: the same ``(seed, keys)``
    always names the same stream no matter how many other streams were
    derived before it.  The fault-injection plan uses this so that the
    faults of round 7 do not depend on whether round 3's faults were
    ever sampled.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=keys)
    )


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Uses :meth:`numpy.random.Generator.spawn` so the child streams are
    statistically independent regardless of how many draws each one
    makes — important when e.g. the market generator and the answer
    simulator must not perturb each other.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    return as_rng(seed).spawn(n)
