"""Crash-safe file writes: temp file + fsync + ``os.replace``.

A durable artifact — a checkpoint record, a registered trace, a bench
result — must never be observable half-written: a reader that races a
writer (or a process that dies mid-``write``) would otherwise see a
torn file that parses as garbage or, worse, parses cleanly as a
truncated payload.  POSIX gives an atomicity primitive for exactly
this: ``rename(2)`` within one filesystem either fully installs the
new name or leaves the old file untouched.  Every helper here

1. writes the full payload to a uniquely named temp file *in the
   destination directory* (same filesystem, so the rename is atomic);
2. flushes and ``fsync``\\ s the temp file so the bytes are on disk
   before the name is;
3. ``os.replace``\\ s it over the destination (atomic on POSIX and
   Windows);
4. best-effort ``fsync``\\ s the directory so the rename itself
   survives a power loss.

This module is the *only* place in the library that may open durable
artifact files for writing — lint rule R503 forbids raw
``open(path, "w")`` / ``Path.write_text`` in the artifact-producing
modules, routing them here (or through the :func:`repro.io` wrappers).

Layering: sits at the bottom with the rest of ``repro.utils`` —
stdlib only — so even :mod:`repro.obs` may import it.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path``'s contents with ``data``.

    The destination directory is created if missing.  On any failure
    the destination is untouched and the temp file is removed; there
    is never a moment where ``path`` exists with partial contents.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="wb",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    tmp = Path(handle.name)
    try:
        with handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        # On success the replace consumed the temp file; on failure
        # remove it so crashes never litter the artifact directory.
        with contextlib.suppress(FileNotFoundError):
            os.unlink(tmp)
    _fsync_directory(path.parent)
    return path


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path``'s contents with ``text``."""
    return atomic_write_bytes(path, text.encode(encoding))


def _fsync_directory(directory: Path) -> None:
    """Flush the directory entry so the rename survives power loss.

    Best-effort: some platforms/filesystems refuse to open or fsync a
    directory — the file itself is already synced, so a failure here
    only weakens (never breaks) the guarantee.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)
