"""Argument-validation helpers.

These raise :class:`repro.errors.ValidationError` with messages that
name the offending argument, so failures surface at the API boundary
instead of deep inside a solver.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_probability_matrix(name: str, matrix: np.ndarray) -> np.ndarray:
    """Require a row-stochastic matrix (rows sum to 1, entries in [0, 1])."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got shape {arr.shape}")
    if np.any(arr < -1e-12) or np.any(arr > 1 + 1e-12):
        raise ValidationError(f"{name} entries must lie in [0, 1]")
    row_sums = arr.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-6):
        raise ValidationError(
            f"{name} rows must sum to 1, got row sums {row_sums!r}"
        )
    return arr
