"""Summary statistics used by the evaluation harness and metrics.

Implemented from scratch (no scipy dependency in the core library) so
the installed package only needs numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    @classmethod
    def of(cls, values: np.ndarray | list[float]) -> "Summary":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        return cls(
            n=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            median=float(np.median(arr)),
            maximum=float(arr.max()),
        )


def edge_matrix_sum(
    matrix: np.ndarray, edges: list[tuple[int, int]]
) -> float:
    """Sum of ``matrix[i, j]`` over an ``(i, j)`` edge list.

    One fancy-indexed gather instead of a Python-level generator —
    this reduction sits inside solver inner loops (objective
    evaluation per candidate move), where the interpreter-loop form
    dominates the profile (see R601 in docs/static-analysis.md).
    """
    if not edges:
        return 0.0
    index = np.asarray(edges, dtype=np.int64)
    return float(matrix[index[:, 0], index[:, 1]].sum())


def gini(values: np.ndarray | list[float]) -> float:
    """Gini coefficient of a non-negative sample.

    0 means perfectly equal, values approaching 1 mean one element holds
    everything.  Used to report how evenly worker benefit is spread.
    Returns 0.0 for empty or all-zero samples.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    if np.any(arr < 0):
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    sorted_arr = np.sort(arr)
    n = arr.size
    # Standard formula: G = (2 * sum(i * x_i) / (n * sum(x)) ) - (n + 1) / n
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * sorted_arr)) / (n * total) - (n + 1) / n)


def mean_confidence_interval(
    values: np.ndarray | list[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """(mean, low, high) normal-approximation CI for the sample mean.

    Uses the z-quantile (not t) — adequate for the sample sizes the
    harness produces (>= 20 repetitions); documented so the limitation
    is explicit.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return (math.nan, math.nan, math.nan)
    mean = float(arr.mean())
    if arr.size == 1:
        return (mean, mean, mean)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    z = _normal_quantile(0.5 + confidence / 2.0)
    return (mean, mean - z * sem, mean + z * sem)


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF via Acklam's rational approximation.

    Accurate to ~1e-9 over (0, 1); used for confidence/credible
    intervals so the core library needs no scipy.
    """
    return _normal_quantile(p)


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF via Acklam's rational approximation."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile requires 0 < p < 1, got {p}")
    # Coefficients for the central and tail regions.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )
