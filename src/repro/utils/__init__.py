"""Small shared utilities: RNG plumbing, validation, timing, statistics."""

from repro.utils.atomic import atomic_write_bytes, atomic_write_text
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_nonnegative,
    check_positive,
    check_probability_matrix,
)

__all__ = [
    "Timer",
    "as_rng",
    "atomic_write_bytes",
    "atomic_write_text",
    "check_fraction",
    "check_nonnegative",
    "check_positive",
    "check_probability_matrix",
    "spawn_rngs",
]
