"""Library logging.

The library logs under the ``"repro"`` logger hierarchy and — per
standard library-practice — attaches a ``NullHandler`` so importing
repro never configures or pollutes the host application's logging.
Applications (and the CLI's ``--verbose``) opt in via
:func:`configure_logging`.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A child logger under the ``repro`` hierarchy.

    Pass ``__name__``; modules outside the package are nested under
    ``repro.ext.`` so filtering by prefix still works.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.ext.{name}")


def configure_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler with a compact format; returns the root.

    Idempotent: calling twice does not duplicate handlers.
    """
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    has_stream = any(
        isinstance(h, logging.StreamHandler)
        and not isinstance(h, logging.NullHandler)
        for h in root.handlers
    )
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname).1s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    return root
