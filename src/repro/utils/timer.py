"""Wall-clock timing for the evaluation harness."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    ``elapsed`` is live: read inside the ``with`` block it returns the
    time accumulated *so far*; after the block exits it freezes at the
    final duration.  Re-entering the same instance restarts the clock.

    Example::

        with Timer() as t:
            solver.solve(problem)
            print(t.elapsed)  # running total, mid-flight
        print(t.elapsed)      # frozen final duration
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    @property
    def elapsed(self) -> float:
        """Seconds since ``__enter__`` while running; frozen after exit."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    def __enter__(self) -> "Timer":
        self._elapsed = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None
