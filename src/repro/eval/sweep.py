"""Parameter sweeps with repetition and timing."""

from __future__ import annotations

import json
import multiprocessing
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.errors import ValidationError
from repro.utils.rng import spawn_rngs
from repro.utils.timer import Timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spec.lattice import Lattice


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, repetition) measurement."""

    parameter: object
    repetition: int
    value: float
    elapsed: float


def _measure_point(
    args: tuple[
        Callable[[object, np.random.Generator], float],
        object,
        int,
        np.random.Generator,
        bool,
    ],
) -> tuple[SweepPoint, dict | None]:
    """Run one (parameter, repetition) measurement; top-level so
    process pools can pickle it.

    ``collect`` marks jobs dispatched *to a pool worker* while the
    parent had tracing on.  Such jobs run under a fresh local tracer
    whose spans and metric snapshot ride home with the result for the
    parent to merge — a fresh one explicitly, because ``fork``-method
    workers inherit the parent's active tracer as a useless copy.  In
    the parent (serial path) the active tracer records the span
    directly and the payload stays ``None``.
    """
    measure, parameter, repetition, rng, collect = args
    tracer = obs.enable() if collect else None
    try:
        with obs.span(
            "sweep.point", parameter=repr(parameter), repetition=repetition
        ):
            with Timer() as timer:
                value = measure(parameter, rng)
        obs.count("sweep.points")
    finally:
        if collect:
            obs.disable()
    point = SweepPoint(parameter, repetition, float(value), timer.elapsed)
    if tracer is None:
        return point, None
    return point, {
        "spans": [span.to_dict() for span in tracer.spans],
        "metrics": tracer.metrics.snapshot(),
    }


def _check_picklable(measure: Callable, workers: int) -> None:
    """Fail fast — with an actionable message — on unpicklable sweeps.

    Process pools pickle every job, and under the ``spawn`` start
    method (the macOS/Windows default) the worker re-imports the
    callable's module from scratch; a lambda or closure fails either
    way, but mid-run and with an opaque ``PicklingError``.  Checking up
    front turns that into an immediate :class:`ValidationError`.
    """
    try:
        pickle.dumps(measure)
    except (pickle.PicklingError, TypeError, AttributeError) as error:
        raise ValidationError(
            f"measure must be picklable to sweep with workers={workers}: "
            "pass a module-level function (not a lambda or closure) whose "
            f"module is importable in worker processes ({error})"
        ) from None


def sweep(
    parameter_values: Sequence[object],
    measure: Callable[[object, np.random.Generator], float],
    repetitions: int = 3,
    seed: int | None = 0,
    workers: int = 1,
    mp_context: str | None = None,
) -> list[SweepPoint]:
    """Measure a function over parameter values with seeded repetitions.

    ``measure(parameter, rng)`` returns the metric; each (parameter,
    repetition) pair gets an independent RNG derived from ``seed``.

    ``workers > 1`` fans the points out over a process pool.  Every
    point's generator is spawned up front from ``seed`` exactly as in
    the serial path, so measured *values* are bit-identical to
    ``workers=1`` and to each other regardless of scheduling; only the
    ``elapsed`` timings (measured inside the worker) vary.  ``measure``
    must be picklable — a module-level function, not a lambda or
    closure — and its module importable in a fresh interpreter, because
    ``spawn``-method workers (the macOS/Windows default) re-import it;
    violations fail fast with a :class:`ValidationError` instead of an
    opaque mid-run ``PicklingError``.  ``mp_context`` selects the
    multiprocessing start method (``"fork"``, ``"spawn"``,
    ``"forkserver"``); ``None`` uses the platform default.

    When tracing (:mod:`repro.obs`) is enabled, every point records a
    ``sweep.point`` span; points measured in worker processes are
    traced locally and merged back into the parent's tracer, so the
    trace is complete either way.
    """
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if workers > 1:
        _check_picklable(measure, workers)
    context = None
    if mp_context is not None:
        try:
            context = multiprocessing.get_context(mp_context)
        except ValueError:
            raise ValidationError(
                f"unknown multiprocessing context {mp_context!r}; "
                "expected 'fork', 'spawn', or 'forkserver'"
            ) from None
    collect = obs.enabled() and workers > 1
    rngs = spawn_rngs(seed, len(parameter_values) * repetitions)
    jobs = [
        (measure, parameter, repetition, rngs[position], collect)
        for position, (parameter, repetition) in enumerate(
            (parameter, repetition)
            for parameter in parameter_values
            for repetition in range(repetitions)
        )
    ]
    if workers == 1:
        return [_measure_point(job)[0] for job in jobs]
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=context
    ) as pool:
        outcomes = list(pool.map(_measure_point, jobs))
    tracer = obs.active()
    points = []
    for point, payload in outcomes:
        points.append(point)
        if tracer is not None and payload is not None:
            tracer.adopt(
                [
                    obs.SpanRecord.from_dict(span)
                    for span in payload["spans"]
                ],
                payload["metrics"],
            )
    return points


def measure_spec_point(
    parameter: object, rng: np.random.Generator
) -> float:
    """Default spec-sweep measure: simulate and return mean accuracy.

    ``parameter`` is the canonical JSON of one lattice point's payload
    (a string so it is hashable for :func:`aggregate` and picklable for
    process pools); the repetition's ``rng`` seeds the simulation, so
    repetitions vary exactly as in any other sweep while the scenario
    itself stays pinned by the payload.
    """
    from repro.sim.engine import Simulation
    from repro.spec.compile import compile_spec

    scenario = compile_spec(json.loads(str(parameter)))
    result = Simulation(scenario).run(seed=rng)
    return float(result.mean_accuracy)


@dataclass(frozen=True)
class SpecSweep:
    """A sweep driven by a spec's ``[axes]`` lattice."""

    lattice: "Lattice"
    points: list[SweepPoint]

    def by_scenario(self) -> dict[str, tuple[float, float]]:
        """Scenario id -> (mean value, mean elapsed), lattice order."""
        parameters = aggregate(self.points)
        result = {}
        for point in self.lattice.points:
            parameter = json.dumps(point.payload, sort_keys=True)
            if parameter in parameters:
                result[point.id] = parameters[parameter]
        return result


def sweep_spec(
    source,
    measure: Callable[[object, np.random.Generator], float] | None = None,
    repetitions: int = 3,
    seed: int | None = 0,
    workers: int = 1,
    mp_context: str | None = None,
    limit: int | None = None,
) -> SpecSweep:
    """Sweep the checker-clean lattice of a scenario spec.

    The spec's ``[axes]`` product is expanded and statically checked
    first (see :func:`repro.spec.lattice.expand`), so the sweep only
    ever spends compute on valid scenarios; invalid corners are dropped
    by the checker, not discovered at simulation time.  Each surviving
    point is passed to ``measure`` as the canonical JSON string of its
    sparse payload — hashable, picklable, and recompilable via
    :func:`repro.spec.compile.compile_spec` — which is what lets the
    existing process-pool machinery in :func:`sweep` fan spec points
    out unchanged.  ``measure`` defaults to :func:`measure_spec_point`
    (mean simulated accuracy).  ``limit`` subsamples the lattice
    deterministically from ``seed``.
    """
    from repro.spec.lattice import expand, sample

    lattice = (
        expand(source)
        if limit is None
        else sample(source, limit, seed=seed)
    )
    parameters = [
        json.dumps(point.payload, sort_keys=True)
        for point in lattice.points
    ]
    points = sweep(
        parameters,
        measure if measure is not None else measure_spec_point,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
        mp_context=mp_context,
    )
    return SpecSweep(lattice=lattice, points=points)


def aggregate(
    points: Iterable[SweepPoint],
) -> dict[object, tuple[float, float]]:
    """Per-parameter (mean value, mean elapsed seconds)."""
    by_parameter: dict[object, list[SweepPoint]] = {}
    for point in points:
        by_parameter.setdefault(point.parameter, []).append(point)
    return {
        parameter: (
            float(np.mean([p.value for p in group])),
            float(np.mean([p.elapsed for p in group])),
        )
        for parameter, group in by_parameter.items()
    }
