"""Parameter sweeps with repetition and timing."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import spawn_rngs
from repro.utils.timer import Timer


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, repetition) measurement."""

    parameter: object
    repetition: int
    value: float
    elapsed: float


def _measure_point(
    args: tuple[
        Callable[[object, np.random.Generator], float],
        object,
        int,
        np.random.Generator,
    ],
) -> SweepPoint:
    """Run one (parameter, repetition) measurement; top-level so
    process pools can pickle it."""
    measure, parameter, repetition, rng = args
    with Timer() as timer:
        value = measure(parameter, rng)
    return SweepPoint(parameter, repetition, float(value), timer.elapsed)


def sweep(
    parameter_values: Sequence[object],
    measure: Callable[[object, np.random.Generator], float],
    repetitions: int = 3,
    seed: int | None = 0,
    workers: int = 1,
) -> list[SweepPoint]:
    """Measure a function over parameter values with seeded repetitions.

    ``measure(parameter, rng)`` returns the metric; each (parameter,
    repetition) pair gets an independent RNG derived from ``seed``.

    ``workers > 1`` fans the points out over a process pool.  Every
    point's generator is spawned up front from ``seed`` exactly as in
    the serial path, so measured *values* are bit-identical to
    ``workers=1`` and to each other regardless of scheduling; only the
    ``elapsed`` timings (measured inside the worker) vary.  ``measure``
    must be picklable (a top-level function or a picklable callable) —
    closures and lambdas only work serially.
    """
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    rngs = spawn_rngs(seed, len(parameter_values) * repetitions)
    jobs = [
        (measure, parameter, repetition, rngs[position])
        for position, (parameter, repetition) in enumerate(
            (parameter, repetition)
            for parameter in parameter_values
            for repetition in range(repetitions)
        )
    ]
    if workers == 1:
        return [_measure_point(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_measure_point, jobs))


def aggregate(
    points: Iterable[SweepPoint],
) -> dict[object, tuple[float, float]]:
    """Per-parameter (mean value, mean elapsed seconds)."""
    by_parameter: dict[object, list[SweepPoint]] = {}
    for point in points:
        by_parameter.setdefault(point.parameter, []).append(point)
    return {
        parameter: (
            float(np.mean([p.value for p in group])),
            float(np.mean([p.elapsed for p in group])),
        )
        for parameter, group in by_parameter.items()
    }
