"""Parameter sweeps with repetition, timing, and run-level durability.

Sweeps are *restartable work*, not one-shot loops: with a checkpoint
directory every completed (parameter, repetition) point is persisted
atomically the moment it finishes, and ``resume=True`` skips the
recorded points bit-identically (each point's RNG is spawned up front
from the sweep seed, so values never depend on which process — or
which *run* — computed them).  With ``workers > 1`` the points execute
under :class:`repro.resilience.runtime.SupervisedPool`, which survives
worker crashes, hangs, and Ctrl-C; see ``docs/resilience.md``.

Pools never nest: a sweep worker that runs the sharded solver with
``parallel_workers`` set gets the serial in-process path, because
:class:`repro.core.solvers.sharded.ShardedSolver` detects it is
already inside a child process (``multiprocessing.parent_process()``)
and declines to spawn a second pool.  Shard parallelism is for
top-level solves; point parallelism belongs to the sweep.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.errors import ValidationError
from repro.resilience.faults import ChaosPlan
from repro.resilience.runtime import (
    CheckpointStore,
    RunStats,
    RuntimePolicy,
    SupervisedPool,
)
from repro.utils.rng import spawn_rngs
from repro.utils.timer import Timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spec.lattice import Lattice


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, repetition) measurement."""

    parameter: object
    repetition: int
    value: float
    elapsed: float


def _measure_point(
    args: tuple[
        Callable[[object, np.random.Generator], float],
        object,
        int,
        np.random.Generator,
        bool,
    ],
) -> tuple[SweepPoint, dict | None]:
    """Run one (parameter, repetition) measurement; top-level so
    process pools can pickle it.

    ``collect`` marks jobs dispatched *to a pool worker* while the
    parent had tracing on.  Such jobs run under a fresh local tracer
    whose spans and metric snapshot ride home with the result for the
    parent to merge — a fresh one explicitly, because ``fork``-method
    workers inherit the parent's active tracer as a useless copy.  In
    the parent (serial path) the active tracer records the span
    directly and the payload stays ``None``.
    """
    measure, parameter, repetition, rng, collect = args
    tracer = obs.enable() if collect else None
    try:
        with obs.span(
            "sweep.point", parameter=repr(parameter), repetition=repetition
        ):
            with Timer() as timer:
                value = measure(parameter, rng)
        obs.count("sweep.points")
    finally:
        if collect:
            obs.disable()
    point = SweepPoint(parameter, repetition, float(value), timer.elapsed)
    if tracer is None:
        return point, None
    return point, {
        "spans": [span.to_dict() for span in tracer.spans],
        "metrics": tracer.metrics.snapshot(),
        # Windowed telemetry scraped inside the worker (e.g. by the
        # engine's per-round scrape); None when the measure recorded
        # none.  The parent folds it into its own store on adoption.
        "timeseries": (
            tracer.timeseries.to_dict()
            if tracer.timeseries is not None
            else None
        ),
    }


def _check_picklable(measure: Callable, workers: int) -> None:
    """Fail fast — with an actionable message — on unpicklable sweeps.

    Process pools pickle every job, and under the ``spawn`` start
    method (the macOS/Windows default) the worker re-imports the
    callable's module from scratch; a lambda or closure fails either
    way, but mid-run and with an opaque ``PicklingError``.  Checking up
    front turns that into an immediate :class:`ValidationError`.
    """
    try:
        pickle.dumps(measure)
    except (pickle.PicklingError, TypeError, AttributeError) as error:
        raise ValidationError(
            f"measure must be picklable to sweep with workers={workers}: "
            "pass a module-level function (not a lambda or closure) whose "
            f"module is importable in worker processes ({error})"
        ) from None


@dataclass(frozen=True)
class SweepOutcome:
    """The full result of a durable sweep run.

    ``points`` holds the completed measurements in canonical job order
    (parameter-major, repetition-minor); quarantined or interrupted
    points are simply absent.  ``stats`` is the supervision ledger —
    check ``stats.interrupted`` and ``stats.quarantined`` before
    treating the sweep as complete.
    """

    points: list[SweepPoint]
    stats: RunStats
    checkpoint_dir: Path | None = None

    @property
    def complete(self) -> bool:
        return not self.stats.interrupted and not self.stats.quarantined


def _point_key(parameter: object, repetition: int) -> str:
    """Checkpoint key for one (parameter, repetition) measurement."""
    return CheckpointStore.key_for(
        ["sweep-point", repr(parameter), int(repetition)]
    )


def _point_record(position: int, point: SweepPoint) -> dict:
    return {
        "position": position,
        "parameter": repr(point.parameter),
        "repetition": point.repetition,
        "value": point.value,
        "elapsed": point.elapsed,
    }


def run_sweep(
    parameter_values: Sequence[object],
    measure: Callable[[object, np.random.Generator], float],
    repetitions: int = 3,
    seed: int | None = 0,
    workers: int = 1,
    mp_context: str | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    policy: RuntimePolicy | None = None,
    chaos: ChaosPlan | None = None,
) -> SweepOutcome:
    """Measure a function over parameter values, durably.

    ``measure(parameter, rng)`` returns the metric; each (parameter,
    repetition) pair gets an independent RNG derived from ``seed``.
    All generators are spawned up front, so measured *values* are
    bit-identical across worker counts, scheduling orders, retries,
    and checkpoint resumes; only ``elapsed`` timings vary.

    ``checkpoint`` names a :class:`CheckpointStore` directory: every
    completed point is recorded atomically as it finishes, keyed by
    the content id of its ``(parameter repr, repetition)`` identity,
    and the store's manifest fingerprints the whole sweep
    configuration (a mismatched directory is refused).  ``resume=True``
    loads the recorded points and computes only the rest.  Checkpoint
    identity relies on ``repr(parameter)`` being stable across runs —
    true for strings, numbers, and the canonical-JSON parameters of
    :func:`sweep_spec`.

    ``workers > 1`` runs the points under a supervised process pool
    (timeouts, seeded-backoff retries, broken-pool recovery, poison
    quarantine — see :class:`RuntimePolicy`), optionally sabotaged by
    a seeded :class:`ChaosPlan` for durability testing.  ``measure``
    must be picklable — a module-level function, not a lambda or
    closure — and its module importable in a fresh interpreter;
    violations fail fast with a :class:`ValidationError`.

    ``KeyboardInterrupt``/SIGTERM do not propagate: workers are torn
    down, the completed points are returned, and
    ``stats.interrupted`` is set — with a checkpoint directory the
    interrupted run resumes exactly where it stopped.
    """
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if resume and checkpoint is None:
        raise ValidationError(
            "resume=True needs a checkpoint directory to resume from"
        )
    if chaos is not None and workers == 1:
        raise ValidationError(
            "chaos injection sabotages pool workers; it needs "
            "workers > 1"
        )
    if workers > 1:
        _check_picklable(measure, workers)
    context = None
    if mp_context is not None:
        try:
            context = multiprocessing.get_context(mp_context)
        except ValueError:
            raise ValidationError(
                f"unknown multiprocessing context {mp_context!r}; "
                "expected 'fork', 'spawn', or 'forkserver'"
            ) from None
    collect = obs.enabled() and workers > 1
    rngs = spawn_rngs(seed, len(parameter_values) * repetitions)
    identities = [
        (parameter, repetition)
        for parameter in parameter_values
        for repetition in range(repetitions)
    ]
    jobs = [
        (measure, parameter, repetition, rngs[position], collect)
        for position, (parameter, repetition) in enumerate(identities)
    ]
    store = None
    done: dict[int, SweepPoint] = {}
    if checkpoint is not None:
        store = CheckpointStore(
            checkpoint,
            {
                "kind": "sweep",
                "measure": f"{measure.__module__}.{measure.__qualname__}",
                "parameters": [repr(p) for p in parameter_values],
                "repetitions": repetitions,
                "seed": seed,
            },
        )
        if resume:
            with obs.span("runtime.resume", kind="sweep") as span:
                for position, (parameter, repetition) in enumerate(
                    identities
                ):
                    record = store.load(_point_key(parameter, repetition))
                    if record is None:
                        continue
                    done[position] = SweepPoint(
                        parameter,
                        repetition,
                        float(record["value"]),
                        float(record["elapsed"]),
                    )
                span.tag(skipped=len(done))
            obs.count("resilience.runtime.checkpoint.hits", len(done))
    remaining = [
        position for position in range(len(jobs)) if position not in done
    ]

    def _record(position: int, point: SweepPoint) -> None:
        if store is not None:
            store.store(
                _point_key(point.parameter, point.repetition),
                _point_record(position, point),
            )

    if workers == 1:
        stats = RunStats(skipped=len(done))
        try:
            for position in remaining:
                point, _ = _measure_point(jobs[position])
                done[position] = point
                stats.completed += 1
                _record(position, point)
        except KeyboardInterrupt:
            stats.interrupted = True
            obs.count("resilience.runtime.interrupts")
    else:
        tracer = obs.active()

        def _on_result(index: int, outcome) -> None:
            point, payload = outcome
            if tracer is not None and payload is not None:
                tracer.adopt(
                    [
                        obs.SpanRecord.from_dict(span)
                        for span in payload["spans"]
                    ],
                    payload["metrics"],
                    timeseries=payload.get("timeseries"),
                )
            _record(remaining[index], point)

        pool = SupervisedPool(
            workers, policy=policy, chaos=chaos, mp_context=context
        )
        results, stats = pool.run(
            _measure_point,
            [jobs[position] for position in remaining],
            on_result=_on_result,
        )
        stats.skipped += len(done)
        for index, (point, _) in results.items():
            done[remaining[index]] = point
    points = [done[position] for position in sorted(done)]
    return SweepOutcome(
        points=points,
        stats=stats,
        checkpoint_dir=Path(checkpoint) if checkpoint is not None else None,
    )


def sweep(
    parameter_values: Sequence[object],
    measure: Callable[[object, np.random.Generator], float],
    repetitions: int = 3,
    seed: int | None = 0,
    workers: int = 1,
    mp_context: str | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    policy: RuntimePolicy | None = None,
    chaos: ChaosPlan | None = None,
) -> list[SweepPoint]:
    """Measure a function over parameter values with seeded repetitions.

    The classic list-of-points view of :func:`run_sweep` — same
    durability machinery (checkpoints, supervision, chaos), but
    returning just the completed points.  Callers that need the
    supervision ledger (interrupted? quarantined? resumed?) use
    :func:`run_sweep` directly.
    """
    return run_sweep(
        parameter_values,
        measure,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
        mp_context=mp_context,
        checkpoint=checkpoint,
        resume=resume,
        policy=policy,
        chaos=chaos,
    ).points


def measure_spec_point(
    parameter: object, rng: np.random.Generator
) -> float:
    """Default spec-sweep measure: simulate and return mean accuracy.

    ``parameter`` is the canonical JSON of one lattice point's payload
    (a string so it is hashable for :func:`aggregate` and picklable for
    process pools); the repetition's ``rng`` seeds the simulation, so
    repetitions vary exactly as in any other sweep while the scenario
    itself stays pinned by the payload.
    """
    from repro.sim.engine import Simulation
    from repro.spec.compile import compile_spec

    scenario = compile_spec(json.loads(str(parameter)))
    result = Simulation(scenario).run(seed=rng)
    return float(result.mean_accuracy)


@dataclass(frozen=True)
class SpecSweep:
    """A sweep driven by a spec's ``[axes]`` lattice.

    ``stats`` carries the supervision ledger when the sweep ran with
    durability features (``None`` predates them in saved pickles and
    means "ran to completion serially").
    """

    lattice: "Lattice"
    points: list[SweepPoint]
    stats: RunStats | None = None

    def by_scenario(self) -> dict[str, tuple[float, float]]:
        """Scenario id -> (mean value, mean elapsed), lattice order."""
        parameters = aggregate(self.points)
        result = {}
        for point in self.lattice.points:
            parameter = json.dumps(point.payload, sort_keys=True)
            if parameter in parameters:
                result[point.id] = parameters[parameter]
        return result


def sweep_spec(
    source,
    measure: Callable[[object, np.random.Generator], float] | None = None,
    repetitions: int = 3,
    seed: int | None = 0,
    workers: int = 1,
    mp_context: str | None = None,
    limit: int | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    policy: RuntimePolicy | None = None,
    chaos: ChaosPlan | None = None,
) -> SpecSweep:
    """Sweep the checker-clean lattice of a scenario spec.

    The spec's ``[axes]`` product is expanded and statically checked
    first (see :func:`repro.spec.lattice.expand`), so the sweep only
    ever spends compute on valid scenarios; invalid corners are dropped
    by the checker, not discovered at simulation time.  Each surviving
    point is passed to ``measure`` as the canonical JSON string of its
    sparse payload — hashable, picklable, and recompilable via
    :func:`repro.spec.compile.compile_spec` — which is what lets the
    existing process-pool machinery in :func:`sweep` fan spec points
    out unchanged.  ``measure`` defaults to :func:`measure_spec_point`
    (mean simulated accuracy).  ``limit`` subsamples the lattice
    deterministically from ``seed``.

    The durability knobs (``checkpoint``, ``resume``, ``policy``,
    ``chaos``) pass straight through to :func:`run_sweep`; spec-sweep
    parameters are canonical JSON strings, so their checkpoint
    identities are stable across processes and hosts.
    """
    from repro.spec.lattice import expand, sample

    lattice = (
        expand(source)
        if limit is None
        else sample(source, limit, seed=seed)
    )
    parameters = [
        json.dumps(point.payload, sort_keys=True)
        for point in lattice.points
    ]
    outcome = run_sweep(
        parameters,
        measure if measure is not None else measure_spec_point,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
        mp_context=mp_context,
        checkpoint=checkpoint,
        resume=resume,
        policy=policy,
        chaos=chaos,
    )
    return SpecSweep(
        lattice=lattice, points=outcome.points, stats=outcome.stats
    )


def aggregate(
    points: Iterable[SweepPoint],
) -> dict[object, tuple[float, float]]:
    """Per-parameter (mean value, mean elapsed seconds)."""
    by_parameter: dict[object, list[SweepPoint]] = {}
    for point in points:
        by_parameter.setdefault(point.parameter, []).append(point)
    return {
        parameter: (
            float(np.mean([p.value for p in group])),
            float(np.mean([p.elapsed for p in group])),
        )
        for parameter, group in by_parameter.items()
    }
