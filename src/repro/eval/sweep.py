"""Parameter sweeps with repetition and timing."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn_rngs
from repro.utils.timer import Timer


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, repetition) measurement."""

    parameter: object
    repetition: int
    value: float
    elapsed: float


def sweep(
    parameter_values: Sequence[object],
    measure: Callable[[object, np.random.Generator], float],
    repetitions: int = 3,
    seed: int | None = 0,
) -> list[SweepPoint]:
    """Measure a function over parameter values with seeded repetitions.

    ``measure(parameter, rng)`` returns the metric; each (parameter,
    repetition) pair gets an independent RNG derived from ``seed``.
    """
    rngs = spawn_rngs(seed, len(parameter_values) * repetitions)
    points: list[SweepPoint] = []
    position = 0
    for parameter in parameter_values:
        for repetition in range(repetitions):
            with Timer() as timer:
                value = measure(parameter, rngs[position])
            points.append(
                SweepPoint(parameter, repetition, float(value), timer.elapsed)
            )
            position += 1
    return points


def aggregate(
    points: Iterable[SweepPoint],
) -> dict[object, tuple[float, float]]:
    """Per-parameter (mean value, mean elapsed seconds)."""
    by_parameter: dict[object, list[SweepPoint]] = {}
    for point in points:
        by_parameter.setdefault(point.parameter, []).append(point)
    return {
        parameter: (
            float(np.mean([p.value for p in group])),
            float(np.mean([p.elapsed for p in group])),
        )
        for parameter, group in by_parameter.items()
    }
