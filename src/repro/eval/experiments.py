"""The reconstructed evaluation: one function per table/figure.

Every experiment takes a ``scale`` multiplier (1.0 = the sizes used in
EXPERIMENTS.md; tests pass smaller values) and a ``seed``, and returns
a :class:`repro.eval.report.Table`.  The mapping from experiment id to
function is :data:`EXPERIMENTS`; benchmarks call
:func:`run_experiment`.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.benefit.mutual import (
    EgalitarianCombiner,
    LinearCombiner,
    NashCombiner,
)
from repro.core.fairness import assigned_fraction, benefit_gini, side_gap
from repro.core.objective import CoverageObjective
from repro.core.problem import MBAProblem
from repro.core.solvers import get_solver
from repro.crowd.aggregation import dawid_skene, majority_vote, weighted_majority_vote
from repro.crowd.answer_model import simulate_answers
from repro.crowd.quality import majority_vote_accuracy
from repro.datagen.synthetic import SyntheticConfig, generate_market
from repro.datagen.traces import workload_registry
from repro.errors import ConfigurationError
from repro.eval.report import Table
from repro.market.retention import RetentionModel
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timer import Timer

#: Solvers compared in the effectiveness experiments, in report order.
EFFECTIVENESS_SOLVERS = (
    "flow",
    "greedy",
    "local-search",
    "quality-only",
    "worker-only",
    "round-robin",
    "random",
)


def _scaled(base: int, scale: float, minimum: int = 4) -> int:
    return max(int(round(base * scale)), minimum)


# ---------------------------------------------------------------------------
# T1 — dataset statistics
# ---------------------------------------------------------------------------

def table1_datasets(scale: float = 1.0, seed: int = 0) -> Table:
    """T1: descriptive statistics of the four workloads."""
    table = Table(
        "Table 1: workload statistics",
        ["workload", "workers", "tasks", "mean skill", "mean pay",
         "mean repl", "demand/supply"],
        float_format="{:.3f}",
    )
    rngs = spawn_rngs(seed, 4)
    for (name, make), rng in zip(sorted(workload_registry().items()), rngs):
        market = make(
            n_workers=_scaled(200, scale), n_tasks=_scaled(100, scale),
            seed=rng,
        )
        demand = int(market.task_replications().sum())
        supply = int(market.worker_capacities().sum())
        table.add_row(
            name,
            market.n_workers,
            market.n_tasks,
            float(market.skill_matrix().mean()),
            float(market.task_payments().mean()),
            float(market.task_replications().mean()),
            demand / supply if supply else float("inf"),
        )
    return table


# ---------------------------------------------------------------------------
# T2 — effectiveness: combined benefit by algorithm and workload
# ---------------------------------------------------------------------------

def table2_effectiveness(scale: float = 1.0, seed: int = 0) -> Table:
    """T2: total mutual benefit per solver on each workload."""
    table = Table(
        "Table 2: total mutual benefit (lambda = 0.5)",
        ["workload"] + list(EFFECTIVENESS_SOLVERS),
    )
    rngs = spawn_rngs(seed, 4)
    for (name, make), rng in zip(sorted(workload_registry().items()), rngs):
        market = make(
            n_workers=_scaled(150, scale), n_tasks=_scaled(75, scale),
            seed=rng,
        )
        problem = MBAProblem(market, combiner=LinearCombiner(0.5))
        row: list[object] = [name]
        for solver_name in EFFECTIVENESS_SOLVERS:
            assignment = get_solver(solver_name).solve(problem, seed=0)
            row.append(assignment.combined_total())
        table.add_row(*row)
    return table


# ---------------------------------------------------------------------------
# T3 — answer quality by algorithm
# ---------------------------------------------------------------------------

def table3_quality(scale: float = 1.0, seed: int = 0) -> Table:
    """T3: round-1 aggregated accuracy per solver (majority vote)."""
    table = Table(
        "Table 3: aggregated answer accuracy (single round, majority vote)",
        ["workload"] + list(EFFECTIVENESS_SOLVERS),
    )
    rngs = spawn_rngs(seed, 8)
    rng_index = 0
    for name, make in sorted(workload_registry().items()):
        market = make(
            n_workers=_scaled(150, scale), n_tasks=_scaled(75, scale),
            seed=rngs[rng_index],
        )
        rng_index += 1
        answer_rng = rngs[rng_index]
        rng_index += 1
        problem = MBAProblem(market, combiner=LinearCombiner(0.5))
        row: list[object] = [name]
        for solver_name in EFFECTIVENESS_SOLVERS:
            assignment = get_solver(solver_name).solve(problem, seed=0)
            accuracies = []
            # Average over several answer realizations to denoise.
            for repetition in range(5):
                answers = simulate_answers(
                    market, list(assignment.edges),
                    seed=answer_rng.integers(2**31) + repetition,
                )
                labels = majority_vote(answers, seed=repetition)
                scored = [
                    labels[t] == truth for t, truth in answers.truths.items()
                ]
                if scored:
                    accuracies.append(sum(scored) / len(scored))
            row.append(float(np.mean(accuracies)) if accuracies else float("nan"))
        table.add_row(*row)
    return table


# ---------------------------------------------------------------------------
# T4 — worker-side outcomes
# ---------------------------------------------------------------------------

def table4_worker_outcomes(scale: float = 1.0, seed: int = 0) -> Table:
    """T4: worker benefit, spread, and long-run participation.

    Uses the tight-margin market (effort costs rival payments) where a
    worker-blind policy actually assigns money-losing edges; that is
    the regime in which the participation column separates.
    """
    table = Table(
        "Table 4: worker-side outcomes (tight-margin workload, 20 rounds)",
        ["solver", "worker benefit", "gini", "assigned frac",
         "participation@20"],
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(120, scale), n_tasks=_scaled(60, scale),
            payment_mean=0.6, payment_sigma=0.6,
            effort=2.5, reservation_fraction=0.5,
        ),
        seed=seed,
    )
    retention_template = dict(
        expectation=0.15, sharpness=8.0, base_stay=0.97
    )
    problem = MBAProblem(market, combiner=LinearCombiner(0.5))
    for solver_name in ("flow", "greedy", "quality-only", "worker-only",
                        "random"):
        assignment = get_solver(solver_name).solve(problem, seed=0)
        scenario = Scenario(
            market=market,
            solver_name=solver_name,
            n_rounds=max(int(20 * min(scale, 1.0)), 3),
            retention=RetentionModel(**retention_template),
        )
        result = Simulation(scenario).run(seed=seed + 1)
        table.add_row(
            solver_name,
            assignment.worker_total(),
            benefit_gini(assignment),
            assigned_fraction(assignment),
            result.final_participation,
        )
    return table


# ---------------------------------------------------------------------------
# F5 — long-run quality over rounds (the crossover figure)
# ---------------------------------------------------------------------------

def figure5_longrun(scale: float = 1.0, seed: int = 0) -> Table:
    """F5: cumulative accuracy per round, MBA vs quality-only.

    The market is configured so the worker side can actually be hurt:
    effort costs rival payments, so the most-accurate worker for a task
    often *loses* money doing it.  Quality-only assigns such edges
    anyway; its own workforce sours and churns, and the accuracy
    advantage it opens in early rounds erodes — the crossover the
    abstract's thesis predicts.
    """
    n_rounds = max(int(30 * min(scale, 1.0)), 5)
    table = Table(
        "Figure 5: long-run outcomes per round (retention enabled). "
        "Requester benefit = answer volume x quality; cumulative "
        "accuracy alone conditions on answered tasks and misses the "
        "volume loss.",
        ["round", "mba req benefit", "qo req benefit",
         "mba cum accuracy", "qo cum accuracy",
         "mba participation", "qo participation"],
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(120, scale), n_tasks=_scaled(80, scale),
            replication_choices=(3,),
            payment_mean=0.6, payment_sigma=0.6,
            effort=2.5, reservation_fraction=0.5,
        ),
        seed=seed,
    )
    retention = RetentionModel(
        expectation=0.15, sharpness=8.0, base_stay=0.97
    )
    results = {}
    for solver_name in ("flow", "quality-only"):
        scenario = Scenario(
            market=market,
            solver_name=solver_name,
            n_rounds=n_rounds,
            retention=retention,
        )
        results[solver_name] = Simulation(scenario).run(seed=seed + 17)
    mba, qo = results["flow"], results["quality-only"]
    mba_req = mba.series("requester_benefit")
    qo_req = qo.series("requester_benefit")
    mba_acc = mba.cumulative_accuracy()
    qo_acc = qo.cumulative_accuracy()
    mba_part = mba.series("participation_rate")
    qo_part = qo.series("participation_rate")
    for r in range(n_rounds):
        table.add_row(
            r, float(mba_req[r]), float(qo_req[r]),
            float(mba_acc[r]), float(qo_acc[r]),
            float(mba_part[r]), float(qo_part[r]),
        )
    return table


# ---------------------------------------------------------------------------
# F6 — the lambda trade-off knob
# ---------------------------------------------------------------------------

def figure6_lambda(scale: float = 1.0, seed: int = 0) -> Table:
    """F6: requester vs worker benefit as lambda sweeps 0..1."""
    table = Table(
        "Figure 6: side benefits vs lambda (flow solver)",
        ["lambda", "requester benefit", "worker benefit", "combined",
         "side gap"],
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(120, scale), n_tasks=_scaled(60, scale)
        ),
        seed=seed,
    )
    for lam in np.linspace(0.0, 1.0, 11):
        problem = MBAProblem(market, combiner=LinearCombiner(float(lam)))
        assignment = get_solver("flow").solve(problem, seed=0)
        table.add_row(
            float(lam),
            assignment.requester_total(),
            assignment.worker_total(),
            assignment.combined_total(),
            side_gap(assignment),
        )
    return table


# ---------------------------------------------------------------------------
# F7 / F8 — scalability
# ---------------------------------------------------------------------------

def _scalability(
    vary: str, sizes: list[int], fixed: int, seed: int
) -> Table:
    solvers = ("flow", "greedy", "online-greedy", "round-robin")
    table = Table(
        f"Figure {'7' if vary == 'workers' else '8'}: runtime (s) vs "
        f"|{'W' if vary == 'workers' else 'T'}|",
        [f"n_{vary}"] + list(solvers),
        float_format="{:.4f}",
    )
    rngs = spawn_rngs(seed, len(sizes))
    for size, rng in zip(sizes, rngs):
        n_workers = size if vary == "workers" else fixed
        n_tasks = size if vary == "tasks" else fixed
        market = generate_market(
            SyntheticConfig(n_workers=n_workers, n_tasks=n_tasks), seed=rng
        )
        problem = MBAProblem(market, combiner=LinearCombiner(0.5))
        row: list[object] = [size]
        for solver_name in solvers:
            solver = get_solver(solver_name)
            with Timer() as timer:
                solver.solve(problem, seed=0)
            row.append(timer.elapsed)
        table.add_row(*row)
    return table


def figure7_scale_workers(scale: float = 1.0, seed: int = 0) -> Table:
    """F7: runtime vs number of workers, |T| fixed."""
    sizes = [
        _scaled(s, scale, minimum=10) for s in (100, 200, 400, 800, 1600)
    ]
    return _scalability("workers", sizes, _scaled(100, scale, 10), seed)


def figure8_scale_tasks(scale: float = 1.0, seed: int = 0) -> Table:
    """F8: runtime vs number of tasks, |W| fixed."""
    sizes = [
        _scaled(s, scale, minimum=10) for s in (100, 200, 400, 800, 1600)
    ]
    return _scalability("tasks", sizes, _scaled(200, scale, 10), seed)


# ---------------------------------------------------------------------------
# F9 — online vs offline
# ---------------------------------------------------------------------------

def figure9_online(scale: float = 1.0, seed: int = 0) -> Table:
    """F9: empirical competitive ratio of the online solvers.

    Alongside the per-arrival algorithms, the micro-batching solver is
    swept over batch sizes: the ratio should climb toward 1 as the
    batch window grows — the operational knob platforms actually turn.
    """
    batch_sizes = (1, 5, 20)
    table = Table(
        "Figure 9: online / offline combined-benefit ratio "
        "(random arrival order, 5 repetitions)",
        ["workload", "online-greedy", "online-two-phase"]
        + [f"batch({b})" for b in batch_sizes],
    )
    rngs = spawn_rngs(seed, 4)
    for (name, make), rng in zip(sorted(workload_registry().items()), rngs):
        market = make(
            n_workers=_scaled(120, scale), n_tasks=_scaled(60, scale),
            seed=rng,
        )
        problem = MBAProblem(market, combiner=LinearCombiner(0.5))
        offline = get_solver("flow").solve(problem, seed=0).combined_total()
        if offline <= 0:
            table.add_row(
                name, *([float("nan")] * (2 + len(batch_sizes)))
            )
            continue

        def mean_ratio(solver_name: str, **kwargs) -> float:
            values = [
                get_solver(solver_name, **kwargs)
                .solve(problem, seed=rep)
                .combined_total()
                for rep in range(5)
            ]
            return float(np.mean(values)) / offline

        table.add_row(
            name,
            mean_ratio("online-greedy"),
            mean_ratio("online-two-phase"),
            *[
                mean_ratio("online-batch", batch_size=b)
                for b in batch_sizes
            ],
        )
    return table


# ---------------------------------------------------------------------------
# F10 — replication factor
# ---------------------------------------------------------------------------

def figure10_replication(scale: float = 1.0, seed: int = 0) -> Table:
    """F10: quality and per-answer cost vs replication factor k."""
    table = Table(
        "Figure 10: majority-vote accuracy vs replication k",
        ["k", "expected accuracy", "simulated accuracy",
         "marginal gain of k-th worker"],
    )
    rng = as_rng(seed)
    # One representative accuracy pool drawn from the uniform workload.
    market = generate_market(
        SyntheticConfig(n_workers=_scaled(200, scale), n_tasks=1), seed=rng
    )
    accuracies = np.sort(market.accuracy_matrix()[:, 0])[::-1]
    previous = 0.5
    for k in (1, 3, 5, 7, 9):
        committee = list(accuracies[:k])
        expected = majority_vote_accuracy(committee)
        # Monte-Carlo check with the same committee.
        n_samples = 4000
        draws = rng.random((n_samples, k)) < np.array(committee)
        votes = draws.sum(axis=1)
        wins = (votes * 2 > k).mean() + 0.5 * (votes * 2 == k).mean()
        table.add_row(k, expected, float(wins), expected - previous)
        previous = expected
    return table


# ---------------------------------------------------------------------------
# F11 — skill-distribution sensitivity
# ---------------------------------------------------------------------------

def figure11_distributions(scale: float = 1.0, seed: int = 0) -> Table:
    """F11: MBA's edge over quality-only across skill distributions."""
    table = Table(
        "Figure 11: combined benefit by skill distribution",
        ["distribution", "flow", "quality-only", "worker-only",
         "mba advantage"],
    )
    rngs = spawn_rngs(seed, 4)
    for distribution, rng in zip(
        ("uniform", "gaussian", "zipf", "bimodal"), rngs
    ):
        market = generate_market(
            SyntheticConfig(
                n_workers=_scaled(150, scale),
                n_tasks=_scaled(75, scale),
                skill_distribution=distribution,
            ),
            seed=rng,
        )
        problem = MBAProblem(market, combiner=LinearCombiner(0.5))
        values = {
            s: get_solver(s).solve(problem, seed=0).combined_total()
            for s in ("flow", "quality-only", "worker-only")
        }
        best_single = max(values["quality-only"], values["worker-only"])
        advantage = (
            values["flow"] / best_single - 1.0 if best_single > 0 else float("nan")
        )
        table.add_row(
            distribution, values["flow"], values["quality-only"],
            values["worker-only"], advantage,
        )
    return table


# ---------------------------------------------------------------------------
# F12 — greedy/flow vs exact optimum
# ---------------------------------------------------------------------------

def figure12_optimality(scale: float = 1.0, seed: int = 0) -> Table:
    """F12: empirical approximation ratio on small instances."""
    table = Table(
        "Figure 12: value / exact-optimum on 10x5 instances "
        "(20 instances, linear combiner)",
        ["solver", "mean ratio", "min ratio"],
    )
    rngs = spawn_rngs(seed, 20)
    ratios: dict[str, list[float]] = {"flow": [], "greedy": [],
                                      "local-search": []}
    for rng in rngs:
        market = generate_market(
            SyntheticConfig(
                n_workers=10, n_tasks=5, replication_choices=(1, 2),
                capacity_low=1, capacity_high=2,
            ),
            seed=rng,
        )
        problem = MBAProblem(market, combiner=LinearCombiner(0.5))
        exact = get_solver("exact", max_edges=60).solve(problem, seed=0)
        optimum = exact.combined_total()
        if optimum <= 1e-9:
            continue
        for solver_name in ratios:
            value = (
                get_solver(solver_name).solve(problem, seed=0).combined_total()
            )
            ratios[solver_name].append(value / optimum)
    for solver_name, values in ratios.items():
        table.add_row(
            solver_name,
            float(np.mean(values)) if values else float("nan"),
            float(np.min(values)) if values else float("nan"),
        )
    return table


# ---------------------------------------------------------------------------
# F13 — aggregation ablation
# ---------------------------------------------------------------------------

def figure13_aggregation(scale: float = 1.0, seed: int = 0) -> Table:
    """F13: accuracy of majority vs weighted vs Dawid-Skene vs GLAD."""
    from repro.crowd.aggregation import glad

    table = Table(
        "Figure 13: aggregation accuracy by method (zipf skills, k=5)",
        ["skill skew", "majority", "weighted", "dawid-skene", "glad"],
    )
    rngs = spawn_rngs(seed, 3)
    for exponent, rng in zip((3.0, 1.5, 0.8), rngs):
        market = generate_market(
            SyntheticConfig(
                n_workers=_scaled(60, scale),
                n_tasks=_scaled(40, scale),
                skill_distribution="zipf",
                zipf_exponent=exponent,
                skill_low=0.45,
                skill_high=0.95,
                replication_choices=(5,),
                capacity_low=3,
                capacity_high=6,
            ),
            seed=rng,
        )
        problem = MBAProblem(market, combiner=LinearCombiner(0.5))
        assignment = get_solver("flow").solve(problem, seed=0)
        answer_rng = as_rng(int(rng.integers(2**31)))
        accuracy_matrix = market.accuracy_matrix()
        mean_accuracy = {
            i: float(accuracy_matrix[i].mean())
            for i in range(market.n_workers)
        }
        scores = {
            "majority": [], "weighted": [], "dawid-skene": [], "glad": []
        }
        for repetition in range(5):
            answers = simulate_answers(
                market, list(assignment.edges), seed=answer_rng
            )
            labelings = {
                "majority": majority_vote(answers, seed=repetition),
                "weighted": weighted_majority_vote(
                    answers, mean_accuracy, seed=repetition
                ),
                "dawid-skene": dawid_skene(answers).labels,
                "glad": glad(answers, max_iterations=20).labels,
            }
            for method, labels in labelings.items():
                scored = [
                    labels[t] == truth
                    for t, truth in answers.truths.items()
                ]
                if scored:
                    scores[method].append(sum(scored) / len(scored))
        table.add_row(
            f"zipf({exponent})",
            float(np.mean(scores["majority"])),
            float(np.mean(scores["weighted"])),
            float(np.mean(scores["dawid-skene"])),
            float(np.mean(scores["glad"])),
        )
    return table


# ---------------------------------------------------------------------------
# F14 — combiner ablation
# ---------------------------------------------------------------------------

def figure14_combiners(scale: float = 1.0, seed: int = 0) -> Table:
    """F14: linear vs egalitarian vs Nash on side balance."""
    table = Table(
        "Figure 14: combiner ablation (local-search solver)",
        ["combiner", "requester benefit", "worker benefit", "side gap",
         "combined (linear 0.5)"],
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(60, scale), n_tasks=_scaled(30, scale)
        ),
        seed=seed,
    )
    combiners = {
        "linear(0.5)": LinearCombiner(0.5),
        "egalitarian": EgalitarianCombiner(),
        "nash": NashCombiner(),
    }
    for name, combiner in combiners.items():
        problem = MBAProblem(market, combiner=combiner)
        assignment = get_solver("local-search").solve(problem, seed=0)
        req = assignment.requester_total()
        wrk = assignment.worker_total()
        table.add_row(
            name, req, wrk, side_gap(assignment), 0.5 * req + 0.5 * wrk
        )
    return table


# ---------------------------------------------------------------------------
# F15 — skill-estimation ablation (oracle vs estimated planning)
# ---------------------------------------------------------------------------

def figure15_estimation(scale: float = 1.0, seed: int = 0) -> Table:
    """F15: assignment value under estimated vs oracle skills, by round.

    The estimator starts at the prior and learns from gold questions +
    aggregated labels; the gap to the oracle planner shrinks as history
    accumulates.
    """
    from repro.crowd.estimation import BetaSkillEstimator

    n_rounds = max(int(12 * min(scale, 1.0)), 4)
    table = Table(
        "Figure 15: oracle vs estimated planning (combined benefit/round)",
        ["round", "oracle", "estimated", "gap %"],
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(80, scale), n_tasks=_scaled(40, scale)
        ),
        seed=seed,
    )
    oracle = Simulation(
        Scenario(market=market, solver_name="flow", n_rounds=n_rounds,
                 retention=None)
    ).run(seed=seed + 1)
    estimator = BetaSkillEstimator()
    estimated = Simulation(
        Scenario(market=market, solver_name="flow", n_rounds=n_rounds,
                 retention=None, estimator=estimator, gold_fraction=0.2)
    ).run(seed=seed + 1)
    oracle_series = oracle.series("combined_benefit")
    estimated_series = estimated.series("combined_benefit")
    for r in range(n_rounds):
        gap = (
            100.0 * (oracle_series[r] - estimated_series[r])
            / oracle_series[r]
            if oracle_series[r] > 0
            else float("nan")
        )
        table.add_row(
            r, float(oracle_series[r]), float(estimated_series[r]), gap
        )
    return table


# ---------------------------------------------------------------------------
# F16 — constraint ablation (the "general settings" of the title)
# ---------------------------------------------------------------------------

def figure16_constraints(scale: float = 1.0, seed: int = 0) -> Table:
    """F16: the price of each side constraint on total benefit."""
    from repro.core.constraints import (
        BudgetConstraint,
        CategoryDiversityConstraint,
        MinAccuracyConstraint,
    )

    table = Table(
        "Figure 16: combined benefit under side constraints "
        "(constrained-greedy)",
        ["constraint", "combined benefit", "edges", "vs unconstrained"],
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(100, scale), n_tasks=_scaled(50, scale),
            n_requesters=5,
        ),
        seed=seed,
    )
    problem = MBAProblem(market, combiner=LinearCombiner(0.5))
    # Budgets set to ~60 % of each requester's posted payment volume.
    volume: dict[int, float] = {}
    for task in market.tasks:
        volume[task.requester_id] = (
            volume.get(task.requester_id, 0.0)
            + task.payment * task.replication
        )
    budgets = {r: 0.6 * v for r, v in volume.items()}

    settings = {
        "none": [],
        "budget(60%)": [BudgetConstraint(budgets)],
        "min-accuracy(0.7)": [MinAccuracyConstraint(0.7)],
        "diversity(1/cat)": [CategoryDiversityConstraint(1)],
        "all three": [
            BudgetConstraint(budgets),
            MinAccuracyConstraint(0.7),
            CategoryDiversityConstraint(1),
        ],
    }
    baseline = None
    for name, constraints in settings.items():
        assignment = get_solver(
            "constrained-greedy", constraints=constraints
        ).solve(problem, seed=0)
        value = assignment.combined_total()
        if baseline is None:
            baseline = value
        table.add_row(
            name, value, len(assignment),
            value / baseline if baseline else float("nan"),
        )
    return table


# ---------------------------------------------------------------------------
# F17 — candidate-pruning ablation (quality vs speed)
# ---------------------------------------------------------------------------

def figure17_pruning(scale: float = 1.0, seed: int = 0) -> Table:
    """F17: pruned-greedy quality and runtime as k grows."""
    table = Table(
        "Figure 17: top-k pruning — value ratio to flow and runtime",
        ["k", "value ratio", "runtime (s)", "flow runtime (s)"],
        float_format="{:.4f}",
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(400, scale, 40),
            n_tasks=_scaled(200, scale, 20),
        ),
        seed=seed,
    )
    problem = MBAProblem(market, combiner=LinearCombiner(0.5))
    with Timer() as flow_timer:
        flow_value = get_solver("flow").solve(problem).combined_total()
    for k in (1, 2, 5, 10, 20, 50):
        solver = get_solver("pruned-greedy", k=k)
        with Timer() as timer:
            value = solver.solve(problem).combined_total()
        table.add_row(
            k,
            value / flow_value if flow_value > 0 else float("nan"),
            timer.elapsed,
            flow_timer.elapsed,
        )
    return table


# ---------------------------------------------------------------------------
# F18 — stability/benefit frontier for incremental re-assignment
# ---------------------------------------------------------------------------

def figure18_stability(scale: float = 1.0, seed: int = 0) -> Table:
    """F18: sweeping the stability bonus trades benefit for retention."""
    from repro.core.solvers.incremental import edge_ids, retention_overlap

    table = Table(
        "Figure 18: incremental re-solve — retained edges vs benefit",
        ["stability bonus", "edge retention", "combined benefit",
         "vs re-solve"],
    )
    import dataclasses

    rng = as_rng(seed)
    market_a = generate_market(
        SyntheticConfig(
            n_workers=_scaled(100, scale), n_tasks=_scaled(50, scale)
        ),
        seed=rng,
    )
    problem_a = MBAProblem(market_a, combiner=LinearCombiner(0.5))
    previous = get_solver("flow").solve(problem_a, seed=0)
    previous_ids = edge_ids(problem_a, previous)

    # Round 2: the same market a day later — skills drift slightly and
    # ~10 % of workers are away.
    drifted_workers = []
    for worker in market_a.workers:
        skills = np.clip(
            worker.skills + rng.normal(0.0, 0.05, worker.skills.shape),
            0.0, 1.0,
        )
        drifted = dataclasses.replace(worker, skills=skills)
        drifted.active = rng.random() >= 0.1
        drifted_workers.append(drifted)
    market_b = type(market_a)(
        drifted_workers, market_a.tasks, market_a.taxonomy,
        market_a.requesters,
    )
    problem_b = MBAProblem(market_b, combiner=LinearCombiner(0.5))
    fresh_value = get_solver("flow").solve(problem_b, seed=0).combined_total()
    for bonus in (0.0, 0.1, 0.25, 0.5, 1.0, 2.0):
        solver = get_solver(
            "incremental-flow",
            previous_edge_ids=previous_ids,
            stability_bonus=bonus,
        )
        assignment = solver.solve(problem_b, seed=0)
        table.add_row(
            bonus,
            retention_overlap(previous_ids, problem_b, assignment),
            assignment.combined_total(),
            assignment.combined_total() / fresh_value
            if fresh_value > 0
            else float("nan"),
        )
    return table


# ---------------------------------------------------------------------------
# F19 — matching-theory comparison: deferred acceptance vs MBA
# ---------------------------------------------------------------------------

def figure19_stable(scale: float = 1.0, seed: int = 0) -> Table:
    """F19: total benefit vs blocking pairs across solver families.

    Deferred acceptance embodies matching theory's "no pair would
    deviate" notion of mutual agreeability; the MBA solvers maximize
    total benefit.  The table shows what each family gives up.
    """
    from repro.core.solvers.stable import StableMatchingSolver

    table = Table(
        "Figure 19: deferred acceptance vs MBA solvers",
        ["solver", "combined benefit", "blocking pairs",
         "requester benefit", "worker benefit"],
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(80, scale), n_tasks=_scaled(40, scale)
        ),
        seed=seed,
    )
    problem = MBAProblem(market, combiner=LinearCombiner(0.5))
    for solver_name in ("stable-matching", "flow", "greedy",
                        "quality-only", "random"):
        assignment = get_solver(solver_name).solve(problem, seed=0)
        table.add_row(
            solver_name,
            assignment.combined_total(),
            StableMatchingSolver.count_blocking_pairs(problem, assignment),
            assignment.requester_total(),
            assignment.worker_total(),
        )
    return table


# ---------------------------------------------------------------------------
# F20 — continuous-time load sweep (event-driven simulator)
# ---------------------------------------------------------------------------

def figure20_load(scale: float = 1.0, seed: int = 0) -> Table:
    """F20: fill rate and per-assignment benefit vs supply/demand ratio.

    The event-driven simulator posts tasks and logs workers in at
    Poisson rates; sweeping the worker rate against a fixed task rate
    traces the under- to over-supplied regimes, for both dispatch
    policies.
    """
    from repro.sim.events import EventSimConfig, EventSimulation

    table = Table(
        "Figure 20: continuous-time load sweep (fill rate / mean benefit)",
        ["supply ratio", "greedy fill", "threshold fill",
         "greedy mean benefit", "threshold mean benefit"],
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(60, scale), n_tasks=_scaled(30, scale)
        ),
        seed=seed,
    )
    horizon = 120.0 * min(scale, 1.0) + 30.0
    for ratio in (0.25, 0.5, 1.0, 2.0, 4.0):
        fills = {}
        means = {}
        for policy in ("greedy", "threshold"):
            config = EventSimConfig(
                horizon=horizon,
                task_rate=2.0,
                worker_rate=2.0 * ratio,
                deadline=8.0,
                session_length=4.0,
                policy=policy,
                threshold_start=0.5,
            )
            result = EventSimulation(market, config).run(seed=seed + 3)
            fills[policy] = result.fill_rate
            means[policy] = (
                result.combined_benefit / len(result.assignments)
                if result.assignments
                else float("nan")
            )
        table.add_row(
            ratio, fills["greedy"], fills["threshold"],
            means["greedy"], means["threshold"],
        )
    return table


# ---------------------------------------------------------------------------
# F21 — pricing ablation: as-posted vs optimized payments
# ---------------------------------------------------------------------------

def figure21_pricing(scale: float = 1.0, seed: int = 0) -> Table:
    """F21: what optimal per-task pricing buys, by worker scarcity.

    Payments are re-optimized per task (surplus-maximizing sweep over
    the workers' indifference prices) and the flow assignment is
    re-run.  The metric that pricing targets is the requester
    **surplus** — ``value_per_quality * realized quality − payments
    made`` — not the payment-scaled MBA benefit (cutting payments
    trivially lowers that); both are reported for honesty.
    """
    from repro.crowd.quality import knowledge_coverage_quality
    from repro.market.pricing import price_market

    value_per_quality = 3.0

    def requester_surplus(problem: MBAProblem, assignment) -> float:
        accuracy = problem.market.accuracy_matrix()
        surplus = 0.0
        for task_index, workers in assignment.workers_per_task().items():
            quality = knowledge_coverage_quality(
                [accuracy[i, task_index] for i in workers]
            )
            paid = problem.market.tasks[task_index].payment * len(workers)
            surplus += value_per_quality * quality - paid
        return surplus

    table = Table(
        "Figure 21: as-posted vs optimized payments (flow solver, "
        "value 3.0/quality-unit)",
        ["reservation level", "posted surplus", "repriced surplus",
         "posted worker benefit", "repriced worker benefit",
         "repriced mean pay"],
    )
    rngs = spawn_rngs(seed, 3)
    for reservation_fraction, rng in zip((0.1, 0.5, 1.0), rngs):
        market = generate_market(
            SyntheticConfig(
                n_workers=_scaled(80, scale),
                n_tasks=_scaled(40, scale),
                reservation_fraction=reservation_fraction,
            ),
            seed=rng,
        )
        repriced = price_market(market, value_per_quality=value_per_quality)
        surpluses = []
        worker_totals = []
        for candidate in (market, repriced):
            problem = MBAProblem(candidate, combiner=LinearCombiner(0.5))
            assignment = get_solver("flow").solve(problem, seed=0)
            surpluses.append(requester_surplus(problem, assignment))
            worker_totals.append(assignment.worker_total())
        table.add_row(
            f"res={reservation_fraction:.1f}x pay",
            surpluses[0], surpluses[1],
            worker_totals[0], worker_totals[1],
            float(repriced.task_payments().mean()),
        )
    return table


# ---------------------------------------------------------------------------
# F22 — scale-normalization ablation
# ---------------------------------------------------------------------------

def figure22_normalization(scale: float = 1.0, seed: int = 0) -> Table:
    """F22: does λ mean what it says?  Raw vs normalized side scales.

    On the upwork-like market the worker side's monetary units dwarf
    the requester side's quality units; with raw scales even a λ=0.9
    objective stays worker-dominated (requester share ≈ 1/3).
    Normalizing both sides moves the requester share toward parity at
    every λ — scale honesty, the precondition for the λ knob (F6) to
    mean anything across heterogeneous markets.
    """
    from repro.benefit.normalization import normalized_problem
    from repro.datagen.traces import upwork_like_market

    table = Table(
        "Figure 22: requester share of total side benefit vs lambda, "
        "raw vs normalized scales (upwork-like)",
        ["lambda", "raw req share", "normalized req share"],
    )
    market = upwork_like_market(
        n_workers=_scaled(120, scale), n_tasks=_scaled(50, scale),
        seed=seed,
    )

    def requester_share(problem: MBAProblem) -> float:
        assignment = get_solver("flow").solve(problem, seed=0)
        # Shares computed on the problem's own (possibly normalized)
        # matrices so both columns are comparable within themselves.
        req, wrk = problem.benefits.side_totals(list(assignment.edges))
        denominator = abs(req) + abs(wrk)
        return req / denominator if denominator > 0 else float("nan")

    for lam in (0.1, 0.3, 0.5, 0.7, 0.9):
        raw = MBAProblem(market, combiner=LinearCombiner(lam))
        normalized = normalized_problem(
            market, combiner=LinearCombiner(lam)
        )
        table.add_row(lam, requester_share(raw), requester_share(normalized))
    return table


# ---------------------------------------------------------------------------
# F23 — skill drift: does the policy train tomorrow's workforce?
# ---------------------------------------------------------------------------

def figure23_drift(scale: float = 1.0, seed: int = 0) -> Table:
    """F23: long-run skill pool under learning-by-doing drift.

    With drift on, practiced skills grow and idle skills rust, so the
    assignment policy shapes the future pool.  The table tracks the
    population's mean skill and per-round requester benefit for MBA,
    quality-only (concentrates practice on the already-strong), and
    round-robin (spreads practice).
    """
    from repro.market.drift import SkillDriftModel

    n_rounds = max(int(20 * min(scale, 1.0)), 5)
    solvers = ("flow", "quality-only", "round-robin")
    table = Table(
        "Figure 23: learning-by-doing — final mean skill and requester "
        "benefit trajectory",
        ["solver", "mean skill r0", "mean skill final",
         "req benefit r0", "req benefit final"],
    )
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(80, scale), n_tasks=_scaled(30, scale),
            skill_low=0.55, skill_high=0.8,
        ),
        seed=seed,
    )
    drift = SkillDriftModel(learning_rate=0.1, decay_rate=0.02)
    skill_start = float(np.mean([w.skills.mean() for w in market.workers]))
    for solver_name in solvers:
        # The Simulation (drift enabled) provides the benefit
        # trajectory; a deterministic manual replay of the same rounds
        # exposes the drifted skill pool, which RoundMetrics does not
        # carry.
        scenario = Scenario(
            market=market, solver_name=solver_name, n_rounds=n_rounds,
            retention=None, drift=drift,
        )
        result = Simulation(scenario).run(seed=seed + 5)
        req = result.series("requester_benefit")

        import dataclasses

        from repro.market.market import LaborMarket

        live_workers = [
            dataclasses.replace(w, skills=w.skills.copy())
            for w in market.workers
        ]
        live = LaborMarket(
            live_workers, market.tasks, market.taxonomy, market.requesters
        )
        solver = get_solver(solver_name)
        for _round in range(n_rounds):
            problem = MBAProblem(live, combiner=LinearCombiner(0.5))
            assignment = solver.solve(problem, seed=0)
            drift.apply(live, list(assignment.edges))
        skill_final = float(
            np.mean([w.skills.mean() for w in live.workers])
        )
        table.add_row(
            solver_name, skill_start, skill_final,
            float(req[0]), float(req[-1]),
        )
    return table


# ---------------------------------------------------------------------------
# F24 — graceful degradation under injected faults
# ---------------------------------------------------------------------------

def figure24_faults(scale: float = 1.0, seed: int = 0) -> Table:
    """F24: benefit and accuracy vs. injected fault rate.

    Sweeps a uniform :class:`~repro.resilience.FaultPlan` (fixed plan
    seed, so every cell sees the same fault draws) over greedy and
    mutual-benefit (flow) policies with the resilient executor on.
    Expected shape: degradation is *graceful* — benefit and accuracy
    decline roughly in proportion to the fault rate, with no cliff —
    and mutual benefit keeps its edge over greedy at every rate.
    """
    from repro.resilience import FaultPlan

    n_rounds = max(int(12 * min(scale, 1.0)), 4)
    rates = (0.0, 0.05, 0.1, 0.2, 0.4)
    market = generate_market(
        SyntheticConfig(
            n_workers=_scaled(60, scale), n_tasks=_scaled(24, scale),
        ),
        seed=seed,
    )
    table = Table(
        "Figure 24: per-round benefit and accuracy vs. injected fault "
        "rate (resilient executor on)",
        ["fault rate", "greedy benefit", "greedy accuracy",
         "mba benefit", "mba accuracy", "degraded rounds"],
    )
    for rate in rates:
        # One plan per rate, shared across solvers: both policies face
        # the identical fault draws, so the comparison is paired.
        plan = FaultPlan.uniform(rate, seed=17)
        row: list[float] = [rate]
        degraded = 0
        for solver_name in ("greedy", "flow"):
            scenario = Scenario(
                market=market,
                solver_name=solver_name,
                n_rounds=n_rounds,
                retention=None,
                fault_plan=plan,
                resilience="default",
            )
            result = Simulation(scenario).run(seed=seed + 3)
            row.append(float(result.series("combined_benefit").mean()))
            row.append(result.mean_accuracy)
            degraded += result.degraded_rounds
        row.append(degraded)
        table.add_row(*row)
    return table


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[..., Table]] = {
    "T1": table1_datasets,
    "T2": table2_effectiveness,
    "T3": table3_quality,
    "T4": table4_worker_outcomes,
    "F5": figure5_longrun,
    "F6": figure6_lambda,
    "F7": figure7_scale_workers,
    "F8": figure8_scale_tasks,
    "F9": figure9_online,
    "F10": figure10_replication,
    "F11": figure11_distributions,
    "F12": figure12_optimality,
    "F13": figure13_aggregation,
    "F14": figure14_combiners,
    "F15": figure15_estimation,
    "F16": figure16_constraints,
    "F17": figure17_pruning,
    "F18": figure18_stability,
    "F19": figure19_stable,
    "F20": figure20_load,
    "F21": figure21_pricing,
    "F22": figure22_normalization,
    "F23": figure23_drift,
    "F24": figure24_faults,
}


def run_experiment(
    experiment_id: str, scale: float = 1.0, seed: int = 0
) -> Table:
    """Run one experiment by id (e.g. ``"T2"``, ``"F9"``)."""
    try:
        function = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    return function(scale=scale, seed=seed)
