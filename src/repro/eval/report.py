"""Plain-text table rendering for experiment output.

The harness prints tables shaped like the paper's: a caption, aligned
columns, and a consistent float format, so paper-vs-measured comparison
in EXPERIMENTS.md is a visual diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError


@dataclass
class Table:
    """A caption + header + rows of printable cells."""

    caption: str
    header: list[str]
    rows: list[list[object]] = field(default_factory=list)
    float_format: str = "{:.4f}"

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.header):
            raise ValidationError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append(list(cells))

    def _format_cell(self, cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    def render(self) -> str:
        formatted = [[self._format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.header[i]), *(len(r[i]) for r in formatted))
            if formatted
            else len(self.header[i])
            for i in range(len(self.header))
        ]
        lines = [self.caption]
        lines.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.header))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append(
                "  ".join(c.rjust(widths[i]) for i, c in enumerate(row))
            )
        return "\n".join(lines)

    def render_latex(self) -> str:
        """The table as a LaTeX ``tabular`` inside a ``table`` float.

        Headers are escaped; floats use the table's float format —
        paste-ready for a paper draft.
        """
        def escape(text: str) -> str:
            for char in ("&", "%", "#", "_"):
                text = text.replace(char, "\\" + char)
            return text

        column_spec = "l" + "r" * (len(self.header) - 1)
        lines = [
            "\\begin{table}[t]",
            "\\centering",
            f"\\caption{{{escape(self.caption)}}}",
            f"\\begin{{tabular}}{{{column_spec}}}",
            "\\toprule",
            " & ".join(escape(h) for h in self.header) + " \\\\",
            "\\midrule",
        ]
        for row in self.rows:
            cells = [escape(self._format_cell(cell)) for cell in row]
            lines.append(" & ".join(cells) + " \\\\")
        lines.extend(["\\bottomrule", "\\end{tabular}", "\\end{table}"])
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The table as RFC-4180-ish CSV (caption excluded).

        Cells containing commas or quotes are quoted; floats keep full
        ``repr`` precision (CSV is for machines; ``render`` for eyes).
        """
        def cell_text(cell: object) -> str:
            text = repr(cell) if isinstance(cell, float) else str(cell)
            if any(ch in text for ch in ',"\n'):
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(cell_text(h) for h in self.header)]
        for row in self.rows:
            lines.append(",".join(cell_text(c) for c in row))
        return "\n".join(lines)

    def column(self, name: str) -> list[object]:
        """All values of one named column (raw, unformatted)."""
        try:
            index = self.header.index(name)
        except ValueError:
            raise ValidationError(
                f"no column {name!r}; header is {self.header}"
            ) from None
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        return self.render()
