"""Evaluation harness: experiment registry, sweeps, table rendering.

Every table and figure of the reconstructed evaluation (DESIGN.md §3)
has a function in :mod:`repro.eval.experiments` returning a
:class:`repro.eval.report.Table`; the benchmark modules under
``benchmarks/`` call those functions and print the rendered tables.
"""

from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.plotting import ascii_chart, chart_from_table
from repro.eval.report import Table
from repro.eval.significance import compare_solvers
from repro.eval.sweep import (
    SpecSweep,
    SweepOutcome,
    measure_spec_point,
    run_sweep,
    sweep,
    sweep_spec,
)

__all__ = [
    "EXPERIMENTS",
    "SpecSweep",
    "Table",
    "ascii_chart",
    "chart_from_table",
    "compare_solvers",
    "SweepOutcome",
    "measure_spec_point",
    "run_experiment",
    "run_sweep",
    "sweep",
    "sweep_spec",
]
