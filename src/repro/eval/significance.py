"""Statistical comparison of solvers across seeds.

A single-seed table can flatter a solver; the paper-grade claim is
"solver A beats solver B across workloads, with confidence".  This
module runs each solver over many seeded market instances and reports:

* mean ± 95 % CI of the metric per solver;
* a paired sign test against a chosen baseline (does A beat B on more
  instances than chance would allow?).

The sign test is exact-binomial (no scipy): under H0 ("A vs B is a
coin flip"), wins ~ Binomial(n, 1/2); we report the two-sided p-value.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.benefit.mutual import LinearCombiner
from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers import get_solver
from repro.errors import ValidationError
from repro.eval.report import Table
from repro.market.market import LaborMarket
from repro.utils.rng import spawn_rngs
from repro.utils.stats import mean_confidence_interval

#: Builds one market instance per seed.
MarketFactory = Callable[[np.random.Generator], LaborMarket]
#: Extracts the compared metric from an assignment.
Metric = Callable[[Assignment], float]


@dataclass(frozen=True)
class PairedComparison:
    """Sign-test outcome of one solver against the baseline."""

    solver: str
    wins: int
    losses: int
    ties: int
    p_value: float


def binomial_two_sided_p(wins: int, trials: int) -> float:
    """Exact two-sided binomial(n, 1/2) p-value for the sign test."""
    if trials < 0 or wins < 0 or wins > trials:
        raise ValidationError(
            f"need 0 <= wins <= trials, got wins={wins} trials={trials}"
        )
    if trials == 0:
        return 1.0
    pmf = [math.comb(trials, k) * 0.5**trials for k in range(trials + 1)]
    observed = pmf[wins]
    return float(min(sum(p for p in pmf if p <= observed + 1e-15), 1.0))


def compare_solvers(
    market_factory: MarketFactory,
    solver_names: Sequence[str],
    n_instances: int = 20,
    baseline: str | None = None,
    metric: Metric | None = None,
    lam: float = 0.5,
    seed: int = 0,
) -> tuple[Table, list[PairedComparison]]:
    """Run solvers over seeded instances; report CIs and sign tests.

    Parameters
    ----------
    market_factory:
        ``rng -> LaborMarket``; called once per instance.
    solver_names:
        Registered solver names to compare.
    baseline:
        Name paired against every other solver (defaults to the first).
    metric:
        Metric of an assignment (defaults to combined total).

    Returns
    -------
    (table, comparisons)
        The rendered-ready table of mean ± CI, and the paired sign-test
        results against the baseline.
    """
    if n_instances < 1:
        raise ValidationError("n_instances must be >= 1")
    if not solver_names:
        raise ValidationError("need at least one solver name")
    baseline = baseline if baseline is not None else solver_names[0]
    if baseline not in solver_names:
        raise ValidationError(
            f"baseline {baseline!r} not among solvers {list(solver_names)}"
        )
    metric = metric if metric is not None else (
        lambda assignment: assignment.combined_total()
    )

    rngs = spawn_rngs(seed, n_instances)
    values: dict[str, list[float]] = {name: [] for name in solver_names}
    for rng in rngs:
        market = market_factory(rng)
        problem = MBAProblem(market, combiner=LinearCombiner(lam))
        for name in solver_names:
            assignment = get_solver(name).solve(problem, seed=0)
            values[name].append(metric(assignment))

    table = Table(
        f"Solver comparison over {n_instances} instances "
        f"(mean [95 % CI]); baseline = {baseline}",
        ["solver", "mean", "ci low", "ci high", "vs baseline"],
    )
    comparisons: list[PairedComparison] = []
    base_values = values[baseline]
    for name in solver_names:
        mean, low, high = mean_confidence_interval(values[name])
        wins = sum(a > b + 1e-12 for a, b in zip(values[name], base_values))
        losses = sum(a < b - 1e-12 for a, b in zip(values[name], base_values))
        ties = n_instances - wins - losses
        decisive = wins + losses
        p_value = binomial_two_sided_p(wins, decisive)
        comparisons.append(
            PairedComparison(name, wins, losses, ties, p_value)
        )
        table.add_row(
            name, mean, low, high,
            "baseline" if name == baseline else f"p={p_value:.3f}",
        )
    return table, comparisons
