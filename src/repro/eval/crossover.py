"""Crossover detection for paired time series.

The F5 claim is literally "the curves cross"; this module makes that
claim checkable by machine instead of by eyeball:

* :func:`crossover_round` — first index where series B, having started
  at or below series A, rises to meet/exceed it *and stays ahead* for a
  persistence window (one-round blips from simulation noise don't
  count);
* :func:`dominance_fraction` — fraction of rounds where B ≥ A, a
  scalar summary robust to exactly-where-it-crossed disputes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError


def _pair(a: Sequence[float], b: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    first = np.asarray(a, dtype=float)
    second = np.asarray(b, dtype=float)
    if first.shape != second.shape or first.ndim != 1:
        raise ValidationError(
            f"need two equal-length 1-D series, got {first.shape} and "
            f"{second.shape}"
        )
    if first.size == 0:
        raise ValidationError("series are empty")
    return first, second


def crossover_round(
    leader: Sequence[float],
    challenger: Sequence[float],
    persistence: int = 3,
) -> int | None:
    """First round where the challenger overtakes *and holds* the lead.

    Returns the index of the first position from which
    ``challenger >= leader`` for ``persistence`` consecutive rounds
    (or through the end of the series, if fewer remain), or ``None``
    if that never happens.
    """
    if persistence < 1:
        raise ValidationError(f"persistence must be >= 1, got {persistence}")
    a, b = _pair(leader, challenger)
    ahead = b >= a
    n = a.size
    for start in range(n):
        window = ahead[start : start + persistence]
        if window.size and window.all():
            return start
    return None


def dominance_fraction(
    leader: Sequence[float], challenger: Sequence[float]
) -> float:
    """Fraction of rounds where the challenger is at/above the leader."""
    a, b = _pair(leader, challenger)
    return float(np.mean(b >= a))
