"""ASCII line charts for figure-type experiments.

The evaluation's "figures" are series; rendering them as terminal
charts makes shapes (crossovers, diminishing returns, scaling slopes)
visible without matplotlib.  Pure text, fixed-width, deterministic.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ValidationError

_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
) -> str:
    """Render named series as an ASCII line chart.

    All series share the x-axis (their index) and the y-range; NaN
    points are skipped.  Each series gets a marker from ``*o+x#@%&``
    and a legend line.
    """
    if not series:
        raise ValidationError("ascii_chart requires at least one series")
    if width < 8 or height < 4:
        raise ValidationError("chart needs width >= 8 and height >= 4")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValidationError(
            f"all series must share one length, got {sorted(lengths)}"
        )
    n_points = lengths.pop()
    if n_points == 0:
        raise ValidationError("series are empty")

    finite = [
        v
        for values in series.values()
        for v in values
        if not math.isnan(float(v))
    ]
    if not finite:
        raise ValidationError("all points are NaN")
    y_min, y_max = min(finite), max(finite)
    if y_max == y_min:
        y_max = y_min + 1.0  # flat series: give the band some height

    grid = [[" "] * width for _ in range(height)]

    def to_cell(x_index: int, value: float) -> tuple[int, int] | None:
        if math.isnan(value):
            return None
        col = (
            0
            if n_points == 1
            else round(x_index * (width - 1) / (n_points - 1))
        )
        row = round((y_max - value) * (height - 1) / (y_max - y_min))
        return row, col

    for marker, (_name, values) in zip(_MARKERS, series.items()):
        for x_index, value in enumerate(values):
            cell = to_cell(x_index, float(value))
            if cell is not None:
                row, col = cell
                grid[row][col] = marker

    axis_width = max(len(f"{y_max:.3g}"), len(f"{y_min:.3g}"))
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:.3g}".rjust(axis_width)
        elif row_index == height - 1:
            label = f"{y_min:.3g}".rjust(axis_width)
        else:
            label = " " * axis_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * axis_width + " +" + "-" * width)
    if x_label:
        lines.append(" " * (axis_width + 2) + x_label)
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(" " * (axis_width + 2) + legend)
    return "\n".join(lines)


def chart_from_table(
    table, x_column: str, y_columns: Sequence[str], **kwargs
) -> str:
    """Chart selected columns of an eval Table against one x column."""
    series = {name: [float(v) for v in table.column(name)] for name in y_columns}
    x_values = table.column(x_column)
    title = kwargs.pop("title", table.caption)
    x_label = kwargs.pop(
        "x_label", f"{x_column}: {x_values[0]} .. {x_values[-1]}"
    )
    return ascii_chart(series, title=title, x_label=x_label, **kwargs)
