"""Distributional fairness measures over worker outcomes.

The abstract's "workers' willingness to participate" has two
observable proxies: how much benefit workers receive and how evenly it
is spread.  These functions summarize an assignment from the worker
population's point of view; experiment T4 reports them.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.utils.stats import gini


def worker_benefit_vector(assignment: Assignment) -> np.ndarray:
    """Per-worker benefit across *all* active workers (unassigned → 0)."""
    problem = assignment.problem
    per_worker = assignment.per_worker_benefit()
    active = [
        i for i in range(problem.n_workers) if problem.is_worker_active(i)
    ]
    return np.array([per_worker.get(i, 0.0) for i in active], dtype=float)


def benefit_gini(assignment: Assignment) -> float:
    """Gini of non-negative worker benefit (negatives clipped to 0).

    Clipping keeps the coefficient well-defined; a worker with negative
    benefit is no better off than an unassigned one for inequality
    purposes.
    """
    vector = np.clip(worker_benefit_vector(assignment), 0.0, None)
    return gini(vector)


def assigned_fraction(assignment: Assignment) -> float:
    """Fraction of active workers who received at least one task."""
    problem = assignment.problem
    active = sum(
        problem.is_worker_active(i) for i in range(problem.n_workers)
    )
    if active == 0:
        return 0.0
    return len(assignment.tasks_per_worker()) / active


def side_gap(assignment: Assignment) -> float:
    """|requester_total − worker_total| normalized by their sum.

    0 means perfectly balanced sides, 1 means one side got everything.
    Undefined (returns 0) when both totals are non-positive.
    """
    req = assignment.requester_total()
    wrk = assignment.worker_total()
    denom = abs(req) + abs(wrk)
    if denom <= 0:
        return 0.0
    return abs(req - wrk) / denom
