"""The paper's primary contribution: mutual benefit aware assignment.

* :mod:`problem` — the MBA problem instance (market + benefit models +
  combiner) with validation and feasibility checking;
* :mod:`assignment` — the immutable assignment result with per-side
  accounting;
* :mod:`objective` — objective evaluation: the additive (linear) view
  and the submodular coverage view;
* :mod:`fairness` — distributional measures over worker benefit;
* :mod:`solvers` — the solver registry: exact, flow-optimal, greedy,
  local search, online, and the single-sided baselines.
"""

from repro.core.analysis import AssignmentReport, analyze
from repro.core.assignment import Assignment
from repro.core.constraints import (
    BudgetConstraint,
    CategoryDiversityConstraint,
    ConstrainedGreedySolver,
    Constraint,
    MinAccuracyConstraint,
)
from repro.core.objective import CoverageObjective, LinearObjective, Objective
from repro.core.problem import MBAProblem
from repro.core.solvers import SOLVER_REGISTRY, get_solver, list_solvers

__all__ = [
    "Assignment",
    "AssignmentReport",
    "BudgetConstraint",
    "CategoryDiversityConstraint",
    "ConstrainedGreedySolver",
    "Constraint",
    "CoverageObjective",
    "LinearObjective",
    "MBAProblem",
    "MinAccuracyConstraint",
    "Objective",
    "SOLVER_REGISTRY",
    "analyze",
    "get_solver",
    "list_solvers",
]
