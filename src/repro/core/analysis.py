"""Assignment diagnostics: the report an operator reads after a solve.

Summarizes an assignment from every stakeholder's angle — totals,
per-category utilization, worker load distribution, the benefit
decomposition, and the unfilled demand — as a structured object and as
rendered text.  Examples and the CLI use it; tests lock the accounting
identities (shares sum to 1, loads sum to edge count, etc.).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import Assignment
from repro.core.fairness import assigned_fraction, benefit_gini, side_gap
from repro.utils.stats import Summary


@dataclass(frozen=True)
class CategoryUtilization:
    """Demand vs supply vs filled for one task category."""

    category: str
    n_tasks: int
    demand: int
    filled: int

    @property
    def fill_rate(self) -> float:
        return self.filled / self.demand if self.demand else 0.0


@dataclass(frozen=True)
class AssignmentReport:
    """Full diagnostic snapshot of one assignment."""

    solver: str
    n_edges: int
    coverage: float
    requester_total: float
    worker_total: float
    combined_total: float
    side_gap: float
    benefit_gini: float
    assigned_worker_fraction: float
    worker_load: Summary
    categories: list[CategoryUtilization] = field(default_factory=list)
    top_workers: list[tuple[int, float]] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"assignment report — solver {self.solver!r}",
            f"  edges {self.n_edges} | demand coverage "
            f"{100 * self.coverage:.1f}%",
            f"  requester {self.requester_total:.3f} | worker "
            f"{self.worker_total:.3f} | combined {self.combined_total:.3f}",
            f"  side gap {self.side_gap:.3f} | worker-benefit gini "
            f"{self.benefit_gini:.3f} | workers assigned "
            f"{100 * self.assigned_worker_fraction:.1f}%",
            f"  load/worker: mean {self.worker_load.mean:.2f}, max "
            f"{self.worker_load.maximum:.0f}",
            "  category utilization:",
        ]
        for cat in self.categories:
            lines.append(
                f"    {cat.category:<22s} tasks {cat.n_tasks:4d}  "
                f"demand {cat.demand:4d}  filled {cat.filled:4d}  "
                f"({100 * cat.fill_rate:5.1f}%)"
            )
        if self.top_workers:
            lines.append("  top workers by benefit:")
            for worker_id, benefit in self.top_workers:
                lines.append(f"    worker {worker_id:<6d} {benefit:8.3f}")
        return "\n".join(lines)


def analyze(assignment: Assignment, top_n: int = 5) -> AssignmentReport:
    """Build the diagnostic report for an assignment."""
    problem = assignment.problem
    market = problem.market

    by_task = assignment.workers_per_task()
    demand_by_category: Counter[int] = Counter()
    tasks_by_category: Counter[int] = Counter()
    filled_by_category: Counter[int] = Counter()
    for j, task in enumerate(market.tasks):
        tasks_by_category[task.category] += 1
        demand_by_category[task.category] += task.replication
        filled_by_category[task.category] += len(by_task.get(j, []))
    categories = [
        CategoryUtilization(
            category=market.taxonomy.name_of(category),
            n_tasks=tasks_by_category[category],
            demand=demand_by_category[category],
            filled=filled_by_category[category],
        )
        for category in sorted(tasks_by_category)
    ]

    loads = Counter(i for i, _j in assignment.edges)
    load_values = [loads.get(i, 0) for i in range(market.n_workers)]

    per_worker = assignment.per_worker_benefit()
    top_workers = sorted(
        (
            (market.workers[i].worker_id, benefit)
            for i, benefit in per_worker.items()
        ),
        key=lambda pair: -pair[1],
    )[:top_n]

    return AssignmentReport(
        solver=assignment.solver_name,
        n_edges=len(assignment),
        coverage=assignment.coverage(),
        requester_total=assignment.requester_total(),
        worker_total=assignment.worker_total(),
        combined_total=assignment.combined_total(),
        side_gap=side_gap(assignment),
        benefit_gini=benefit_gini(assignment),
        assigned_worker_fraction=assigned_fraction(assignment),
        worker_load=Summary.of(np.array(load_values, dtype=float)),
        categories=categories,
        top_workers=top_workers,
    )
