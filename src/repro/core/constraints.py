"""Side constraints on assignments beyond capacities.

The base MBA problem constrains worker capacity and task replication (a
partition matroid).  Real platforms add more — these are the three the
evaluation's "general settings" ablation exercises:

* :class:`BudgetConstraint` — each requester's total committed payment
  cannot exceed their budget;
* :class:`MinAccuracyConstraint` — a worker may only take a task when
  their (estimated) accuracy on it clears a floor, the classic
  qualification test;
* :class:`CategoryDiversityConstraint` — a worker's assignment within
  one round may span at most ``max_per_category`` tasks of the same
  category, spreading exposure.

A constraint answers one question: *may this edge be added to this
partial assignment?*  That shape (a downward-closed feasibility oracle)
is exactly what greedy-style solvers need; the
:class:`ConstrainedGreedySolver` threads any constraint list through
lazy greedy, preserving feasibility by construction.  (With general
constraints the clean matroid guarantee is lost — the solver is the
principled heuristic the paper's family uses, and F16 measures the
price of each constraint.)
"""

from __future__ import annotations

import abc
from collections import Counter

from repro.core.assignment import Assignment
from repro.core.objective import LinearObjective
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.errors import ValidationError
from repro.types import Edge
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fraction


class Constraint(abc.ABC):
    """Downward-closed feasibility oracle over partial assignments."""

    @abc.abstractmethod
    def allows(
        self, problem: MBAProblem, edges: list[Edge], new_edge: Edge
    ) -> bool:
        """May ``new_edge`` join ``edges``?  Must not mutate anything."""

    def validate(self, problem: MBAProblem, edges: list[Edge]) -> None:
        """Raise :class:`ValidationError` unless the whole set satisfies
        the constraint (default: re-play edges through :meth:`allows`)."""
        accepted: list[Edge] = []
        for edge in edges:
            if not self.allows(problem, accepted, edge):
                raise ValidationError(
                    f"{type(self).__name__} violated by edge {edge}"
                )
            accepted.append(edge)


class BudgetConstraint(Constraint):
    """Requesters cannot commit more payment than their budget.

    Tasks owned by requester ``r`` (``task.requester_id == r``) draw
    from ``budgets[r]``; unowned tasks (requester_id == -1) are
    unconstrained.
    """

    def __init__(self, budgets: dict[int, float]) -> None:
        for requester_id, budget in budgets.items():
            if budget < 0:
                raise ValidationError(
                    f"budget for requester {requester_id} must be >= 0"
                )
        self.budgets = dict(budgets)

    def _spend(self, problem: MBAProblem, edges: list[Edge]) -> Counter:
        spend: Counter = Counter()
        for _worker, task_index in edges:
            task = problem.market.tasks[task_index]
            if task.requester_id != -1:
                spend[task.requester_id] += task.payment
        return spend

    def allows(
        self, problem: MBAProblem, edges: list[Edge], new_edge: Edge
    ) -> bool:
        task = problem.market.tasks[new_edge[1]]
        if task.requester_id == -1:
            return True
        budget = self.budgets.get(task.requester_id)
        if budget is None:
            return True
        spend = self._spend(problem, edges)[task.requester_id]
        return spend + task.payment <= budget + 1e-9


class MinAccuracyConstraint(Constraint):
    """Workers must clear an accuracy floor on a task to be eligible."""

    def __init__(self, floor: float) -> None:
        self.floor = check_fraction("floor", floor)
        self._cache: tuple[int, object] | None = None

    def _accuracy(self, problem: MBAProblem):
        # Memoize the accuracy matrix per problem instance: allows() is
        # called once per candidate edge and the matrix is O(n*m) to
        # rebuild.
        if self._cache is None or self._cache[0] != id(problem):
            self._cache = (id(problem), problem.market.accuracy_matrix())
        return self._cache[1]

    def allows(
        self, problem: MBAProblem, edges: list[Edge], new_edge: Edge
    ) -> bool:
        worker_index, task_index = new_edge
        return self._accuracy(problem)[worker_index, task_index] >= self.floor


class CategoryDiversityConstraint(Constraint):
    """Per round, a worker takes at most N tasks of the same category."""

    def __init__(self, max_per_category: int) -> None:
        if max_per_category < 1:
            raise ValidationError(
                f"max_per_category must be >= 1, got {max_per_category}"
            )
        self.max_per_category = max_per_category

    def allows(
        self, problem: MBAProblem, edges: list[Edge], new_edge: Edge
    ) -> bool:
        worker_index, task_index = new_edge
        category = problem.market.tasks[task_index].category
        held = sum(
            1
            for i, j in edges
            if i == worker_index
            and problem.market.tasks[j].category == category
        )
        return held < self.max_per_category


@register_solver("constrained-greedy")
class ConstrainedGreedySolver(Solver):
    """Greedy that honours an arbitrary list of constraints.

    Candidates are visited in decreasing surrogate-gain order; an edge
    is taken when capacities allow it, every constraint allows it, and
    its marginal gain is positive.  Uses plain (non-lazy) ordering
    because constraint checks are cheap relative to the coverage
    marginals this solver is typically paired with.
    """

    def __init__(self, constraints=None, objective_factory=None) -> None:
        self.constraints: list[Constraint] = list(constraints or [])
        self._objective_factory = (
            objective_factory if objective_factory is not None else LinearObjective
        )

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        objective = self._objective_factory(problem)
        caps_w = problem.worker_capacities().copy()
        caps_t = problem.task_capacities().copy()
        combined = problem.benefits.combined
        candidates = sorted(
            (
                (float(combined[i, j]), i, j)
                for i in range(problem.n_workers)
                if caps_w[i] > 0
                for j in range(problem.n_tasks)
                if caps_t[j] > 0 and combined[i, j] > 0
            ),
            reverse=True,
        )
        chosen: list[Edge] = []
        for _gain, i, j in candidates:
            if caps_w[i] <= 0 or caps_t[j] <= 0:
                continue
            edge = (i, j)
            if not all(
                constraint.allows(problem, chosen, edge)
                for constraint in self.constraints
            ):
                continue
            if objective.marginal(chosen, edge) <= 0:
                continue
            chosen.append(edge)
            caps_w[i] -= 1
            caps_t[j] -= 1
        return self._finish(problem, chosen)
