"""Solver interface and registry."""

from __future__ import annotations

import abc
import importlib
import inspect

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.errors import ConfigurationError, UnknownSolverError
from repro.utils.rng import SeedLike

SOLVER_REGISTRY: dict[str, type["Solver"]] = {}

#: Solvers living in layers *above* the core (which the core must not
#: import statically — see the layering lint rules).  Looking one of
#: these names up imports its module first; the module's import-time
#: ``@register_solver`` decorators then populate the registry.  This
#: is the hook wrapped solvers (e.g. the resilience executor) use to
#: be reachable through ``get_solver`` without inverting the
#: dependency DAG.
LAZY_SOLVER_MODULES: dict[str, str] = {
    "resilient": "repro.resilience",
}


def register_solver(name: str):
    """Class decorator adding a solver to the registry under ``name``."""

    def decorator(cls: type["Solver"]) -> type["Solver"]:
        cls.name = name
        SOLVER_REGISTRY[name] = cls
        return cls

    return decorator


def _load_lazy(name: str) -> None:
    module = LAZY_SOLVER_MODULES.get(name)
    if module is not None and name not in SOLVER_REGISTRY:
        importlib.import_module(module)


def get_solver(name: str, **kwargs) -> "Solver":
    """Instantiate a registered solver by name."""
    _load_lazy(name)
    try:
        cls = SOLVER_REGISTRY[name]
    except KeyError:
        known = set(SOLVER_REGISTRY) | set(LAZY_SOLVER_MODULES)
        raise UnknownSolverError(name, list(known)) from None
    return cls(**kwargs)


def list_solvers() -> list[str]:
    """Sorted names of all registered solvers (lazy ones included)."""
    for name in LAZY_SOLVER_MODULES:
        _load_lazy(name)
    return sorted(SOLVER_REGISTRY)


def solver_signature(name: str) -> inspect.Signature:
    """Constructor signature of the registered solver ``name``."""
    _load_lazy(name)
    try:
        cls = SOLVER_REGISTRY[name]
    except KeyError:
        known = set(SOLVER_REGISTRY) | set(LAZY_SOLVER_MODULES)
        raise UnknownSolverError(name, list(known)) from None
    return inspect.signature(cls.__init__)


def accepted_solver_kwargs(name: str) -> frozenset[str] | None:
    """Keyword names the solver's constructor accepts.

    ``None`` means the constructor takes ``**kwargs`` and any key is
    formally acceptable (nothing can be checked statically).
    """
    parameters = [
        parameter
        for parameter_name, parameter in solver_signature(
            name
        ).parameters.items()
        if parameter_name != "self"
    ]
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters
    ):
        return None
    return frozenset(
        parameter.name
        for parameter in parameters
        if parameter.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    )


def validate_solver_kwargs(name: str, kwargs: dict) -> None:
    """Reject ``solver_kwargs`` keys the solver's constructor rejects.

    A typo'd key would otherwise surface as a ``TypeError`` at the
    first ``get_solver`` call — round 1 of a long run.  Checking the
    signature up front turns it into a :class:`ConfigurationError` at
    scenario (or spec) construction time.
    """
    if not kwargs:
        # Still resolve the name so a typo'd solver fails here too.
        _load_lazy(name)
        if name not in SOLVER_REGISTRY:
            known = set(SOLVER_REGISTRY) | set(LAZY_SOLVER_MODULES)
            raise UnknownSolverError(name, list(known))
        return
    accepted = accepted_solver_kwargs(name)
    if accepted is None:
        return
    unknown = sorted(set(kwargs) - accepted)
    if unknown:
        raise ConfigurationError(
            f"solver {name!r} does not accept solver_kwargs key(s) "
            f"{', '.join(repr(key) for key in unknown)}; accepted: "
            f"{', '.join(sorted(accepted)) or '(none)'}"
        )


class Solver(abc.ABC):
    """Produces an :class:`Assignment` for an :class:`MBAProblem`.

    Solvers must be stateless across calls (construct-once, solve-many)
    and deterministic given the same ``seed``.  Two sanctioned
    exceptions carry *explicit* state: history observed through
    :meth:`observe_round`, and warm-start state declared via
    ``carries_warm_state`` — in both cases determinism holds given the
    same history/state, and the state must live on the solver object so
    it rides simulation checkpoints (the engine pickles the solver).
    """

    name: str = "unnamed"

    #: True for solvers that thread cross-round warm-start state
    #: (auction prices, Hungarian potentials, replayable edge sets).
    #: Such solvers MUST accept a ``warm_state`` keyword in
    #: ``__init__`` so the state is injectable/inspectable through the
    #: registered constructor signature — enforced by lint rule R204.
    carries_warm_state: bool = False

    @abc.abstractmethod
    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        """Solve one problem instance."""

    def observe_round(
        self, problem: MBAProblem, assignment: Assignment
    ) -> None:
        """Hook: the simulator reports each round's final assignment.

        Default is a no-op.  History-aware solvers (e.g. the
        incremental flow solver) override this to carry state — such
        as the previous round's edges — into the next ``solve`` call.
        The contract that solvers are deterministic *given the same
        observation history* still holds.
        """

    def _finish(
        self, problem: MBAProblem, edges: list[tuple[int, int]]
    ) -> Assignment:
        """Wrap raw edges into a validated Assignment tagged with our name."""
        return Assignment(problem, edges, solver_name=self.name)
