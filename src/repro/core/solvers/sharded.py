"""Sharded solving: partition the market, solve shards, stitch, refine.

At platform scale the dense worker×task matrix is too large to solve
monolithically every round.  The standard decomposition — and the one
the crowdsourcing-scale literature converges on — exploits the market's
*category* structure: a worker's benefit concentrates on the task
categories they are skilled in, so partitioning workers and tasks by
category yields shards whose internal edges carry almost all of the
achievable value.  Each shard is a self-contained (smaller) MBA problem
solved by any registered base solver, optionally in parallel on the
resilience layer's ``SupervisedPool``; a cross-shard refinement pass
then recovers value stranded on boundary edges (worker in shard A,
task in shard B) via greedy fill + 1-swap local search over the pruned
candidate set.

**Objective-gap guarantee.**  For edge-decomposable objectives the
solver reports a *provable* optimality gap alongside every solve: the
capacity-relaxed dual bound

``UB = min( Σ_i top-c_i positive values of row i,
            Σ_j top-r_j positive values of column j )``

dominates the true optimum (any feasible assignment takes at most
``c_i`` edges per worker and ``r_j`` per task, and an optimum never
keeps a negative edge), so ``gap = (UB - achieved) / UB`` upper-bounds
the real suboptimality.  The gap lands in ``last_report`` and in the
``shard.solve`` span, and the perf harness gates the shard suite on it.

Single-shard plans (``strategy="none"`` or one populated shard) are an
exact passthrough: the base solver's edges verbatim.
"""

from __future__ import annotations

import importlib
import multiprocessing
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.benefit.matrices import BenefitMatrices
from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, get_solver, register_solver
from repro.core.solvers.pruned import top_k_edge_mask
from repro.errors import ValidationError
from repro.utils.rng import SeedLike

#: Base solvers the sharded wrapper may delegate to.  All are
#: deterministic and seed-ignoring, so shard solves are reproducible
#: regardless of process placement; wrappers that themselves manage
#: state or processes (resilient, warm, sharded) are excluded.
SUPPORTED_BASES: tuple[str, ...] = (
    "auction",
    "flow",
    "greedy",
    "local-search",
    "pruned-greedy",
)

_STRATEGIES = ("category", "balanced", "none")


@dataclass(frozen=True)
class ShardPlan:
    """How to partition the market.

    ``strategy="category"`` — one shard per task category, workers
    joining the category they are most skilled in.
    ``strategy="balanced"`` — categories packed into ``n_shards``
    task-count-balanced groups (largest first into the lightest shard).
    ``strategy="none"`` — a single shard: exact passthrough.
    """

    strategy: str = "category"
    n_shards: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ValidationError(
                f"unknown shard strategy {self.strategy!r}; "
                f"expected one of {_STRATEGIES}"
            )
        if self.n_shards < 0:
            raise ValidationError(
                f"n_shards must be >= 0, got {self.n_shards}"
            )


@dataclass
class Shard:
    """One partition cell: global worker/task index arrays."""

    worker_indices: np.ndarray
    task_indices: np.ndarray

    @property
    def size(self) -> tuple[int, int]:
        return int(self.worker_indices.size), int(self.task_indices.size)


@dataclass
class ShardReport:
    """Provenance + quality report of one sharded solve."""

    n_shards: int
    shard_sizes: list[tuple[int, int]]
    achieved: float
    upper_bound: float
    gap: float
    refine_gain: float
    parallel: bool
    boundary_candidates: int = 0
    exact_passthrough: bool = False
    extras: dict = field(default_factory=dict)


def plan_shards(problem: MBAProblem, plan: ShardPlan) -> list[Shard]:
    """Partition the problem's workers and tasks per ``plan``.

    Returns non-empty shards only; every worker and task lands in
    exactly one shard (workers with no skill signal join the first
    category — deterministic lowest-index tie-break throughout).
    """
    market = problem.market
    n_workers, n_tasks = problem.n_workers, problem.n_tasks
    if plan.strategy == "none":
        return [
            Shard(
                np.arange(n_workers, dtype=np.int64),
                np.arange(n_tasks, dtype=np.int64),
            )
        ]
    categories = np.fromiter(
        (t.category for t in market.tasks), dtype=np.int64, count=n_tasks
    )
    present = np.unique(categories)
    if plan.strategy == "category":
        groups = [[int(c)] for c in present]
    else:  # balanced k-way over categories
        k = plan.n_shards if plan.n_shards > 0 else max(
            1, int(round(np.sqrt(present.size)))
        )
        k = min(k, present.size)
        counts = np.array(
            [(categories == c).sum() for c in present], dtype=np.int64
        )
        # Largest category first into the currently lightest shard —
        # the classic LPT packing; ties resolve to the lowest shard
        # index for determinism.
        order = np.argsort(-counts, kind="stable")
        groups = [[] for _ in range(k)]
        loads = np.zeros(k, dtype=np.int64)
        for position in order:
            target = int(np.argmin(loads))
            groups[target].append(int(present[position]))
            loads[target] += counts[position]
        groups = [g for g in groups if g]
    if len(groups) <= 1:
        return [
            Shard(
                np.arange(n_workers, dtype=np.int64),
                np.arange(n_tasks, dtype=np.int64),
            )
        ]

    group_of_category = {
        category: g for g, members in enumerate(groups) for category in members
    }
    task_group = np.array(
        [group_of_category[int(c)] for c in categories], dtype=np.int64
    )
    # Worker -> group with the worker's best summed skill; argmax takes
    # the first maximum, i.e. the lowest group index on ties.
    max_category = int(categories.max()) + 1
    skills = np.zeros((n_workers, max_category))
    for i, worker in enumerate(market.workers):
        row = np.asarray(worker.skills, dtype=float)
        width = min(row.size, max_category)
        skills[i, :width] = row[:width]
    affinity = np.column_stack(
        [skills[:, members].sum(axis=1) for members in groups]
    )
    worker_group = np.argmax(affinity, axis=1)

    shards = []
    for g in range(len(groups)):
        workers = np.flatnonzero(worker_group == g).astype(np.int64)
        tasks = np.flatnonzero(task_group == g).astype(np.int64)
        if workers.size and tasks.size:
            shards.append(Shard(workers, tasks))
    if not shards:
        return [
            Shard(
                np.arange(n_workers, dtype=np.int64),
                np.arange(n_tasks, dtype=np.int64),
            )
        ]
    return shards


class _ShardProblem:
    """A shard as a duck-typed problem the base solvers can consume.

    Carries exactly the surface the core solvers and
    :class:`~repro.core.assignment.Assignment` validation read:
    ``benefits``, ``combiner``, capacities, sizes, and the active
    check (pre-folded into the capacities).  Deliberately *not* an
    :class:`MBAProblem` — there is no sub-market to rebuild, just
    sliced matrices — and fully picklable for pool workers.
    """

    def __init__(
        self,
        benefits: BenefitMatrices,
        caps_w: np.ndarray,
        caps_t: np.ndarray,
    ) -> None:
        self.benefits = benefits
        self.combiner = benefits.combiner
        self._caps_w = caps_w
        self._caps_t = caps_t
        self.n_workers = int(caps_w.size)
        self.n_tasks = int(caps_t.size)

    def worker_capacities(self) -> np.ndarray:
        return self._caps_w

    def task_capacities(self) -> np.ndarray:
        return self._caps_t

    def is_worker_active(self, worker_index: int) -> bool:
        # Inactive workers were zeroed out of the sliced capacities.
        return bool(self._caps_w[worker_index] > 0)


def _make_shard_problem(
    problem, shard: Shard
) -> _ShardProblem:
    rows = shard.worker_indices[:, np.newaxis]
    cols = shard.task_indices[np.newaxis, :]
    benefits = problem.benefits
    sliced = BenefitMatrices(
        requester=benefits.requester[rows, cols],
        worker=benefits.worker[rows, cols],
        combined=benefits.combined[rows, cols],
        combiner=benefits.combiner,
    )
    return _ShardProblem(
        sliced,
        problem.worker_capacities()[shard.worker_indices],
        problem.task_capacities()[shard.task_indices],
    )


def _solve_shard_payload(payload: dict) -> list[tuple[int, int]]:
    """Pool task: solve one shard, return *local* edges.

    Module-level and dict-driven so it pickles into
    ``SupervisedPool.run``; also the serial path's unit of work so both
    paths share one code route.
    """
    shard_problem = _ShardProblem(
        BenefitMatrices(
            requester=payload["requester"],
            worker=payload["worker"],
            combined=payload["combined"],
            combiner=payload["combiner"],
        ),
        payload["caps_w"],
        payload["caps_t"],
    )
    solver = get_solver(payload["base"], **payload["base_kwargs"])
    assignment = solver.solve(shard_problem, seed=None)
    return list(assignment.edges)


@register_solver("sharded")
class ShardedSolver(Solver):
    """Partition → per-shard base solve → cross-shard refinement.

    Parameters
    ----------
    base:
        Registered base solver run inside each shard (one of
        :data:`SUPPORTED_BASES`).
    base_kwargs:
        Constructor kwargs for the base solver.
    strategy / n_shards:
        The :class:`ShardPlan` knobs.
    refine / refine_rounds / boundary_k:
        Cross-shard stitching: candidate boundary edges come from the
        problem's memoized top-``boundary_k`` pruning mask; each round
        does a greedy fill of spare capacity then best-effort 1-swaps,
        for at most ``refine_rounds`` rounds (early exit when a round
        gains nothing).
    parallel_workers:
        ``> 1`` solves shards on a ``SupervisedPool`` of that many
        processes; ``0``/``1`` solves serially in-process.  Nested
        pools are refused automatically (shards solve serially inside
        pool workers, e.g. under ``repro sweep``).
    """

    def __init__(
        self,
        base: str = "pruned-greedy",
        base_kwargs: dict | None = None,
        strategy: str = "category",
        n_shards: int = 0,
        refine: bool = True,
        refine_rounds: int = 2,
        boundary_k: int = 10,
        parallel_workers: int = 0,
    ) -> None:
        if base not in SUPPORTED_BASES:
            raise ValidationError(
                f"sharded base must be one of {SUPPORTED_BASES}, "
                f"got {base!r}"
            )
        if refine_rounds < 0:
            raise ValidationError(
                f"refine_rounds must be >= 0, got {refine_rounds}"
            )
        if boundary_k < 1:
            raise ValidationError(
                f"boundary_k must be >= 1, got {boundary_k}"
            )
        if parallel_workers < 0:
            raise ValidationError(
                f"parallel_workers must be >= 0, got {parallel_workers}"
            )
        self.base = base
        self.base_kwargs = dict(base_kwargs or {})
        self.plan = ShardPlan(strategy=strategy, n_shards=n_shards)
        self.refine = refine
        self.refine_rounds = refine_rounds
        self.boundary_k = boundary_k
        self.parallel_workers = parallel_workers
        self.last_report: ShardReport | None = None

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        with obs.span("shard.plan", strategy=self.plan.strategy):
            shards = plan_shards(problem, self.plan)
        obs.count("shard.shards", len(shards))

        if len(shards) == 1:
            # Exact passthrough: the base solver sees the whole problem.
            base_solver = get_solver(self.base, **self.base_kwargs)
            with obs.span("shard.solve", shards=1, base=self.base):
                assignment = base_solver.solve(problem, seed)
            achieved = self._achieved(problem, list(assignment.edges))
            upper = self._upper_bound(problem)
            self.last_report = ShardReport(
                n_shards=1,
                shard_sizes=[shards[0].size],
                achieved=achieved,
                upper_bound=upper,
                gap=self._gap(achieved, upper),
                refine_gain=0.0,
                parallel=False,
                exact_passthrough=True,
            )
            return self._finish(problem, list(assignment.edges))

        payloads = []
        for shard in shards:
            shard_problem = _make_shard_problem(problem, shard)
            payloads.append(
                {
                    "requester": shard_problem.benefits.requester,
                    "worker": shard_problem.benefits.worker,
                    "combined": shard_problem.benefits.combined,
                    "combiner": shard_problem.combiner,
                    "caps_w": shard_problem.worker_capacities(),
                    "caps_t": shard_problem.task_capacities(),
                    "base": self.base,
                    "base_kwargs": self.base_kwargs,
                }
            )

        used_parallel = False
        local_edges: dict[int, list[tuple[int, int]]] = {}
        want_parallel = (
            self.parallel_workers > 1
            and len(shards) > 1
            # Never nest process pools: inside a sweep worker the
            # parent already parallelizes over points.
            and multiprocessing.parent_process() is None
        )
        with obs.span(
            "shard.solve",
            shards=len(shards),
            base=self.base,
            parallel=want_parallel,
        ):
            if want_parallel:
                runtime = importlib.import_module(
                    "repro.resilience.runtime"
                )
                pool = runtime.SupervisedPool(
                    n_workers=min(self.parallel_workers, len(shards))
                )
                results, _stats = pool.run(_solve_shard_payload, payloads)
                local_edges.update(results)
                used_parallel = True
            # Serial path, and the fallback for any shard the pool
            # quarantined: solve in-process.
            for position, payload in enumerate(payloads):
                if position not in local_edges:
                    local_edges[position] = _solve_shard_payload(payload)

        edges: list[tuple[int, int]] = []
        for position, shard in enumerate(shards):
            workers = shard.worker_indices
            tasks = shard.task_indices
            edges.extend(
                (int(workers[i]), int(tasks[j]))
                for i, j in local_edges[position]
            )
        shard_total = self._achieved(problem, edges)

        boundary_candidates = 0
        refine_extras: dict = {}
        if self.refine and self.refine_rounds > 0:
            with obs.span("shard.refine", rounds=self.refine_rounds):
                edges, boundary_candidates, refine_extras = self._refine(
                    problem, edges
                )
            obs.count("shard.boundary_edges", boundary_candidates)
        achieved = self._achieved(problem, edges)
        upper = self._upper_bound(problem)
        self.last_report = ShardReport(
            n_shards=len(shards),
            shard_sizes=[shard.size for shard in shards],
            achieved=achieved,
            upper_bound=upper,
            gap=self._gap(achieved, upper),
            refine_gain=achieved - shard_total,
            parallel=used_parallel,
            boundary_candidates=boundary_candidates,
            extras=refine_extras,
        )
        return self._finish(problem, edges)

    # -- refinement ------------------------------------------------------

    def _refine(
        self, problem, edges: list[tuple[int, int]]
    ) -> tuple[list[tuple[int, int]], int, dict]:
        """Greedy fill + 1-swap stitching over pruned candidates.

        Candidates come from the problem's memoized top-``boundary_k``
        mask (row ∪ column union), which includes exactly the
        cross-shard edges good enough to matter.  Every accepted move
        strictly increases the combined total, so refinement is
        monotone and the objective-gap report can only shrink.
        """
        combined = problem.benefits.combined
        mask = self._candidate_mask(problem)
        caps_w = problem.worker_capacities()
        caps_t = problem.task_capacities()

        chosen = set(edges)
        load_w = np.zeros(problem.n_workers, dtype=np.int64)
        load_t = np.zeros(problem.n_tasks, dtype=np.int64)
        by_worker: dict[int, set[int]] = {}
        by_task: dict[int, set[int]] = {}
        for i, j in chosen:
            load_w[i] += 1
            load_t[j] += 1
            by_worker.setdefault(i, set()).add(j)
            by_task.setdefault(j, set()).add(i)

        rows, cols = np.nonzero(mask & (combined > 0))
        boundary_candidates = int(rows.size)
        order = np.argsort(-combined[rows, cols], kind="stable")
        # The fill/swap pass can only place about total-capacity many
        # edges, so candidates deep in the sorted tail cannot win;
        # capping them bounds the Python loop at large n.  Generous
        # headroom keeps swap opportunities alive.
        limit = max(4096, 4 * int(min(caps_w.sum(), caps_t.sum())))
        extras: dict = {}
        if order.size > limit:
            order = order[:limit]
            extras["refine_candidate_limit"] = limit
        candidates = [
            (int(rows[position]), int(cols[position]))
            for position in order
        ]

        def weakest_task_for(i: int) -> int:
            held = by_worker.get(i)
            best_j = -1
            best_w = np.inf
            for j2 in held or ():
                w2 = float(combined[i, j2])
                if w2 < best_w:
                    best_w = w2
                    best_j = j2
            return best_j

        def weakest_worker_for(j: int) -> int:
            held = by_task.get(j)
            best_i = -1
            best_w = np.inf
            for i2 in held or ():
                w2 = float(combined[i2, j])
                if w2 < best_w:
                    best_w = w2
                    best_i = i2
            return best_i

        def drop(i: int, j: int) -> None:
            chosen.discard((i, j))
            load_w[i] -= 1
            load_t[j] -= 1
            by_worker[i].discard(j)
            by_task[j].discard(i)

        def add(i: int, j: int) -> None:
            chosen.add((i, j))
            load_w[i] += 1
            load_t[j] += 1
            by_worker.setdefault(i, set()).add(j)
            by_task.setdefault(j, set()).add(i)

        for _round in range(self.refine_rounds):
            improved = False
            for i, j in candidates:
                if (i, j) in chosen:
                    continue
                weight = float(combined[i, j])
                free_w = caps_w[i] - load_w[i] > 0
                free_t = caps_t[j] - load_t[j] > 0
                if free_w and free_t:
                    add(i, j)
                    improved = True
                    continue
                # 1-swap: evict the weakest edge of a saturated
                # endpoint when this candidate strictly beats it and
                # the other endpoint can absorb the move.
                if not free_w and free_t and caps_w[i] > 0:
                    j_weak = weakest_task_for(i)
                    if j_weak >= 0 and weight > float(combined[i, j_weak]):
                        drop(i, j_weak)
                        add(i, j)
                        improved = True
                        continue
                if free_w and not free_t and caps_t[j] > 0:
                    i_weak = weakest_worker_for(j)
                    if i_weak >= 0 and weight > float(combined[i_weak, j]):
                        drop(i_weak, j)
                        add(i, j)
                        improved = True
            if not improved:
                break
        return sorted(chosen), boundary_candidates, extras

    # -- objective-gap accounting ---------------------------------------

    @staticmethod
    def _achieved(problem, edges: list[tuple[int, int]]) -> float:
        if not edges:
            return 0.0
        pairs = np.asarray(edges, dtype=np.int64)
        return float(
            problem.benefits.combined[pairs[:, 0], pairs[:, 1]].sum()
        )

    def _candidate_mask(self, problem) -> np.ndarray:
        """The top-``boundary_k`` candidate mask, memoized on the
        problem when it offers the cache."""
        top_k = getattr(problem, "top_k_candidates", None)
        if top_k is not None:
            return top_k(self.boundary_k)
        return top_k_edge_mask(problem.benefits.combined, self.boundary_k)

    def _upper_bound(self, problem) -> float:
        """Capacity-relaxed dual bound on the combined-benefit optimum.

        See the module docstring for the argument that this dominates
        the true optimum of any edge-decomposable objective.

        When every capacity fits within ``boundary_k``, each row's
        (and column's) top-``cap`` entries are contained in the
        memoized candidate mask, so the bound is computed from the
        sparse candidate set — the same value as the dense
        full-matrix reduction up to float summation order, at a
        fraction of the cost.
        """
        combined = problem.benefits.combined
        caps_w = problem.worker_capacities().astype(np.int64)
        caps_t = problem.task_capacities().astype(np.int64)
        k = min(self.boundary_k, *combined.shape) if combined.size else 0
        if (
            combined.size
            and caps_w.max(initial=0) <= k
            and caps_t.max(initial=0) <= k
        ):
            mask = self._candidate_mask(problem)
            rows, cols = np.nonzero(mask)
            vals = combined[rows, cols]
            return min(
                _capacity_bound_sparse(
                    rows, vals, caps_w, problem.n_workers
                ),
                _capacity_bound_sparse(
                    cols, vals, caps_t, problem.n_tasks
                ),
            )
        return min(
            _capacity_bound(combined, caps_w),
            _capacity_bound(combined.T, caps_t),
        )

    @staticmethod
    def _gap(achieved: float, upper: float) -> float:
        if upper <= 0.0:
            return 0.0
        return max(0.0, upper - achieved) / upper


def _capacity_bound(values: np.ndarray, caps: np.ndarray) -> float:
    """Σ_rows (sum of the top ``caps[row]`` positive entries)."""
    n, m = values.shape
    if n == 0 or m == 0 or caps.size == 0:
        return 0.0
    k = int(min(int(caps.max(initial=0)), m))
    if k <= 0:
        return 0.0
    positive = np.maximum(values, 0.0)
    if k < m:
        top = -np.partition(-positive, k - 1, axis=1)[:, :k]
    else:
        top = positive
    top = -np.sort(-top, axis=1)  # descending per row
    prefix = np.cumsum(top, axis=1)
    take = np.minimum(caps, k)
    row_bounds = np.where(
        take > 0, prefix[np.arange(n), np.maximum(take - 1, 0)], 0.0
    )
    return float(row_bounds.sum())


def _capacity_bound_sparse(
    rows: np.ndarray, vals: np.ndarray, caps: np.ndarray, n: int
) -> float:
    """:func:`_capacity_bound` from candidate triplets.

    ``(rows, vals)`` must contain every row's top-``caps[row]``
    positive entries — guaranteed by the top-k candidate mask whenever
    ``caps.max() <= k``, because positive entries always outrank
    non-positive ones in a row's top-k.
    """
    positive = vals > 0.0
    rows = rows[positive]
    vals = vals[positive]
    if rows.size == 0:
        return 0.0
    order = np.lexsort((-vals, rows))
    rows_sorted = rows[order]
    vals_sorted = vals[order]
    row_start = np.searchsorted(rows_sorted, np.arange(n))
    rank = np.arange(rows_sorted.size) - row_start[rows_sorted]
    return float(vals_sorted[rank < caps[rows_sorted]].sum())
