"""The flow-optimal solver for additive (linear-combiner) objectives.

Reduces the capacitated assignment to maximum-weight b-matching (see
:mod:`repro.matching.b_matching`) on the combined per-edge matrix.
Exact when the combiner decomposes over edges; for non-decomposing
combiners it optimizes the per-edge surrogate and is a strong
heuristic, which the solver flags via :attr:`exact_for_problem`.
"""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.matching.b_matching import max_weight_b_matching
from repro.utils.rng import SeedLike


@register_solver("flow")
class FlowSolver(Solver):
    """Min-cost-flow based optimal assignment for additive objectives."""

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        edges, _total = max_weight_b_matching(
            problem.benefits.combined,
            problem.worker_capacities(),
            problem.task_capacities(),
        )
        return self._finish(problem, edges)

    @staticmethod
    def exact_for_problem(problem: MBAProblem) -> bool:
        """True when this solver's output is provably optimal."""
        return problem.combiner.decomposes_over_edges
