"""Lazy greedy for arbitrary (notably submodular) objectives.

Classic accelerated greedy: keep every candidate edge in a max-heap
keyed by its *last known* marginal gain; pop, recompute against the
current solution, and either take the edge (if its fresh gain still
beats the heap top) or push it back with the fresh key.  For submodular
objectives gains only shrink as the solution grows, so a stale key is
an upper bound and laziness is exact.  Over a partition matroid (worker
capacities × task replications) greedy guarantees 1/2 of the optimum;
experiment F12 measures the real gap (typically > 0.9).

For the linear combiner an edge's marginal gain never changes, so lazy
greedy degenerates into "sort edges by weight and take greedily" —
correct, and fast.
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.assignment import Assignment
from repro.core.objective import LinearObjective, Objective
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.utils.rng import SeedLike


@register_solver("greedy")
class GreedySolver(Solver):
    """Lazy greedy over the problem's objective.

    Parameters
    ----------
    objective_factory:
        Callable ``problem -> Objective``; defaults to
        :class:`LinearObjective` (the combiner's own objective).  Pass
        ``lambda p: CoverageObjective(p, lam)`` for the submodular
        quality model.
    min_gain:
        Stop when the best available marginal gain falls to or below
        this threshold (0 keeps only strictly beneficial edges).
    """

    def __init__(self, objective_factory=None, min_gain: float = 0.0) -> None:
        self._objective_factory = (
            objective_factory if objective_factory is not None else LinearObjective
        )
        self.min_gain = min_gain

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        objective: Objective = self._objective_factory(problem)
        caps_w = problem.worker_capacities().copy()
        caps_t = problem.task_capacities().copy()
        combined = problem.benefits.combined
        additive = (
            isinstance(objective, LinearObjective)
            and problem.combiner.decomposes_over_edges
        )

        # Seed the heap with singleton surrogate gains; for submodular
        # objectives these upper-bound all later marginals.
        counter = itertools.count()
        heap: list[tuple[float, int, int, int]] = []
        for i in range(problem.n_workers):
            if caps_w[i] <= 0:
                continue
            for j in range(problem.n_tasks):
                if caps_t[j] <= 0:
                    continue
                gain = float(combined[i, j])
                if gain > self.min_gain:
                    heapq.heappush(heap, (-gain, next(counter), i, j))

        chosen: list[tuple[int, int]] = []
        chosen_set: set[tuple[int, int]] = set()
        while heap:
            neg_gain, _tie, i, j = heapq.heappop(heap)
            if caps_w[i] <= 0 or caps_t[j] <= 0 or (i, j) in chosen_set:
                continue
            if additive:
                gain = -neg_gain
            else:
                gain = objective.marginal(chosen, (i, j))
                if gain <= self.min_gain:
                    continue
                if heap and -heap[0][0] > gain + 1e-12:
                    # Something else may now be better; re-queue with
                    # the fresh key and look again.
                    heapq.heappush(heap, (-gain, next(counter), i, j))
                    continue
            chosen.append((i, j))
            chosen_set.add((i, j))
            caps_w[i] -= 1
            caps_t[j] -= 1
        return self._finish(problem, chosen)
