"""Online MBA solvers: workers arrive one at a time.

The online setting models a live platform: each worker shows up, must
be given tasks (up to their capacity) immediately, and the decision is
irrevocable.  Task replication quotas deplete as the stream proceeds.

* :class:`OnlineGreedySolver` — each arrival takes its highest
  combined-benefit tasks among those with remaining quota.
* :class:`OnlineTwoPhaseSolver` — sample-and-price (see
  :func:`repro.matching.online.two_phase_matching`): the first
  fraction of arrivals is matched greedily; the optimal matching of
  that prefix sets per-task price thresholds that later arrivals must
  beat.  Under random arrival order this filters low-value grabs and
  closes much of the gap to the offline optimum (experiment F9).
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.market.arrivals import ArrivalProcess, PoissonArrivals
from repro.matching.hungarian import max_weight_assignment
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_fraction


def _active_arrival_order(
    problem: MBAProblem, arrivals: ArrivalProcess, seed: SeedLike
) -> list[int]:
    """Arrival order over all workers, filtered to active ones."""
    order = arrivals.order(problem.n_workers, seed)
    return [i for i in order if problem.is_worker_active(i)]


def _take_best_tasks(
    problem: MBAProblem,
    worker_index: int,
    quota: np.ndarray,
    thresholds: np.ndarray,
) -> list[tuple[int, int]]:
    """Give one arriving worker their best tasks above the thresholds."""
    capacity = int(problem.market.workers[worker_index].capacity)
    if capacity <= 0:
        return []
    scores = problem.benefits.combined[worker_index]
    candidates = [
        (float(scores[j]), j)
        for j in range(problem.n_tasks)
        if quota[j] > 0 and scores[j] > thresholds[j] and scores[j] > 0
    ]
    candidates.sort(reverse=True)
    taken: list[tuple[int, int]] = []
    for _score, j in candidates[:capacity]:
        quota[j] -= 1
        taken.append((worker_index, j))
    return taken


@register_solver("online-greedy")
class OnlineGreedySolver(Solver):
    """Greedy immediate assignment per arriving worker."""

    def __init__(self, arrivals: ArrivalProcess | None = None) -> None:
        self.arrivals = arrivals if arrivals is not None else PoissonArrivals()

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        quota = problem.task_capacities().astype(int).copy()
        no_threshold = np.zeros(problem.n_tasks)
        edges: list[tuple[int, int]] = []
        for worker_index in _active_arrival_order(problem, self.arrivals, seed):
            edges.extend(
                _take_best_tasks(problem, worker_index, quota, no_threshold)
            )
        return self._finish(problem, edges)


@register_solver("online-two-phase")
class OnlineTwoPhaseSolver(Solver):
    """Sample-and-price online assignment.

    Phase 1 (first ``sample_fraction`` of active arrivals) is assigned
    greedily — those workers still produce value.  The optimal
    assignment of the observed workers to the *full original* quota is
    then computed; the benefit each task earns there becomes its price,
    and phase-2 arrivals only take a task when they beat its price.
    """

    def __init__(
        self,
        arrivals: ArrivalProcess | None = None,
        sample_fraction: float = 0.5,
    ) -> None:
        self.arrivals = arrivals if arrivals is not None else PoissonArrivals()
        self.sample_fraction = check_fraction(
            "sample_fraction", sample_fraction
        )

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        rng = as_rng(seed)
        order = _active_arrival_order(problem, self.arrivals, rng)
        cutoff = int(round(self.sample_fraction * len(order)))
        sample, rest = order[:cutoff], order[cutoff:]

        quota = problem.task_capacities().astype(int).copy()
        no_threshold = np.zeros(problem.n_tasks)
        edges: list[tuple[int, int]] = []
        for worker_index in sample:
            edges.extend(
                _take_best_tasks(problem, worker_index, quota, no_threshold)
            )

        thresholds = self._price_tasks(problem, sample)
        for worker_index in rest:
            edges.extend(
                _take_best_tasks(problem, worker_index, quota, thresholds)
            )
        return self._finish(problem, edges)

    def _price_tasks(
        self, problem: MBAProblem, sample: list[int]
    ) -> np.ndarray:
        """Per-task price = its earnings in the sample's optimal matching."""
        prices = np.zeros(problem.n_tasks)
        if not sample:
            return prices
        # Expand workers by capacity (rows) and tasks by replication
        # (columns); solve max-weight assignment on the sample.
        rows: list[int] = []
        for i in sample:
            rows.extend([i] * int(problem.market.workers[i].capacity))
        cols: list[int] = []
        replications = problem.task_capacities()
        for j in range(problem.n_tasks):
            cols.extend([j] * int(replications[j]))
        if not rows or not cols:
            return prices
        weights = problem.benefits.combined[np.ix_(rows, cols)]
        if len(rows) > len(cols):
            # hungarian needs n_rows <= n_cols; keep the strongest rows.
            strength = weights.max(axis=1)
            keep = np.argsort(strength)[-len(cols):]
            rows = [rows[r] for r in keep]
            weights = weights[keep]
        assignment, _total = max_weight_assignment(np.asarray(weights))
        for row_pos, col_pos in enumerate(assignment):
            if col_pos >= 0:
                j = cols[col_pos]
                prices[j] = max(prices[j], float(weights[row_pos, col_pos]))
        return prices
