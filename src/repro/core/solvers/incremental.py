"""Incremental re-assignment with stability bonuses.

Markets are re-solved every round, but churning a worker between
unrelated tasks has real costs (context switches, annoyed workers,
retraining).  The standard remedy: bias the objective toward *keeping*
edges from the previous assignment by adding a ``stability_bonus`` to
each retained edge's weight, then solve the biased problem exactly with
the flow reduction.

This is optimal for the biased objective — equivalently, it maximizes
``benefit(M) + bonus * |M ∩ M_prev|``, the Lagrangian form of
"maximize benefit subject to limited churn".  Sweeping the bonus traces
the stability/benefit frontier (ablation F18).

Edges are identified by ``(worker_id, task_id)`` (entity ids, not
indices), so the previous assignment can come from a market snapshot
with different membership — exactly the cross-round situation.
"""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.matching.b_matching import max_weight_b_matching
from repro.utils.rng import SeedLike
from repro.utils.validation import check_nonnegative


def edge_ids(problem: MBAProblem, assignment: Assignment) -> set[tuple[int, int]]:
    """(worker_id, task_id) pairs of an assignment, for cross-round reuse."""
    market = assignment.problem.market
    return {
        (market.workers[i].worker_id, market.tasks[j].task_id)
        for i, j in assignment.edges
    }


def retention_overlap(
    previous_ids: set[tuple[int, int]],
    problem: MBAProblem,
    assignment: Assignment,
) -> float:
    """Fraction of the previous edges retained in the new assignment."""
    if not previous_ids:
        return 1.0
    market = problem.market
    current = {
        (market.workers[i].worker_id, market.tasks[j].task_id)
        for i, j in assignment.edges
    }
    return len(previous_ids & current) / len(previous_ids)


@register_solver("incremental-flow")
class IncrementalFlowSolver(Solver):
    """Flow-optimal solve of the stability-biased objective.

    Parameters
    ----------
    previous_edge_ids:
        ``(worker_id, task_id)`` pairs from the last round's assignment
        (see :func:`edge_ids`).  Empty set degrades to the plain flow
        solver.
    stability_bonus:
        Weight added to each retained edge.  0 = ignore history; large
        values effectively freeze the previous assignment wherever it
        remains feasible and positive.
    """

    def __init__(
        self,
        previous_edge_ids: set[tuple[int, int]] | None = None,
        stability_bonus: float = 0.5,
    ) -> None:
        self.previous_edge_ids = set(previous_edge_ids or set())
        self.stability_bonus = check_nonnegative(
            "stability_bonus", stability_bonus
        )

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        market = problem.market
        biased = problem.benefits.combined.copy()
        if self.previous_edge_ids and self.stability_bonus > 0:
            worker_index = {
                w.worker_id: i for i, w in enumerate(market.workers)
            }
            task_index = {t.task_id: j for j, t in enumerate(market.tasks)}
            for worker_id, task_id in self.previous_edge_ids:
                i = worker_index.get(worker_id)
                j = task_index.get(task_id)
                if i is not None and j is not None:
                    biased[i, j] += self.stability_bonus
        edges, _total = max_weight_b_matching(
            biased, problem.worker_capacities(), problem.task_capacities()
        )
        return self._finish(problem, edges)

    def observe_round(self, problem: MBAProblem, assignment) -> None:
        """Remember this round's edges as the next round's history.

        Lets the simulator drive the solver round over round without
        manual rewiring: ``Scenario(solver_name="incremental-flow",
        solver_kwargs={"stability_bonus": ...})`` just works.
        """
        self.previous_edge_ids = edge_ids(problem, assignment)
