"""Incremental re-assignment with stability bonuses.

Markets are re-solved every round, but churning a worker between
unrelated tasks has real costs (context switches, annoyed workers,
retraining).  The standard remedy: bias the objective toward *keeping*
edges from the previous assignment by adding a ``stability_bonus`` to
each retained edge's weight, then solve the biased problem exactly with
the flow reduction.

This is optimal for the biased objective — equivalently, it maximizes
``benefit(M) + bonus * |M ∩ M_prev|``, the Lagrangian form of
"maximize benefit subject to limited churn".  Sweeping the bonus traces
the stability/benefit frontier (ablation F18).

Edges are identified by ``(worker_id, task_id)`` (entity ids, not
indices), so the previous assignment can come from a market snapshot
with different membership — exactly the cross-round situation.
"""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.core.solvers.state import (
    edge_ids,
    index_maps,
    retention_overlap,
)
from repro.matching.b_matching import max_weight_b_matching
from repro.utils.rng import SeedLike
from repro.utils.validation import check_nonnegative

__all__ = [
    "IncrementalFlowSolver",
    # Historical home of these helpers; canonical versions now live in
    # repro.core.solvers.state and are re-exported for compatibility.
    "edge_ids",
    "retention_overlap",
]


@register_solver("incremental-flow")
class IncrementalFlowSolver(Solver):
    """Flow-optimal solve of the stability-biased objective.

    Parameters
    ----------
    previous_edge_ids:
        ``(worker_id, task_id)`` pairs from the last round's assignment
        (see :func:`edge_ids`).  Empty set degrades to the plain flow
        solver.
    stability_bonus:
        Weight added to each retained edge.  0 = ignore history; large
        values effectively freeze the previous assignment wherever it
        remains feasible and positive.
    """

    def __init__(
        self,
        previous_edge_ids: set[tuple[int, int]] | None = None,
        stability_bonus: float = 0.5,
    ) -> None:
        self.previous_edge_ids = set(previous_edge_ids or set())
        self.stability_bonus = check_nonnegative(
            "stability_bonus", stability_bonus
        )

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        market = problem.market
        biased = problem.benefits.combined.copy()
        if self.previous_edge_ids and self.stability_bonus > 0:
            worker_index, task_index = index_maps(market)
            for worker_id, task_id in self.previous_edge_ids:
                i = worker_index.get(worker_id)
                j = task_index.get(task_id)
                if i is not None and j is not None:
                    biased[i, j] += self.stability_bonus
        edges, _total = max_weight_b_matching(
            biased, problem.worker_capacities(), problem.task_capacities()
        )
        return self._finish(problem, edges)

    def observe_round(self, problem: MBAProblem, assignment) -> None:
        """Remember this round's edges as the next round's history.

        Lets the simulator drive the solver round over round without
        manual rewiring: ``Scenario(solver_name="incremental-flow",
        solver_kwargs={"stability_bonus": ...})`` just works.
        """
        self.previous_edge_ids = edge_ids(problem, assignment)
