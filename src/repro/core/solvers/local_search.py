"""Greedy seed + swap-based local search.

Starts from the greedy solution and repeatedly applies the best
improving move among:

* **add** — insert an unused feasible edge with positive gain;
* **drop** — remove an edge whose removal increases the objective
  (possible for the egalitarian/Nash combiners and for negative
  worker-side edges);
* **swap** — replace one edge by another that reuses its freed
  worker or task capacity.

Local search is the standard way to optimize the *non-decomposing*
combiners (egalitarian, Nash), for which neither flow nor plain greedy
surrogate ordering is aligned with the true objective.  It terminates
when no move improves by more than ``tolerance``, with an iteration cap
for safety.

Performance: for :class:`LinearObjective` — under *any* combiner — the
objective value depends only on the two side totals, which change by a
matrix lookup per added/removed edge.  The solver exploits that with an
O(1)-per-candidate fast path; only set-valued objectives (coverage)
fall back to full re-evaluation.
"""

from __future__ import annotations

import math

from repro.core.assignment import Assignment
from repro.core.objective import LinearObjective, Objective
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.core.solvers.greedy import GreedySolver
from repro.utils.rng import SeedLike
from repro.utils.stats import edge_matrix_sum


@register_solver("local-search")
class LocalSearchSolver(Solver):
    """Best-improvement local search seeded by greedy."""

    def __init__(
        self,
        objective_factory=None,
        max_moves: int = 10_000,
        tolerance: float = 1e-9,
    ) -> None:
        self._objective_factory = (
            objective_factory if objective_factory is not None else LinearObjective
        )
        self.max_moves = max_moves
        self.tolerance = tolerance

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        seed_assignment = GreedySolver(self._objective_factory).solve(
            problem, seed
        )
        objective: Objective = self._objective_factory(problem)
        edges = list(seed_assignment.edges)
        if type(objective) is LinearObjective:
            edges = self._solve_side_totals(problem, edges)
        else:
            edges = self._solve_generic(problem, objective, edges)
        return self._finish(problem, edges)

    # -- fast path: value = combiner(total_req, total_wrk) ----------------

    def _solve_side_totals(
        self, problem: MBAProblem, edges: list[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        requester = problem.benefits.requester
        worker = problem.benefits.worker
        total = problem.combiner.total
        caps_w = problem.worker_capacities().copy()
        caps_t = problem.task_capacities().copy()
        for i, j in edges:
            caps_w[i] -= 1
            caps_t[j] -= 1
        candidates = [
            (i, j)
            for i in range(problem.n_workers)
            if problem.worker_capacities()[i] > 0
            for j in range(problem.n_tasks)
            if problem.task_capacities()[j] > 0
        ]
        req_sum = edge_matrix_sum(requester, edges)
        wrk_sum = edge_matrix_sum(worker, edges)
        value = total(req_sum, wrk_sum)

        for _move in range(self.max_moves):
            best_delta = self.tolerance
            best_apply = None
            edge_set = set(edges)

            for a, b in candidates:
                if (a, b) in edge_set or caps_w[a] <= 0 or caps_t[b] <= 0:
                    continue
                candidate_value = total(
                    req_sum + requester[a, b], wrk_sum + worker[a, b]
                )
                delta = candidate_value - value
                if delta > best_delta or (
                    value == -math.inf and candidate_value > -math.inf
                ):
                    best_delta = delta
                    best_apply = ("add", (a, b), None)

            for position, (i, j) in enumerate(edges):
                req_without = req_sum - requester[i, j]
                wrk_without = wrk_sum - worker[i, j]
                delta_drop = total(req_without, wrk_without) - value
                if delta_drop > best_delta:
                    best_delta = delta_drop
                    best_apply = ("drop", (i, j), position)
                for a, b in candidates:
                    if (a, b) in edge_set or (a, b) == (i, j):
                        continue
                    free_w = caps_w[a] + (1 if a == i else 0)
                    free_t = caps_t[b] + (1 if b == j else 0)
                    if free_w <= 0 or free_t <= 0:
                        continue
                    delta = (
                        total(
                            req_without + requester[a, b],
                            wrk_without + worker[a, b],
                        )
                        - value
                    )
                    if delta > best_delta:
                        best_delta = delta
                        best_apply = ("swap", (a, b), position)

            if best_apply is None:
                break
            edges, caps_w, caps_t = _apply_move(
                best_apply, edges, caps_w, caps_t
            )
            req_sum = edge_matrix_sum(requester, edges)
            wrk_sum = edge_matrix_sum(worker, edges)
            value = total(req_sum, wrk_sum)
        return edges

    # -- generic path: arbitrary set objectives ----------------------------

    def _solve_generic(
        self,
        problem: MBAProblem,
        objective: Objective,
        edges: list[tuple[int, int]],
    ) -> list[tuple[int, int]]:
        caps_w = problem.worker_capacities().copy()
        caps_t = problem.task_capacities().copy()
        for i, j in edges:
            caps_w[i] -= 1
            caps_t[j] -= 1
        candidates = [
            (i, j)
            for i in range(problem.n_workers)
            if problem.worker_capacities()[i] > 0
            for j in range(problem.n_tasks)
            if problem.task_capacities()[j] > 0
        ]
        value = objective.value(edges)

        for _move in range(self.max_moves):
            best_delta = self.tolerance
            best_apply = None
            edge_set = set(edges)

            for a, b in candidates:
                if (a, b) in edge_set or caps_w[a] <= 0 or caps_t[b] <= 0:
                    continue
                delta = objective.value(edges + [(a, b)]) - value
                if delta > best_delta:
                    best_delta = delta
                    best_apply = ("add", (a, b), None)

            for position, (i, j) in enumerate(edges):
                without = edges[:position] + edges[position + 1 :]
                base = objective.value(without)
                delta_drop = base - value
                if delta_drop > best_delta:
                    best_delta = delta_drop
                    best_apply = ("drop", (i, j), position)
                for a, b in candidates:
                    if (a, b) in edge_set or (a, b) == (i, j):
                        continue
                    free_w = caps_w[a] + (1 if a == i else 0)
                    free_t = caps_t[b] + (1 if b == j else 0)
                    if free_w <= 0 or free_t <= 0:
                        continue
                    delta = objective.value(without + [(a, b)]) - value
                    if delta > best_delta:
                        best_delta = delta
                        best_apply = ("swap", (a, b), position)

            if best_apply is None:
                break
            edges, caps_w, caps_t = _apply_move(
                best_apply, edges, caps_w, caps_t
            )
            # Recompute rather than accumulate deltas: robust to the
            # -inf values the Nash combiner produces on degenerate sets.
            value = objective.value(edges)
        return edges


def _apply_move(move, edges, caps_w, caps_t):
    """Apply an (add/drop/swap) move; returns updated structures."""
    kind, edge, position = move
    edges = list(edges)
    if kind == "add":
        edges.append(edge)
        caps_w[edge[0]] -= 1
        caps_t[edge[1]] -= 1
    elif kind == "drop":
        removed = edges.pop(position)
        caps_w[removed[0]] += 1
        caps_t[removed[1]] += 1
    else:  # swap
        removed = edges.pop(position)
        caps_w[removed[0]] += 1
        caps_t[removed[1]] += 1
        edges.append(edge)
        caps_w[edge[0]] -= 1
        caps_t[edge[1]] -= 1
    return edges, caps_w, caps_t
