"""Warm-started solving: replay, delta-solve, or fall back to cold.

Round-over-round markets change slowly — most workers and tasks
persist — yet the baseline loop re-solves every round from scratch.
:class:`WarmStartSolver` wraps any supported base solver with a
three-tier strategy driven by a :class:`~repro.core.solvers.state.WarmState`:

1. **Replay** (exact): when the new round's
   :func:`~repro.core.solvers.state.problem_fingerprint` equals the
   recorded one, the previous *planned* edges are, by determinism of
   the base solver, exactly what a cold solve would produce — return
   them without solving.  This is the bit-identity guarantee the perf
   harness and property tests pin.
2. **Warm delta-solve** (approximate mode only, ``exact=False``): when
   membership churn since the last record stays at or below
   ``churn_threshold``, dual state is re-keyed by entity id and fed to
   the kernel — auction object prices
   (:meth:`AuctionSolver.solve_with_prices`) or Hungarian potentials
   (:func:`repro.matching.hungarian.max_weight_assignment`).  Both
   kernels are *correct for any finite start state* (see their
   docstrings), so staleness costs bidding rounds / scan steps, never
   the objective — only tie-breaks may differ from a cold solve, which
   is why this tier is gated behind ``exact=False``.
3. **Cold solve**: anything else — and the fresh solution plus its
   duals become the next round's warm state.

The state lives on the solver object, so it rides simulation
checkpoints through the engine's solver pickling; a resumed run
replays/warm-solves exactly as the uninterrupted one would.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.auction_solver import AuctionSolver
from repro.core.solvers.base import Solver, get_solver, register_solver
from repro.core.solvers.state import WarmState, problem_fingerprint
from repro.errors import ValidationError
from repro.matching.hungarian import max_weight_assignment
from repro.utils.rng import SeedLike

#: Bases the warm wrapper may delegate to.  All are deterministic and
#: seed-ignoring, which is what makes the replay tier *exact*.
SUPPORTED_BASES: tuple[str, ...] = (
    "auction",
    "flow",
    "greedy",
    "hungarian",
    "local-search",
    "pruned-greedy",
    "sharded",
)

#: Bases with a dual-state delta-solve path (tier 2).
WARM_KERNEL_BASES: tuple[str, ...] = ("auction", "hungarian")


@register_solver("warm")
class WarmStartSolver(Solver):
    """Replay / delta-solve / cold-solve wrapper around a base solver.

    Parameters
    ----------
    base:
        One of :data:`SUPPORTED_BASES`.  ``"hungarian"`` is implemented
        internally (capacity expansion + potential-warmed Kuhn–Munkres
        with the auction solver's dedup/refill repair) — it is not a
        standalone registry entry.
    base_kwargs:
        Constructor kwargs for the base solver.
    churn_threshold:
        Maximum membership-churn fraction for the delta-solve tier.
    exact:
        ``True`` restricts reuse to the provably bit-identical replay
        tier; ``False`` additionally enables dual-state delta-solving
        for the kernels in :data:`WARM_KERNEL_BASES`.
    warm_state:
        Injectable state (e.g. restored from a checkpoint); a fresh
        empty :class:`WarmState` when omitted.
    """

    carries_warm_state = True

    def __init__(
        self,
        base: str = "auction",
        base_kwargs: dict | None = None,
        churn_threshold: float = 0.25,
        exact: bool = True,
        warm_state: WarmState | None = None,
    ) -> None:
        if base not in SUPPORTED_BASES:
            raise ValidationError(
                f"warm base must be one of {SUPPORTED_BASES}, got {base!r}"
            )
        self.base = base
        self.base_kwargs = dict(base_kwargs or {})
        if not 0.0 <= churn_threshold <= 1.0:
            raise ValidationError(
                f"churn_threshold must lie in [0, 1], got {churn_threshold}"
            )
        self.churn_threshold = churn_threshold
        self.exact = exact
        self.warm_state = warm_state if warm_state is not None else WarmState()
        self.last_warm_outcome: str | None = None
        self.last_report = None

    # -- solving ---------------------------------------------------------

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        state = self.warm_state
        fingerprint = problem_fingerprint(problem)

        if state.fingerprint == fingerprint and state.edges is not None:
            state.replays += 1
            self.last_warm_outcome = "replay"
            obs.count("solver.warm.replays")
            return self._finish(problem, list(state.edges))

        churn = state.churn_fraction(problem.market)
        use_warm_kernel = (
            not self.exact
            and self.base in WARM_KERNEL_BASES
            and churn <= self.churn_threshold
        )
        if self.base == "auction":
            start = state.price_vector(problem.market) if use_warm_kernel else None
            assignment, prices = AuctionSolver(
                **self.base_kwargs
            ).solve_with_prices(problem, start_task_prices=start)
            edges = list(assignment.edges)
            state.task_prices = {
                task.task_id: float(prices[j])
                for j, task in enumerate(problem.market.tasks)
            }
        elif self.base == "hungarian":
            start = (
                state.potential_vectors(problem.market)
                if use_warm_kernel
                else None
            )
            edges, duals = _hungarian_solve(problem, start)
            u, v = duals
            state.worker_potentials = {
                worker.worker_id: float(u[i])
                for i, worker in enumerate(problem.market.workers)
            }
            state.task_potentials = {
                task.task_id: float(v[j])
                for j, task in enumerate(problem.market.tasks)
            }
        else:
            use_warm_kernel = False
            base_solver = get_solver(self.base, **self.base_kwargs)
            edges = list(base_solver.solve(problem, seed).edges)
            self.last_report = getattr(base_solver, "last_report", None)

        assignment = self._finish(problem, edges)
        state.record(problem, fingerprint, assignment)
        if use_warm_kernel:
            state.warm_solves += 1
            self.last_warm_outcome = "warm"
            obs.count("solver.warm.warm_solves")
        else:
            state.cold_solves += 1
            self.last_warm_outcome = "cold"
            obs.count("solver.warm.cold_solves")
        return assignment


def _hungarian_solve(
    problem: MBAProblem,
    start_potentials: tuple[np.ndarray, np.ndarray] | None,
) -> tuple[list[tuple[int, int]], tuple[np.ndarray, np.ndarray]]:
    """Capacity-expanded Hungarian solve with entity-keyed potentials.

    Mirrors the auction solver's expansion: worker copies per unit of
    capacity, task slot copies per unit of replication.  Copy-level
    potentials are broadcast from (and afterwards reduced back to, via
    the first copy of each entity) entity-level vectors, so they re-key
    cleanly across membership churn.  The dedup/refill repair is shared
    with :class:`~repro.core.solvers.auction_solver.AuctionSolver`.
    """
    caps_w = problem.worker_capacities()
    caps_t = problem.task_capacities()
    n_workers, n_tasks = problem.n_workers, problem.n_tasks
    bidders = np.repeat(np.arange(n_workers), caps_w.astype(int))
    slots = np.repeat(np.arange(n_tasks), caps_t.astype(int))
    if bidders.size == 0 or slots.size == 0:
        return [], (np.zeros(n_workers), np.zeros(n_tasks))

    clipped = np.maximum(problem.benefits.combined, 0.0)
    values = clipped[np.ix_(bidders, slots)].astype(float)
    if float(values.max()) <= 0.0:
        return [], (np.zeros(n_workers), np.zeros(n_tasks))

    copy_potentials = None
    if start_potentials is not None:
        entity_u, entity_v = start_potentials
        copy_potentials = (
            np.asarray(entity_u, dtype=float)[bidders],
            np.asarray(entity_v, dtype=float)[slots],
        )
    assignment, _total, (copy_u, copy_v) = max_weight_assignment(
        values, start_potentials=copy_potentials, return_state=True
    )

    pairs = [
        (bidder_position, slot_position)
        for bidder_position, slot_position in enumerate(assignment)
        if slot_position >= 0
    ]
    edges = AuctionSolver._collect_edges(
        problem,
        pairs,
        bidders.tolist(),
        slots.tolist(),
        values,
        int(slots.size),
    )

    # First copy of each entity carries its representative potential;
    # ``np.repeat(arange, caps)`` is sorted, so first-copy positions
    # are the exclusive prefix sums of the capacities.
    int_caps_w = caps_w.astype(np.int64)
    int_caps_t = caps_t.astype(np.int64)
    offsets_w = np.concatenate(([0], np.cumsum(int_caps_w)[:-1]))
    offsets_t = np.concatenate(([0], np.cumsum(int_caps_t)[:-1]))
    # Zero-capacity entities point past the end; clip (they are masked
    # out by the ``where`` anyway, but both branches are evaluated).
    offsets_w = np.minimum(offsets_w, bidders.size - 1)
    offsets_t = np.minimum(offsets_t, slots.size - 1)
    u = np.where(int_caps_w > 0, copy_u[offsets_w], 0.0)
    v = np.where(int_caps_t > 0, copy_v[offsets_t], 0.0)
    return edges, (u, v)
