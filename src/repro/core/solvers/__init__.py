"""Solver registry for MBA task assignment.

Registered names (use :func:`get_solver`):

========================  ====================================================
``flow``                  exact for additive objectives, via min-cost flow
``greedy``                lazy greedy on any objective (1/2 guarantee on
                          submodular + partition matroid)
``local-search``          greedy followed by swap-based improvement
``exact``                 branch-and-bound optimum, small instances only
``online-greedy``         workers arrive online, greedy per arrival
``online-two-phase``      sample-and-price online algorithm
``auction``               decentralizable ε-scaling auction (exact when a
                          side is unit-capacity)
``online-batch``          micro-batching: per-window optimal assignment
``budgeted-flow``         Lagrangian bisection under a global payment cap
``pruned-greedy``         scalable greedy on top-k pruned candidates
``incremental-flow``      stability-biased flow for cross-round re-solves
``constrained-greedy``    greedy honouring budget/qualification/diversity
                          constraints (see :mod:`repro.core.constraints`)
``stable-matching``       Gale–Shapley deferred acceptance baseline (zero
                          blocking pairs under the induced preferences)
``resilient``             deadline/retry/fallback wrapper around any other
                          solver (lazily loaded from
                          :mod:`repro.resilience`)
``sharded``               partition-by-category solve (optionally on a
                          supervised process pool) with cross-shard
                          refinement and a provable objective-gap report
``warm``                  warm-start wrapper: fingerprint replay, dual-state
                          delta-solves (auction prices / Hungarian
                          potentials), cold fallback
``quality-only``          baseline: requester side only (λ=1)
``worker-only``           baseline: worker side only (λ=0)
``random``                baseline: random feasible positive edges
``round-robin``           baseline: tasks take turns picking workers
========================  ====================================================
"""

from repro.core.solvers.auction_solver import AuctionSolver
from repro.core.solvers.base import (
    LAZY_SOLVER_MODULES,
    SOLVER_REGISTRY,
    Solver,
    accepted_solver_kwargs,
    get_solver,
    list_solvers,
    register_solver,
    solver_signature,
    validate_solver_kwargs,
)
from repro.core.solvers.batched import OnlineBatchSolver
from repro.core.solvers.budgeted import BudgetedFlowSolver
from repro.core.solvers.baselines import (
    QualityOnlySolver,
    RandomSolver,
    RoundRobinSolver,
    WorkerOnlySolver,
)
from repro.core.solvers.exact import ExactSolver
from repro.core.solvers.flow import FlowSolver
from repro.core.solvers.greedy import GreedySolver
from repro.core.solvers.incremental import IncrementalFlowSolver
from repro.core.solvers.local_search import LocalSearchSolver
from repro.core.solvers.online import OnlineGreedySolver, OnlineTwoPhaseSolver
from repro.core.solvers.pruned import PrunedGreedySolver
from repro.core.solvers.sharded import (
    Shard,
    ShardPlan,
    ShardReport,
    ShardedSolver,
    plan_shards,
)
from repro.core.solvers.stable import StableMatchingSolver
from repro.core.solvers.state import (
    WarmState,
    edge_ids,
    problem_fingerprint,
    retention_overlap,
)
from repro.core.solvers.warm import WarmStartSolver

__all__ = [
    "AuctionSolver",
    "BudgetedFlowSolver",
    "LAZY_SOLVER_MODULES",
    "ExactSolver",
    "FlowSolver",
    "GreedySolver",
    "IncrementalFlowSolver",
    "LocalSearchSolver",
    "OnlineBatchSolver",
    "OnlineGreedySolver",
    "OnlineTwoPhaseSolver",
    "PrunedGreedySolver",
    "QualityOnlySolver",
    "RandomSolver",
    "RoundRobinSolver",
    "SOLVER_REGISTRY",
    "Shard",
    "ShardPlan",
    "ShardReport",
    "ShardedSolver",
    "Solver",
    "StableMatchingSolver",
    "WarmState",
    "WarmStartSolver",
    "WorkerOnlySolver",
    "edge_ids",
    "plan_shards",
    "problem_fingerprint",
    "retention_overlap",
    "accepted_solver_kwargs",
    "get_solver",
    "list_solvers",
    "register_solver",
    "solver_signature",
    "validate_solver_kwargs",
]
