"""Auction-based assignment solver.

Reduces the capacitated MBA assignment to a *unit* assignment by
expanding each worker into ``capacity`` bidder copies and each task
into ``replication`` slot copies, then runs Bertsekas' ε-scaling
auction (:func:`repro.matching.auction.auction_assignment`).

The expansion solves a relaxation: two copies of worker ``i`` may both
grab copies of task ``j`` (a worker answering a task twice), which the
real problem forbids.  That only arises when *both* the worker's
capacity and the task's replication exceed 1; the solver repairs it by
keeping one copy of each duplicated pair and greedily refilling the
freed capacity with the best unused positive edges.  Consequences,
locked by tests:

* **exact** whenever every worker capacity is 1 or every task
  replication is 1 (the expansion is then duplicate-free);
* otherwise a high-quality approximation (within a few percent of the
  flow optimum on random instances).

Why keep it?  The auction is the *decentralized* algorithm — bidders
act on local prices — which is how one shards assignment across
machines, and it cross-validates the flow reduction at whole-solver
level on the exact cases.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.errors import ConvergenceError
from repro.matching.auction import auction_assignment
from repro.utils.rng import SeedLike


@register_solver("auction")
class AuctionSolver(Solver):
    """ε-scaling auction on the capacity-expanded unit assignment.

    ``max_rounds`` bounds the total bidding iterations; exceeding it
    raises :class:`repro.errors.ConvergenceError` whose ``partial``
    carries the best feasible edge set recovered from the auction's
    in-progress matching (repaired and refilled exactly like a
    completed run), so resilient callers can salvage instead of
    discarding the work.
    """

    def __init__(
        self,
        max_rounds: int = 10_000_000,
        epsilon_start: float | None = None,
        scaling: float = 4.0,
        mode: str = "gauss-seidel",
    ) -> None:
        self.max_rounds = max_rounds
        self.epsilon_start = epsilon_start
        self.scaling = scaling
        self.mode = mode

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        assignment, _prices = self.solve_with_prices(problem)
        return assignment

    def solve_with_prices(
        self,
        problem: MBAProblem,
        start_task_prices: np.ndarray | None = None,
    ) -> tuple[Assignment, np.ndarray]:
        """Solve and expose per-task auction prices for warm starts.

        ``start_task_prices`` is a length-``n_tasks`` vector broadcast
        to every slot copy of a task on entry; the returned vector is
        the per-task *maximum* over its slot copies' final prices (the
        binding one).  Any finite starting prices are correct — see
        :func:`repro.matching.auction.auction_assignment` — so callers
        may feed prices recorded under a previous market snapshot.
        """
        caps_w = problem.worker_capacities()
        caps_t = problem.task_capacities()

        bidders = np.repeat(
            np.arange(problem.n_workers), caps_w.astype(int)
        ).tolist()
        slots = np.repeat(
            np.arange(problem.n_tasks), caps_t.astype(int)
        ).tolist()
        if not bidders or not slots:
            return self._finish(problem, []), np.zeros(problem.n_tasks)

        clipped = np.maximum(problem.benefits.combined, 0.0)
        values = clipped[np.ix_(bidders, slots)].astype(float)
        # Clipped values are >= 0, so "no positive edge" is max <= 0.
        if float(values.max()) <= 0.0:
            return self._finish(problem, []), np.zeros(problem.n_tasks)

        # Auction needs n_rows <= n_cols; pad with zero-value dummy
        # slots (meaning "stay unassigned") when bidders outnumber
        # slots.
        n_b, n_s = values.shape
        if n_b > n_s:
            padded = np.zeros((n_b, n_b))
            padded[:, :n_s] = values
            values = padded

        start_prices = None
        if start_task_prices is not None:
            per_slot = np.asarray(start_task_prices, dtype=float)[
                np.asarray(slots, dtype=int)
            ]
            start_prices = np.zeros(values.shape[1])
            start_prices[:n_s] = per_slot

        try:
            assignment, _total, slot_prices = auction_assignment(
                values,
                epsilon_start=self.epsilon_start,
                scaling=self.scaling,
                max_rounds=self.max_rounds,
                mode=self.mode,
                start_prices=start_prices,
                return_state=True,
            )
        except ConvergenceError as error:
            # Translate the matching-level partial (bidder copy ->
            # slot copy) into problem-level edges and re-raise so the
            # resilience executor can salvage it.
            error.partial = self._collect_edges(
                problem, error.partial or [], bidders, slots, values, n_s
            )
            raise
        pairs = [
            (bidder_position, slot_position)
            for bidder_position, slot_position in enumerate(assignment)
        ]
        edges = self._collect_edges(
            problem, pairs, bidders, slots, values, n_s
        )
        task_prices = np.zeros(problem.n_tasks)
        np.maximum.at(
            task_prices, np.asarray(slots, dtype=int), slot_prices[:n_s]
        )
        return self._finish(problem, edges), task_prices

    @staticmethod
    def _collect_edges(
        problem: MBAProblem,
        pairs: list[tuple[int, int]],
        bidders: list[int],
        slots: list[int],
        values: np.ndarray,
        n_s: int,
    ) -> list[tuple[int, int]]:
        """Copy-level picks -> valid edge set (dedup + greedy refill).

        Drops dummy-slot and zero-value picks and duplicate (i, j)
        pairs, then greedily refills the capacity those drops freed
        with the best unused positive edges — the repair step shared by
        completed and salvaged-partial auctions.
        """
        combined = problem.benefits.combined
        caps_w = problem.worker_capacities()
        caps_t = problem.task_capacities()
        edges: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        load_w = np.zeros(problem.n_workers, dtype=int)
        load_t = np.zeros(problem.n_tasks, dtype=int)
        for bidder_position, slot_position in pairs:
            if slot_position < 0 or slot_position >= n_s:
                continue
            i = bidders[bidder_position]
            j = slots[slot_position]
            if values[bidder_position, slot_position] <= 0:
                continue
            if (i, j) in seen:
                continue  # duplicate pair: repaired below by refill
            seen.add((i, j))
            load_w[i] += 1
            load_t[j] += 1
            edges.append((i, j))

        # Greedy refill of capacity freed by dropped duplicates.
        spare_w = caps_w - load_w
        spare_t = caps_t - load_t
        if spare_w.sum() > 0 and spare_t.sum() > 0:
            viable = (
                (spare_w > 0)[:, np.newaxis]
                & (spare_t > 0)[np.newaxis, :]
                & (combined > 0)
            )
            if seen:
                taken = np.asarray(sorted(seen), dtype=int)
                viable[taken[:, 0], taken[:, 1]] = False
            flat = np.flatnonzero(viable)
            # Highest value first; on ties, highest (i, j) — the order
            # `sorted(..., reverse=True)` of (value, i, j) tuples gave.
            order = np.lexsort((-flat, -combined.reshape(-1)[flat]))
            n_tasks = problem.n_tasks
            for position in flat[order]:
                i = int(position) // n_tasks
                j = int(position) % n_tasks
                if spare_w[i] > 0 and spare_t[j] > 0:
                    spare_w[i] -= 1
                    spare_t[j] -= 1
                    seen.add((i, j))
                    edges.append((i, j))
        return edges

    @staticmethod
    def exact_for_problem(problem: MBAProblem) -> bool:
        """True when the expansion is duplicate-free, hence optimal."""
        if not problem.combiner.decomposes_over_edges:
            return False
        return (
            bool((problem.worker_capacities() <= 1).all())
            or bool((problem.task_capacities() <= 1).all())
        )
