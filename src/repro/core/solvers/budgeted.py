"""Budgeted assignment via Lagrangian relaxation.

"Maximize mutual benefit subject to total payments ≤ B" couples all
edges through one knapsack-style constraint, which breaks the clean
flow structure.  The classical remedy is Lagrangian relaxation: solve

    max  benefit(M) − λ · payment(M)

with the *unconstrained* flow solver, and bisect on the price λ ≥ 0
until the spend meets the budget.  Standard properties, which the tests
lock empirically:

* spend(λ) is non-increasing in λ (higher price, thinner assignment);
* every λ-solution is *optimal for its own spend level* — it maximizes
  benefit among assignments spending no more than it does (Lagrangian
  optimality / the "Lagrangian certificate");
* the returned solution is feasible (spend ≤ B) and its benefit is
  within the duality gap of the true budgeted optimum; the gap closes
  when some λ hits the budget exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.errors import ValidationError
from repro.matching.b_matching import max_weight_b_matching
from repro.utils.rng import SeedLike
from repro.utils.stats import edge_matrix_sum


def assignment_spend(problem: MBAProblem, edges) -> float:
    """Total payments committed by a set of edges."""
    if not edges:
        return 0.0
    payments = problem.market.task_payments()
    task_index = np.asarray(edges, dtype=np.int64)[:, 1]
    return float(payments[task_index].sum())


@register_solver("budgeted-flow")
class BudgetedFlowSolver(Solver):
    """Bisection on the Lagrangian payment price.

    Parameters
    ----------
    budget:
        Total payment cap across the whole assignment; ``inf`` degrades
        to the plain flow solver.
    max_bisections:
        Bisection steps on λ; 40 reaches float resolution.
    """

    def __init__(
        self, budget: float = float("inf"), max_bisections: int = 40
    ) -> None:
        if budget < 0:
            raise ValidationError(f"budget must be >= 0, got {budget}")
        if max_bisections < 1:
            raise ValidationError("max_bisections must be >= 1")
        self.budget = budget
        self.max_bisections = max_bisections

    def _solve_at_price(
        self, problem: MBAProblem, price: float
    ) -> list[tuple[int, int]]:
        payments = problem.market.task_payments()
        weights = problem.benefits.combined - price * payments[np.newaxis, :]
        edges, _total = max_weight_b_matching(
            weights, problem.worker_capacities(), problem.task_capacities()
        )
        return edges

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        free_edges = self._solve_at_price(problem, 0.0)
        if assignment_spend(problem, free_edges) <= self.budget:
            return self._finish(problem, free_edges)

        # Find a price high enough to be feasible (spend is
        # non-increasing in price; at a price above max benefit/payment
        # no edge survives, so spend reaches 0).
        low, high = 0.0, 1.0
        best_feasible: list[tuple[int, int]] = []
        for _ in range(60):
            edges = self._solve_at_price(problem, high)
            if assignment_spend(problem, edges) <= self.budget:
                best_feasible = edges
                break
            high *= 2.0
        else:
            return self._finish(problem, [])

        for _ in range(self.max_bisections):
            mid = (low + high) / 2.0
            edges = self._solve_at_price(problem, mid)
            if assignment_spend(problem, edges) <= self.budget:
                best_feasible = edges
                high = mid
            else:
                low = mid

        # The Lagrangian point can land well under budget (the solution
        # jumps discontinuously in λ).  Take the best of several
        # repairs — density-filled Lagrangian, pure density greedy, and
        # the single best affordable edge (the classical knapsack
        # modified-greedy ingredients).
        combined = problem.benefits.combined
        candidates = [
            best_feasible,
            self._greedy_fill(problem, best_feasible),
            self._greedy_fill(problem, []),
            self._best_single_edge(problem),
        ]
        best = max(
            candidates,
            key=lambda edges: edge_matrix_sum(combined, edges),
        )
        return self._finish(problem, best)

    def _best_single_edge(
        self, problem: MBAProblem
    ) -> list[tuple[int, int]]:
        """The highest-value single edge the budget can afford."""
        combined = problem.benefits.combined
        payments = problem.market.task_payments()
        caps_w = problem.worker_capacities()
        caps_t = problem.task_capacities()
        best_value = 0.0
        best: list[tuple[int, int]] = []
        for i in range(problem.n_workers):
            if caps_w[i] <= 0:
                continue
            for j in range(problem.n_tasks):
                if caps_t[j] <= 0 or payments[j] > self.budget + 1e-9:
                    continue
                if combined[i, j] > best_value:
                    best_value = float(combined[i, j])
                    best = [(i, j)]
        return best

    def _greedy_fill(
        self, problem: MBAProblem, edges: list[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        """Spend leftover budget on the densest remaining edges.

        The Lagrangian point can land well under budget (the solution
        jumps discontinuously in λ); topping up by benefit-per-payment
        density recovers most of the duality gap in practice.
        """
        payments = problem.market.task_payments()
        combined = problem.benefits.combined
        spend = assignment_spend(problem, edges)
        caps_w = problem.worker_capacities().copy()
        caps_t = problem.task_capacities().copy()
        taken = set(edges)
        for i, j in edges:
            caps_w[i] -= 1
            caps_t[j] -= 1
        candidates = sorted(
            (
                (
                    float(combined[i, j]) / max(float(payments[j]), 1e-12),
                    i,
                    j,
                )
                for i in range(problem.n_workers)
                if caps_w[i] > 0
                for j in range(problem.n_tasks)
                if caps_t[j] > 0
                and combined[i, j] > 0
                and (i, j) not in taken
            ),
            reverse=True,
        )
        result = list(edges)
        for _density, i, j in candidates:
            if caps_w[i] <= 0 or caps_t[j] <= 0:
                continue
            if spend + payments[j] > self.budget + 1e-9:
                continue
            caps_w[i] -= 1
            caps_t[j] -= 1
            spend += float(payments[j])
            result.append((i, j))
        return result
