"""Shared cross-round solver state: id-keyed edges and warm-start duals.

Three solver families carry information from one round to the next —
the incremental flow solver (previous edges), the warm-start wrapper
(auction prices / Hungarian potentials), and the sharded solver (which
reuses both through the warm wrapper).  They all face the same two
problems, solved here exactly once:

* **Identity across snapshots.**  Matrix indices are only meaningful
  within one market snapshot; cross-round state must be keyed on the
  stable entity ids (``worker_id``, ``task_id``).  :func:`edge_ids`
  and :func:`index_maps` translate between the two spaces.
* **Staleness detection.**  Reusing state is only *exact* when the
  problem is bit-identical; :func:`problem_fingerprint` hashes every
  input a deterministic solver reads (benefit matrix, capacities,
  active mask, entity ids), so "nothing changed" is a cheap equality
  check instead of a hope.

:class:`WarmState` bundles the persisted pieces.  It is a plain
picklable dataclass, so a solver holding one checkpoints for free
through the simulation engine's state snapshot (the engine pickles the
solver object itself — see ``Simulation._snapshot_bytes``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem


def edge_ids(
    problem: MBAProblem, assignment: Assignment
) -> set[tuple[int, int]]:
    """(worker_id, task_id) pairs of an assignment, for cross-round reuse."""
    market = assignment.problem.market
    return {
        (market.workers[i].worker_id, market.tasks[j].task_id)
        for i, j in assignment.edges
    }


def retention_overlap(
    previous_ids: set[tuple[int, int]],
    problem: MBAProblem,
    assignment: Assignment,
) -> float:
    """Fraction of the previous edges retained in the new assignment."""
    if not previous_ids:
        return 1.0
    market = problem.market
    current = {
        (market.workers[i].worker_id, market.tasks[j].task_id)
        for i, j in assignment.edges
    }
    return len(previous_ids & current) / len(previous_ids)


def index_maps(market) -> tuple[dict[int, int], dict[int, int]]:
    """``(worker_id -> index, task_id -> index)`` for one snapshot."""
    worker_index = {w.worker_id: i for i, w in enumerate(market.workers)}
    task_index = {t.task_id: j for j, t in enumerate(market.tasks)}
    return worker_index, task_index


def problem_fingerprint(problem: MBAProblem) -> bytes:
    """Content hash of everything a deterministic solver reads.

    Covers the combined benefit matrix bytes, the effective capacities
    (inactive workers already zeroed), the replication quotas, and the
    entity id sequences.  Two problems with equal fingerprints yield
    bit-identical assignments from any deterministic solver, which is
    what licenses the warm wrapper's replay fast path.

    Memoized per problem instance (hashing the combined matrix is the
    dominant cost at scale): a problem's inputs are immutable for its
    lifetime, so the hash is computed at most once and repeated solves
    of the same instance — the replay fast path's whole point — pay
    only a dictionary-sized check.
    """
    memo = getattr(problem, "_fingerprint", None)
    if memo is not None:
        return memo
    market = problem.market
    digest = hashlib.blake2b(digest_size=16)
    worker_ids = np.fromiter(
        (w.worker_id for w in market.workers),
        dtype=np.int64,
        count=market.n_workers,
    )
    task_ids = np.fromiter(
        (t.task_id for t in market.tasks),
        dtype=np.int64,
        count=market.n_tasks,
    )
    for part in (
        worker_ids,
        task_ids,
        problem.worker_capacities().astype(np.int64),
        problem.task_capacities().astype(np.int64),
    ):
        digest.update(np.ascontiguousarray(part).data)
        digest.update(b"|")
    combined = np.ascontiguousarray(
        problem.benefits.combined, dtype=np.float64
    )
    digest.update(str(combined.shape).encode())
    digest.update(combined.data)
    result = digest.digest()
    try:
        problem._fingerprint = result
    except AttributeError:
        pass  # frozen duck problems just skip the memo
    return result


@dataclass
class WarmState:
    """Cross-round solver memory: last solution plus dual variables.

    ``fingerprint``/``edges`` support the *exact* replay path: when the
    next round's problem hashes identically, the previous planned edges
    ARE the deterministic base solver's answer.  The dual dictionaries
    (auction prices per task, Hungarian potentials per entity) feed the
    *approximate* delta-solve path under membership churn.  All fields
    are picklable, so the state rides simulation checkpoints unchanged.
    """

    fingerprint: bytes | None = None
    edges: tuple[tuple[int, int], ...] | None = None
    edge_id_pairs: frozenset = frozenset()
    task_prices: dict[int, float] = field(default_factory=dict)
    worker_potentials: dict[int, float] = field(default_factory=dict)
    task_potentials: dict[int, float] = field(default_factory=dict)
    seen_workers: frozenset = frozenset()
    seen_tasks: frozenset = frozenset()
    rounds_recorded: int = 0
    replays: int = 0
    warm_solves: int = 0
    cold_solves: int = 0

    def churn_fraction(self, market) -> float:
        """Fraction of the current market unseen at the last record.

        1.0 before anything was recorded (cold by definition); 0.0 when
        every current worker and task id was present last round.
        """
        if self.rounds_recorded == 0:
            return 1.0
        total = market.n_workers + market.n_tasks
        if total == 0:
            return 0.0
        known = sum(
            1 for w in market.workers if w.worker_id in self.seen_workers
        ) + sum(1 for t in market.tasks if t.task_id in self.seen_tasks)
        return 1.0 - known / total

    def record(
        self,
        problem: MBAProblem,
        fingerprint: bytes,
        assignment: Assignment,
    ) -> None:
        """Remember a fresh solve's identity and solution."""
        market = problem.market
        self.fingerprint = fingerprint
        self.edges = tuple(assignment.edges)
        self.edge_id_pairs = frozenset(edge_ids(problem, assignment))
        self.seen_workers = frozenset(
            w.worker_id for w in market.workers
        )
        self.seen_tasks = frozenset(t.task_id for t in market.tasks)
        self.rounds_recorded += 1

    def price_vector(self, market, default: float = 0.0) -> np.ndarray:
        """Per-task-index price array for the current snapshot."""
        return np.array(
            [
                self.task_prices.get(t.task_id, default)
                for t in market.tasks
            ],
            dtype=float,
        )

    def potential_vectors(
        self, market, default: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-index ``(u, v)`` Hungarian potentials for the snapshot."""
        u = np.array(
            [
                self.worker_potentials.get(w.worker_id, default)
                for w in market.workers
            ],
            dtype=float,
        )
        v = np.array(
            [
                self.task_potentials.get(t.task_id, default)
                for t in market.tasks
            ],
            dtype=float,
        )
        return u, v
