"""Exact branch-and-bound solver for small instances.

Explores edge-inclusion decisions in decreasing-surrogate-gain order.
Pruning combines three ingredients:

* **greedy warm start** — the incumbent starts at the greedy solution,
  so the bound has something to beat from node one;
* **sorted-prefix bound** — candidates are sorted by surrogate gain,
  so the best ``R`` additions available from position ``k`` are exactly
  ``gains[k : k + R]``; for linear objectives the surrogate equals the
  marginal and for the coverage objective the singleton surrogate
  upper-bounds every later marginal (submodularity), so the prefix sum
  is a valid optimistic completion;
* **capacity cap** — ``R`` is capped by the total remaining worker
  capacity and task replication, which the relaxation above would
  otherwise ignore.

Still exponential in the worst case; guarded by an explicit
instance-size limit so it cannot be misused in a sweep.  Its role is
ground truth: experiment F12 compares greedy/flow output against it,
and tests cross-validate the flow solver on linear instances.

The bound argument requires the surrogate to upper-bound marginal
gains, which holds for :class:`LinearObjective` under a decomposing
combiner and for :class:`CoverageObjective`; pairing this solver with
the egalitarian/Nash combiners is unsupported.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.objective import LinearObjective, Objective
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.core.solvers.greedy import GreedySolver
from repro.errors import ValidationError
from repro.utils.rng import SeedLike


@register_solver("exact")
class ExactSolver(Solver):
    """Branch-and-bound optimum; refuses instances above ``max_edges``."""

    def __init__(self, objective_factory=None, max_edges: int = 120) -> None:
        self._objective_factory = (
            objective_factory if objective_factory is not None else LinearObjective
        )
        self.max_edges = max_edges

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        objective: Objective = self._objective_factory(problem)
        caps_w = problem.worker_capacities()
        caps_t = problem.task_capacities()
        combined = problem.benefits.combined

        candidates = [
            (float(combined[i, j]), i, j)
            for i in range(problem.n_workers)
            if caps_w[i] > 0
            for j in range(problem.n_tasks)
            if caps_t[j] > 0 and combined[i, j] > 0
        ]
        if len(candidates) > self.max_edges:
            raise ValidationError(
                f"exact solver limited to {self.max_edges} candidate edges, "
                f"instance has {len(candidates)}; use 'flow' or 'greedy'"
            )
        candidates.sort(reverse=True)
        gains = np.array([g for g, _i, _j in candidates])
        # prefix[k] = sum of the k largest gains; the best R additions
        # from position k onward are gains[k : k + R] because the list
        # is sorted descending.
        prefix = np.concatenate(([0.0], np.cumsum(gains)))

        # Warm start: greedy gives a strong incumbent for pruning.
        warm = GreedySolver(self._objective_factory).solve(problem, seed)
        best_edges = list(warm.edges)
        best_value = objective.value(best_edges)
        empty_value = objective.value([])
        if empty_value > best_value:
            best_value = empty_value
            best_edges = []

        remaining_w = caps_w.copy()
        remaining_t = caps_t.copy()
        current: list[tuple[int, int]] = []
        n_candidates = len(candidates)

        def bound_from(k: int) -> float:
            slots = min(
                int(remaining_w.sum()),
                int(remaining_t.sum()),
                n_candidates - k,
            )
            if slots <= 0:
                return 0.0
            return float(prefix[k + slots] - prefix[k])

        def recurse(k: int, current_value: float) -> None:
            nonlocal best_value, best_edges
            if current_value > best_value + 1e-12:
                best_value = current_value
                best_edges = list(current)
            if k == n_candidates:
                return
            if current_value + bound_from(k) <= best_value + 1e-12:
                return
            _gain, i, j = candidates[k]
            # Branch 1: include (i, j) if capacity remains.
            if remaining_w[i] > 0 and remaining_t[j] > 0:
                marginal = objective.marginal(current, (i, j))
                if marginal > 0:
                    current.append((i, j))
                    remaining_w[i] -= 1
                    remaining_t[j] -= 1
                    recurse(k + 1, current_value + marginal)
                    current.pop()
                    remaining_w[i] += 1
                    remaining_t[j] += 1
            # Branch 2: exclude.
            recurse(k + 1, current_value)

        recurse(0, empty_value)
        return self._finish(problem, best_edges)
