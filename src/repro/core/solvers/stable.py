"""Stable-matching solver: deferred acceptance as an MBA baseline.

Preferences are induced by the benefit matrices (workers rank tasks by
worker-side benefit, tasks rank workers by requester-side benefit), so
"stable" here means: no worker-task pair exists that both sides would
rather have than their current match.  Matching theory's notion of
mutual agreeability, put side by side with the paper's utilitarian
mutual-benefit objective in experiment F19.
"""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.matching.stable import blocking_pairs, deferred_acceptance
from repro.utils.rng import SeedLike


@register_solver("stable-matching")
class StableMatchingSolver(Solver):
    """Worker-proposing deferred acceptance on induced preferences."""

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        edges = deferred_acceptance(
            problem.benefits.worker,
            problem.benefits.requester,
            problem.worker_capacities(),
            problem.task_capacities(),
        )
        return self._finish(problem, edges)

    @staticmethod
    def count_blocking_pairs(
        problem: MBAProblem, assignment: Assignment
    ) -> int:
        """Blocking pairs of any assignment under the induced preferences."""
        return len(
            blocking_pairs(
                list(assignment.edges),
                problem.benefits.worker,
                problem.benefits.requester,
                problem.worker_capacities(),
                problem.task_capacities(),
            )
        )
