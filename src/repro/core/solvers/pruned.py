"""Top-k candidate pruning: the scalable approximate solver.

At platform scale the dense worker×task benefit matrix is the enemy:
|W|·|T| candidate edges make even greedy's heap O(nm log nm).  The
standard systems remedy — and the kind of optimization the paper's
prototype needs to hit its throughput numbers — is **candidate
pruning**: keep only each worker's top-``k`` tasks (by combined
benefit) and each task's top-``k`` workers, and run greedy on that
sparse union.

Rationale: an edge outside both top-``k`` lists can only matter when
every better partner of *both* endpoints is exhausted, which at
realistic capacity/replication ratios is rare; F17 (the pruning
ablation added by this reproduction) measures quality-vs-speed as
``k`` shrinks.

The pruning itself is vectorized (two ``argpartition`` calls), so the
end-to-end cost is O(nm + E_k log E_k) with E_k = k(n + m) surviving
edges.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.errors import ValidationError
from repro.utils.rng import SeedLike


def top_k_edge_mask(combined: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask keeping each row's and each column's top-k entries.

    An entry survives if it is in its row's top-k *or* its column's
    top-k — the union keeps both sides' best options alive.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    n, m = combined.shape
    mask = np.zeros((n, m), dtype=bool)
    if n == 0 or m == 0:
        return mask
    k_row = min(k, m)
    # argpartition puts the k largest (by -value) first, unordered.
    row_top = np.argpartition(-combined, k_row - 1, axis=1)[:, :k_row]
    mask[np.arange(n)[:, np.newaxis], row_top] = True
    k_col = min(k, n)
    col_top = np.argpartition(-combined, k_col - 1, axis=0)[:k_col, :]
    mask[col_top, np.arange(m)[np.newaxis, :]] = True
    return mask


@register_solver("pruned-greedy")
class PrunedGreedySolver(Solver):
    """Greedy restricted to the top-k pruned candidate set.

    Parameters
    ----------
    k:
        Candidate-list length per worker and per task.  Larger k means
        better quality and more work; k >= max(capacity, replication)
        is the sensible floor.
    """

    def __init__(self, k: int = 10) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self.k = k

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        combined = problem.benefits.combined
        # Memoized on the problem so repeated solves (and the sharded
        # solver's boundary refinement) share one pruning pass; duck
        # problems without the cache fall back to a direct computation.
        top_k = getattr(problem, "top_k_candidates", None)
        if top_k is not None:
            mask = top_k(self.k)
        else:
            mask = top_k_edge_mask(combined, self.k)
        caps_w = problem.worker_capacities().copy()
        caps_t = problem.task_capacities().copy()
        rows, cols = np.nonzero(mask & (combined > 0))
        order = np.argsort(-combined[rows, cols], kind="stable")
        chosen: list[tuple[int, int]] = []
        for position in order:
            i = int(rows[position])
            j = int(cols[position])
            if caps_w[i] > 0 and caps_t[j] > 0:
                caps_w[i] -= 1
                caps_t[j] -= 1
                chosen.append((i, j))
        return self._finish(problem, chosen)
