"""Baseline solvers the paper's evaluation compares against.

* **quality-only** — optimizes the requester side alone (the prior-work
  position the abstract criticizes: workers as interchangeable
  executors).  Implemented as flow-optimal on the requester matrix.
* **worker-only** — the symmetric extreme: optimize worker welfare and
  ignore quality.
* **random** — uniformly random feasible edges with positive combined
  benefit; the "no intelligence" floor.
* **round-robin** — tasks take turns picking their best remaining
  worker; the simplest "fair-ish" heuristic a platform might ship.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.matching.b_matching import max_weight_b_matching
from repro.utils.rng import SeedLike, as_rng


def _single_side_solve(
    problem: MBAProblem, side_matrix: np.ndarray
) -> list[tuple[int, int]]:
    edges, _total = max_weight_b_matching(
        side_matrix,
        problem.worker_capacities(),
        problem.task_capacities(),
    )
    return edges


@register_solver("quality-only")
class QualityOnlySolver(Solver):
    """Flow-optimal on the requester benefit matrix alone (λ = 1)."""

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        return self._finish(
            problem, _single_side_solve(problem, problem.benefits.requester)
        )


@register_solver("worker-only")
class WorkerOnlySolver(Solver):
    """Flow-optimal on the worker benefit matrix alone (λ = 0)."""

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        return self._finish(
            problem, _single_side_solve(problem, problem.benefits.worker)
        )


@register_solver("random")
class RandomSolver(Solver):
    """Random feasible edges among positive-combined-benefit candidates."""

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        rng = as_rng(seed)
        caps_w = problem.worker_capacities().copy()
        caps_t = problem.task_capacities().copy()
        combined = problem.benefits.combined
        candidates = [
            (i, j)
            for i in range(problem.n_workers)
            if caps_w[i] > 0
            for j in range(problem.n_tasks)
            if caps_t[j] > 0 and combined[i, j] > 0
        ]
        rng.shuffle(candidates)
        edges: list[tuple[int, int]] = []
        for i, j in candidates:
            if caps_w[i] > 0 and caps_t[j] > 0:
                caps_w[i] -= 1
                caps_t[j] -= 1
                edges.append((i, j))
        return self._finish(problem, edges)


@register_solver("round-robin")
class RoundRobinSolver(Solver):
    """Tasks take turns claiming their best remaining worker.

    Each pass over the tasks gives every task (with quota left) one
    pick: the available worker with the highest combined benefit on a
    positive edge.  Passes repeat until nothing can be claimed.
    """

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        caps_w = problem.worker_capacities().copy()
        caps_t = problem.task_capacities().copy()
        combined = problem.benefits.combined
        taken: set[tuple[int, int]] = set()
        edges: list[tuple[int, int]] = []
        progressed = True
        while progressed:
            progressed = False
            for j in range(problem.n_tasks):
                if caps_t[j] <= 0:
                    continue
                best_i = -1
                best_score = 0.0
                for i in range(problem.n_workers):
                    if caps_w[i] <= 0 or (i, j) in taken:
                        continue
                    score = float(combined[i, j])
                    if score > best_score:
                        best_score = score
                        best_i = i
                if best_i >= 0:
                    caps_w[best_i] -= 1
                    caps_t[j] -= 1
                    taken.add((best_i, j))
                    edges.append((best_i, j))
                    progressed = True
        return self._finish(problem, edges)
