"""Batched online assignment: micro-batching between online and offline.

Real platforms rarely decide one worker at a time; they buffer arrivals
for a short window and solve the window *optimally* against the
remaining task quota.  That is this solver: workers arrive in batches
(from a :class:`~repro.market.arrivals.BatchArrivals`-style process),
and each batch is assigned by maximum-weight b-matching against the
quota the previous batches left behind.

Batch size interpolates the online/offline spectrum:

* batch 1  ≈ online greedy (one worker, locally optimal);
* batch ≥ |W| = the offline flow optimum.

Experiment F9 sweeps the batch size and shows the competitive-ratio
gap closing — the operational argument for micro-batching.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import MBAProblem
from repro.core.solvers.base import Solver, register_solver
from repro.errors import ValidationError
from repro.market.arrivals import ArrivalProcess, PoissonArrivals
from repro.matching.b_matching import max_weight_b_matching
from repro.utils.rng import SeedLike, as_rng


@register_solver("online-batch")
class OnlineBatchSolver(Solver):
    """Optimal per-batch assignment against remaining quota.

    Parameters
    ----------
    batch_size:
        Number of arrivals buffered before solving.
    arrivals:
        Arrival-order process (default Poisson/random order).
    """

    def __init__(
        self,
        batch_size: int = 10,
        arrivals: ArrivalProcess | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValidationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.batch_size = batch_size
        self.arrivals = arrivals if arrivals is not None else PoissonArrivals()

    def solve(self, problem: MBAProblem, seed: SeedLike = None) -> Assignment:
        rng = as_rng(seed)
        order = [
            i
            for i in self.arrivals.order(problem.n_workers, rng)
            if problem.is_worker_active(i)
        ]
        quota = problem.task_capacities().astype(int).copy()
        capacities = problem.worker_capacities()
        combined = problem.benefits.combined
        edges: list[tuple[int, int]] = []

        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            batch_caps = np.array([capacities[i] for i in batch], dtype=int)
            if batch_caps.sum() == 0 or quota.sum() == 0:
                continue
            weights = combined[np.ix_(batch, range(problem.n_tasks))]
            batch_edges, _total = max_weight_b_matching(
                weights, batch_caps, quota
            )
            for row, j in batch_edges:
                i = batch[row]
                quota[j] -= 1
                edges.append((i, j))
        return self._finish(problem, edges)
