"""Objective functions over edge sets.

Two views of "how good is this assignment":

* :class:`LinearObjective` — the combined benefit decomposes over
  edges.  Exact for the linear combiner; for egalitarian/Nash the total
  is still exact (computed from side totals) but the *marginal* value
  of an edge depends on the current set.
* :class:`CoverageObjective` — the realistic quality model: a task's
  requester-side value is its payment times the committee quality under
  the knows/guesses model
  (:func:`repro.crowd.quality.knowledge_coverage_quality`), which is
  **monotone submodular** in the assigned worker set and whose
  singleton value coincides with the linear surrogate.  Together with
  the additive worker part, feasible sets form a partition matroid and
  lazy greedy earns its 1/2 guarantee.

Both expose ``value(edges)`` and ``marginal(edges, new_edge)`` — the
two operations every solver needs.

Why not optimize majority-vote accuracy directly?  It is *not*
submodular: with a fair-coin tie break, growing a committee from odd to
even size gains ~nothing while even to odd gains a lot, so marginal
gains oscillate and greedy has no guarantee.  The knows/guesses
coverage quality is the standard submodular planning surrogate; the
simulator still realizes answers and scores them with true
majority-vote aggregation, and experiment F10 quantifies the gap
between planned (coverage) and realized (majority-vote) quality.
"""

from __future__ import annotations

import abc

from repro.core.problem import MBAProblem
from repro.crowd.quality import knowledge_coverage_quality
from repro.errors import ValidationError
from repro.types import Edge


class Objective(abc.ABC):
    """Set function over assignment edges."""

    def __init__(self, problem: MBAProblem) -> None:
        self.problem = problem

    @abc.abstractmethod
    def value(self, edges: list[Edge]) -> float:
        """Objective value of a whole edge set."""

    def marginal(self, edges: list[Edge], new_edge: Edge) -> float:
        """Gain from adding ``new_edge`` to ``edges``.

        Default implementation is the difference of two ``value`` calls;
        subclasses override with incremental formulas where available.
        """
        if new_edge in edges:
            raise ValidationError(f"edge {new_edge} already present")
        return self.value(list(edges) + [new_edge]) - self.value(edges)


class LinearObjective(Objective):
    """Combined benefit from the problem's combiner over side totals.

    For the linear combiner this is additive in edges and ``marginal``
    is a single matrix lookup.
    """

    def value(self, edges: list[Edge]) -> float:
        return self.problem.benefits.combined_total(edges)

    def marginal(self, edges: list[Edge], new_edge: Edge) -> float:
        if new_edge in edges:
            raise ValidationError(f"edge {new_edge} already present")
        if self.problem.combiner.decomposes_over_edges:
            i, j = new_edge
            return float(self.problem.benefits.combined[i, j])
        return super().marginal(edges, new_edge)


class CoverageObjective(Objective):
    """Submodular quality + linear worker benefit.

    ``value(S) = lam * sum_t pay_t * Q(S_t)
               + (1 - lam) * sum_(i,j) in S workerBenefit[i, j]``

    where ``Q`` is the knows/guesses coverage quality of the worker set
    assigned to each task.  The requester part is monotone submodular
    per task; the worker part is additive (and may be negative), so the
    whole objective is submodular over the partition-matroid feasible
    sets, and non-monotone only through the worker part.
    """

    def __init__(self, problem: MBAProblem, lam: float = 0.5) -> None:
        super().__init__(problem)
        if not 0.0 <= lam <= 1.0:
            raise ValidationError(f"lam must lie in [0, 1], got {lam}")
        self.lam = lam
        self._accuracy = problem.market.accuracy_matrix()
        self._payments = problem.market.task_payments()

    def task_quality(self, task_index: int, worker_indices: list[int]) -> float:
        """Normalized committee quality in [0, 1) for one task."""
        accuracies = [self._accuracy[i, task_index] for i in worker_indices]
        return knowledge_coverage_quality(accuracies)

    def value(self, edges: list[Edge]) -> float:
        by_task: dict[int, list[int]] = {}
        worker_part = 0.0
        worker_matrix = self.problem.benefits.worker
        for worker_index, task_index in edges:
            by_task.setdefault(task_index, []).append(worker_index)
            worker_part += float(worker_matrix[worker_index, task_index])
        requester_part = sum(
            float(self._payments[task_index])
            * self.task_quality(task_index, worker_indices)
            for task_index, worker_indices in by_task.items()
        )
        return self.lam * requester_part + (1.0 - self.lam) * worker_part

    def marginal(self, edges: list[Edge], new_edge: Edge) -> float:
        """Incremental: only the affected task's quality is recomputed."""
        if new_edge in edges:
            raise ValidationError(f"edge {new_edge} already present")
        worker_index, task_index = new_edge
        committee = [i for i, j in edges if j == task_index]
        before = self.task_quality(task_index, committee)
        after = self.task_quality(task_index, committee + [worker_index])
        requester_gain = float(self._payments[task_index]) * (after - before)
        worker_gain = float(
            self.problem.benefits.worker[worker_index, task_index]
        )
        return self.lam * requester_gain + (1.0 - self.lam) * worker_gain
