"""The MBA (mutual benefit aware) task-assignment problem instance.

An :class:`MBAProblem` bundles a market snapshot with the benefit
models and the combiner, materializes the benefit matrices once, and
offers feasibility checks.  Solvers take an ``MBAProblem`` and return
an :class:`repro.core.assignment.Assignment`.
"""

from __future__ import annotations

import numpy as np

from repro.benefit.base import BenefitModel
from repro.benefit.matrices import BenefitMatrices, build_benefit_matrices
from repro.benefit.mutual import LinearCombiner, MutualCombiner
from repro.errors import InfeasibleError, ValidationError
from repro.market.market import LaborMarket
from repro.matching.hopcroft_karp import hopcroft_karp


class MBAProblem:
    """One assignment round's full problem statement.

    Parameters
    ----------
    market:
        The market snapshot (only *active* workers are assignable).
    combiner:
        Mutual-benefit combiner; defaults to λ=0.5 linear.
    requester_model / worker_model:
        Side benefit models; library defaults when omitted.
    """

    def __init__(
        self,
        market: LaborMarket,
        combiner: MutualCombiner | None = None,
        requester_model: BenefitModel | None = None,
        worker_model: BenefitModel | None = None,
    ) -> None:
        if market.n_workers == 0:
            raise ValidationError("market has no workers")
        if market.n_tasks == 0:
            raise ValidationError("market has no tasks")
        self.market = market
        self.combiner = combiner if combiner is not None else LinearCombiner(0.5)
        self.benefits: BenefitMatrices = build_benefit_matrices(
            market,
            combiner=self.combiner,
            requester_model=requester_model,
            worker_model=worker_model,
        )
        self._active = np.array([w.active for w in market.workers], dtype=bool)
        self._candidate_masks: dict[int, np.ndarray] = {}
        # Memo slot for repro.core.solvers.state.problem_fingerprint:
        # the benefit matrices are immutable for the problem's
        # lifetime, so its content hash is too.
        self._fingerprint: bytes | None = None

    # -- candidate pruning ----------------------------------------------

    def top_k_candidates(self, k: int) -> np.ndarray:
        """Memoized top-``k`` candidate-edge mask (row ∪ column union).

        The benefit matrices are immutable for the lifetime of a
        problem, so the pruning mask is a pure function of ``k`` — but
        the pruned solver and the sharded solver's boundary-refinement
        pass both need it, and recomputing the double ``argpartition``
        per call dominates their runtime at scale.  Cached per ``k``;
        callers must treat the returned mask as read-only.
        """
        mask = self._candidate_masks.get(k)
        if mask is None:
            from repro.core.solvers.pruned import top_k_edge_mask

            mask = top_k_edge_mask(self.benefits.combined, k)
            mask.setflags(write=False)
            self._candidate_masks[k] = mask
        return mask

    # -- capacities ------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return self.market.n_workers

    @property
    def n_tasks(self) -> int:
        return self.market.n_tasks

    def worker_capacities(self) -> np.ndarray:
        """Capacities with inactive workers zeroed out."""
        caps = self.market.worker_capacities().copy()
        caps[~self._active] = 0
        return caps

    def task_capacities(self) -> np.ndarray:
        return self.market.task_replications()

    def is_worker_active(self, worker_index: int) -> bool:
        return bool(self._active[worker_index])

    # -- feasibility -----------------------------------------------------

    def max_assignable(self) -> int:
        """Maximum number of (worker, task) pairs any assignment can have.

        Computed by maximum-cardinality matching on the
        capacity-expanded graph restricted to positive-combined-benefit
        edges; useful for sanity-checking replication demands.
        """
        caps_w = self.worker_capacities()
        caps_t = self.task_capacities()
        left_slots: list[int] = []
        for i in range(self.n_workers):
            left_slots.extend([i] * int(caps_w[i]))
        right_slots: list[int] = []
        for j in range(self.n_tasks):
            right_slots.extend([j] * int(caps_t[j]))
        if not left_slots or not right_slots:
            return 0
        right_of_task: dict[int, list[int]] = {}
        for slot, j in enumerate(right_slots):
            right_of_task.setdefault(j, []).append(slot)
        positive = self.benefits.combined > 0
        adjacency = [
            [
                slot
                for j in range(self.n_tasks)
                if positive[i, j]
                for slot in right_of_task.get(j, [])
            ]
            for i in left_slots
        ]
        size, _left, _right = hopcroft_karp(
            len(left_slots), len(right_slots), adjacency
        )
        return size

    def require_nonempty_feasible(self) -> None:
        """Raise :class:`InfeasibleError` if no positive edge exists."""
        caps_w = self.worker_capacities()
        caps_t = self.task_capacities()
        usable = (
            (self.benefits.combined > 0)
            & (caps_w[:, np.newaxis] > 0)
            & (caps_t[np.newaxis, :] > 0)
        )
        if not usable.any():
            raise InfeasibleError(
                "no edge with positive combined benefit between an active "
                "worker with capacity and a task with replication quota"
            )

    def __repr__(self) -> str:
        return (
            f"MBAProblem(workers={self.n_workers}, tasks={self.n_tasks}, "
            f"combiner={self.combiner!r})"
        )
