"""The assignment result object.

An :class:`Assignment` is an immutable set of (worker_index,
task_index) edges validated against its problem: capacities respected,
no duplicate edges, indices in range.  It carries per-side benefit
accounting so experiments never recompute totals inconsistently.
"""

from __future__ import annotations

from collections import Counter

from repro.core.problem import MBAProblem
from repro.errors import ValidationError


class Assignment:
    """A validated assignment for one :class:`MBAProblem`.

    Attributes
    ----------
    edges:
        Sorted tuple of (worker_index, task_index) pairs.
    solver_name:
        Which solver produced it (for reporting).
    """

    def __init__(
        self,
        problem: MBAProblem,
        edges: list[tuple[int, int]],
        solver_name: str = "unknown",
    ) -> None:
        self.problem = problem
        self.edges = tuple(sorted(edges))
        self.solver_name = solver_name
        self._validate()

    def _validate(self) -> None:
        problem = self.problem
        if len(set(self.edges)) != len(self.edges):
            duplicates = [e for e, c in Counter(self.edges).items() if c > 1]
            raise ValidationError(f"duplicate edges in assignment: {duplicates}")
        worker_load: Counter[int] = Counter()
        task_load: Counter[int] = Counter()
        for worker_index, task_index in self.edges:
            if not 0 <= worker_index < problem.n_workers:
                raise ValidationError(
                    f"worker index {worker_index} outside market"
                )
            if not 0 <= task_index < problem.n_tasks:
                raise ValidationError(f"task index {task_index} outside market")
            if not problem.is_worker_active(worker_index):
                raise ValidationError(
                    f"worker index {worker_index} is inactive"
                )
            worker_load[worker_index] += 1
            task_load[task_index] += 1
        capacities = problem.worker_capacities()
        for worker_index, load in worker_load.items():
            if load > capacities[worker_index]:
                raise ValidationError(
                    f"worker index {worker_index} assigned {load} tasks, "
                    f"capacity {capacities[worker_index]}"
                )
        replications = problem.task_capacities()
        for task_index, load in task_load.items():
            if load > replications[task_index]:
                raise ValidationError(
                    f"task index {task_index} assigned {load} workers, "
                    f"replication {replications[task_index]}"
                )

    # -- accounting ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.edges)

    def requester_total(self) -> float:
        req, _wrk = self.problem.benefits.side_totals(list(self.edges))
        return req

    def worker_total(self) -> float:
        _req, wrk = self.problem.benefits.side_totals(list(self.edges))
        return wrk

    def combined_total(self) -> float:
        """Value under the problem's combiner (exact, not the surrogate)."""
        return self.problem.benefits.combined_total(list(self.edges))

    def per_worker_benefit(self) -> dict[int, float]:
        """Worker-side benefit received by each *assigned* worker index."""
        worker_matrix = self.problem.benefits.worker
        totals: dict[int, float] = {}
        for worker_index, task_index in self.edges:
            totals[worker_index] = totals.get(worker_index, 0.0) + float(
                worker_matrix[worker_index, task_index]
            )
        return totals

    def workers_per_task(self) -> dict[int, list[int]]:
        """``{task_index: [worker_index, ...]}`` for assigned tasks."""
        by_task: dict[int, list[int]] = {}
        for worker_index, task_index in self.edges:
            by_task.setdefault(task_index, []).append(worker_index)
        return by_task

    def tasks_per_worker(self) -> dict[int, list[int]]:
        by_worker: dict[int, list[int]] = {}
        for worker_index, task_index in self.edges:
            by_worker.setdefault(worker_index, []).append(task_index)
        return by_worker

    def coverage(self) -> float:
        """Fraction of total replication demand that was filled."""
        demand = int(self.problem.task_capacities().sum())
        return len(self.edges) / demand if demand else 0.0

    def __repr__(self) -> str:
        return (
            f"Assignment(solver={self.solver_name!r}, edges={len(self.edges)}, "
            f"combined={self.combined_total():.4f})"
        )
