"""Span-attributed sampling profiler with collapsed-stack output.

A background daemon thread periodically snapshots the profiled
thread's Python stack via ``sys._current_frames()`` and attributes
each sample to the *currently open obs span path* (the tracer's live
span stack), so a flamegraph of a traced run reads as
``bench.case;stream.dispatch;<python frames...>`` — the span layer
tells you *which stage* was hot, the frame layer tells you *which
code*.

Output is the standard collapsed-stack format (one
``frame;frame;... count`` line per distinct stack), which every
flamegraph renderer understands and which diffs cleanly in review.

Cost model: sampling is O(stack depth) once per ``interval`` seconds
regardless of how fast the workload runs — the workload itself is
never instrumented, so overhead stays bounded by
``sample cost / interval`` (measured < 2% at the default 5 ms
interval on the quick bench; see docs/observability.md).  Samples are
wall-time measurements of the host: profiler output is **never** part
of determinism comparisons.

Layering: stdlib + utils/errors only, like the rest of ``repro.obs``
(R301).
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

from repro.errors import ValidationError
from repro.obs.tracer import Tracer
from repro.utils.atomic import atomic_write_text

#: Default seconds between samples (200 Hz).
DEFAULT_INTERVAL = 0.005

#: Python frames deeper than this are truncated (the span path already
#: carries the context the tail would repeat).
_MAX_FRAMES = 64


def _frame_label(frame) -> str:
    """``module.function`` label for one frame, short and stable."""
    code = frame.f_code
    module = Path(code.co_filename).stem
    return f"{module}.{code.co_name}"


class SpanProfiler:
    """Samples one thread, attributing stacks to open obs spans.

    Use as a context manager around the region to profile::

        profiler = SpanProfiler(tracer=tracer, interval=0.005)
        with profiler:
            run_workload()
        profiler.write("profile.collapsed")

    ``tracer`` is optional — without one the span-path prefix is
    empty and the output is a plain Python flamegraph.  The profiled
    thread is the one that calls :meth:`start` (or enters the context
    manager); the sampling thread is a daemon, so a crashed workload
    never hangs on profiler shutdown.
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        interval = float(interval)
        if interval <= 0.0:
            raise ValidationError(
                f"profiler interval must be positive seconds, got "
                f"{interval}"
            )
        self.tracer = tracer
        self.interval = interval
        #: (span path tuple, frame tuple) -> sample count.
        self.samples: dict[tuple[tuple[str, ...], tuple[str, ...]], int] = {}
        self.n_samples = 0
        self._target_thread_id: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "SpanProfiler":
        """Begin sampling the calling thread."""
        if self._thread is not None:
            raise ValidationError("profiler is already running")
        self._target_thread_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-span-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (idempotent); joins the sampler thread."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self.n_samples == 0:
            # A workload faster than one interval would otherwise
            # produce an empty profile; one synchronous sample of the
            # target thread (here: the caller's own stack) keeps the
            # artifact non-empty and honest about how little ran.
            self._sample()

    def __enter__(self) -> "SpanProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling -----------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        frame = sys._current_frames().get(self._target_thread_id)
        if frame is None:
            return
        frames: list[str] = []
        while frame is not None and len(frames) < _MAX_FRAMES:
            frames.append(_frame_label(frame))
            frame = frame.f_back
        frames.reverse()
        span_path: tuple[str, ...] = ()
        tracer = self.tracer
        if tracer is not None:
            # The traced thread mutates the stack concurrently; copy
            # first and tolerate a record index racing past the end.
            stack = list(tracer._stack)
            names = []
            for index in stack:
                if 0 <= index < len(tracer.spans):
                    names.append(tracer.spans[index].name)
            span_path = tuple(names)
        key = (span_path, tuple(frames))
        self.samples[key] = self.samples.get(key, 0) + 1
        self.n_samples += 1

    # -- output -------------------------------------------------------

    def collapsed(self) -> list[str]:
        """Collapsed-stack lines, heaviest stack first (count-desc,
        then lexicographic for a deterministic layout)."""
        rows = []
        for (span_path, frames), count in self.samples.items():
            stack = ";".join(span_path + frames)
            rows.append((count, stack))
        rows.sort(key=lambda row: (-row[0], row[1]))
        return [f"{stack} {count}" for count, stack in rows]

    def span_totals(self) -> dict[str, int]:
        """Samples per span path (dotted), heaviest paths included —
        the quick 'where did the time go' view."""
        totals: dict[str, int] = {}
        for (span_path, _frames), count in self.samples.items():
            label = ".".join(span_path) if span_path else "(no span)"
            totals[label] = totals.get(label, 0) + count
        return totals

    def write(self, path: str | Path) -> Path:
        """Write the collapsed-stack file (atomic)."""
        return atomic_write_text(
            Path(path), "\n".join(self.collapsed()) + "\n"
        )
