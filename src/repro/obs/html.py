"""Self-contained HTML dashboard for exported traces.

``python -m repro obs report`` renders one trace (optionally with a
diff against a baseline trace) into a single HTML file with **no
external fetches** — styles are inline, charts are inline SVG, and
there is no JavaScript at all, so the file opens identically from a
laptop, a CI artifact store, or an air-gapped archive.  Hover detail
rides on native ``title`` tooltips.

Four views:

* **summary tiles** — tag, span count, wall time, round count;
* **per-round timeline** — one stacked bar per round, segmented by
  stage (assign / simulate / aggregate / …), widths proportional to
  duration;
* **flame view** — every span as a rect positioned by ``start`` and
  sized by ``duration``, rows by ``depth``, built straight from the
  flat index/parent/depth records;
* **sparklines** — per-round series (round duration, per-stage
  durations) plus the counter/gauge/histogram totals table;
* **windowed telemetry** — when the trace carries a
  ``repro-obs-timeseries/1`` payload, one sparkline per series charted
  at its SLO-relevant aggregate (counter rates, gauge last, sample
  p95);
* **diff table** — when a baseline is supplied, the side-by-side
  span/counter comparison with regressions flagged by icon + label.

Colors follow the repo's chart conventions: categorical hues are
assigned to stage names in fixed first-appearance order (never
cycled); past eight distinct names everything folds into a muted
"other".  Light and dark palettes are both explicit (the dark steps
are re-stepped hues, not an automatic inversion) and switch on
``prefers-color-scheme``.
"""

from __future__ import annotations

from html import escape

from repro.obs.diff import TraceDiff, _fmt_ratio, span_stats
from repro.obs.export import TraceData
from repro.obs.timeseries import TimeseriesStore

#: Categorical slots (light / dark), fixed assignment order.
_SERIES_LIGHT = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
_SERIES_DARK = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)
_OTHER = "#898781"

_FLAME_SPAN_CAP = 2000

_STYLE = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --critical: #d03b3b;
%(light_series)s
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --critical: #d03b3b;
%(dark_series)s
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --grid: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255, 255, 255, 0.10);
  --critical: #d03b3b;
%(dark_series)s
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 10px; }
.viz-root .subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.viz-root section {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 16px;
  margin-bottom: 16px;
}
.viz-root .tiles { display: flex; gap: 16px; flex-wrap: wrap; }
.viz-root .tile { min-width: 120px; }
.viz-root .tile .value { font-size: 24px; }
.viz-root .tile .label {
  color: var(--text-secondary); font-size: 12px;
}
.viz-root .legend {
  display: flex; gap: 14px; flex-wrap: wrap;
  font-size: 12px; color: var(--text-secondary); margin: 6px 0 10px;
}
.viz-root .legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: baseline;
}
.viz-root .lane { display: flex; align-items: center; margin: 3px 0; }
.viz-root .lane .lane-label {
  width: 70px; font-size: 12px; color: var(--text-secondary);
  font-variant-numeric: tabular-nums;
}
.viz-root .lane .lane-total {
  width: 90px; font-size: 12px; color: var(--text-secondary);
  text-align: right; font-variant-numeric: tabular-nums;
}
.viz-root .lane .bar {
  flex: 1; display: flex; height: 16px;
}
.viz-root .lane .seg {
  height: 16px; border-radius: 4px; margin-right: 2px;
}
.viz-root table {
  border-collapse: collapse; font-size: 13px; width: 100%%;
}
.viz-root th {
  text-align: left; color: var(--text-secondary); font-weight: 600;
  border-bottom: 1px solid var(--baseline); padding: 4px 10px 4px 0;
}
.viz-root td {
  border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
  font-variant-numeric: tabular-nums;
}
.viz-root td.num, .viz-root th.num { text-align: right; }
.viz-root .regressed { color: var(--critical); font-weight: 600; }
.viz-root .spark-row { display: flex; align-items: center; gap: 12px; }
.viz-root .spark-row .spark-label {
  width: 180px; font-size: 12px; color: var(--text-secondary);
}
.viz-root .spark-row .spark-last {
  width: 90px; font-size: 12px; text-align: right;
  font-variant-numeric: tabular-nums;
}
.viz-root .note { color: var(--text-muted); font-size: 12px; }
.viz-root svg text {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
}
"""


def _series_vars(palette: tuple[str, ...], indent: str) -> str:
    return "\n".join(
        f"{indent}--series-{slot + 1}: {color};"
        for slot, color in enumerate(palette)
    )


def _slot_color(name: str, order: dict[str, int]) -> str:
    """CSS color for a series name; fixed first-appearance slots,
    folding to the muted 'other' past the eighth distinct name."""
    slot = order.setdefault(name, len(order))
    if slot >= len(_SERIES_LIGHT):
        return _OTHER
    return f"var(--series-{slot + 1})"


def _tile(label: str, value: str) -> str:
    return (
        '<div class="tile"><div class="value">'
        f"{escape(value)}</div>"
        f'<div class="label">{escape(label)}</div></div>'
    )


def _round_rows(
    trace: TraceData,
) -> list[tuple[object, float, list[tuple[str, float]]]]:
    """(round tag, duration, ordered (stage, duration) list) per round."""
    children: dict[int, list] = {}
    for span in trace.spans:
        if span.parent is not None:
            children.setdefault(span.parent, []).append(span)
    rows = []
    for span in trace.spans:
        if span.name != "round" or span.open:
            continue
        stages: list[tuple[str, float]] = []
        for child in children.get(span.index, []):
            if not child.open:
                stages.append((child.name, child.duration))
        rows.append((span.tags.get("index", "?"), span.duration, stages))
    return rows


def _legend(names: list[str], order: dict[str, int]) -> str:
    if len(names) < 2:
        return ""
    items = "".join(
        '<span><span class="swatch" style="background:'
        f'{_slot_color(name, order)}"></span>{escape(name)}</span>'
        for name in names
    )
    return f'<div class="legend">{items}</div>'


def _timeline_section(trace: TraceData, order: dict[str, int]) -> str:
    rounds = _round_rows(trace)
    body: list[str]
    if not rounds:
        body = ['<p class="note">no round spans in this trace</p>']
    else:
        longest = max(duration for _tag, duration, _stages in rounds)
        longest = longest if longest > 0 else 1.0
        stage_names: list[str] = []
        for _tag, _duration, stages in rounds:
            for name, _time in stages:
                if name not in stage_names:
                    stage_names.append(name)
        for name in stage_names:
            _slot_color(name, order)  # pin slots in stage order
        body = [_legend(stage_names, order)]
        for tag, duration, stages in rounds:
            segments = []
            accounted = 0.0
            for name, stage_duration in stages:
                accounted += stage_duration
                width = 100.0 * stage_duration / longest
                tip = f"round {tag} {name}: {stage_duration:.4f}s"
                segments.append(
                    f'<div class="seg" title="{escape(tip)}" '
                    f'style="width:{width:.2f}%;background:'
                    f'{_slot_color(name, order)}"></div>'
                )
            remainder = max(0.0, duration - accounted)
            if remainder > 0:
                width = 100.0 * remainder / longest
                tip = f"round {tag} (self): {remainder:.4f}s"
                segments.append(
                    f'<div class="seg" title="{escape(tip)}" '
                    f'style="width:{width:.2f}%;background:var(--grid)">'
                    "</div>"
                )
            body.append(
                f'<div class="lane"><div class="lane-label">'
                f"{escape(str(tag))}</div>"
                f'<div class="bar">{"".join(segments)}</div>'
                f'<div class="lane-total">{duration:.4f}s</div></div>'
            )
    return (
        '<section id="timeline"><h2>Per-round timeline</h2>'
        + "".join(body)
        + "</section>"
    )


def _flame_section(trace: TraceData, order: dict[str, int]) -> str:
    closed = [span for span in trace.spans if not span.open]
    if not closed:
        return (
            '<section id="flame"><h2>Flame view</h2>'
            '<p class="note">no closed spans</p></section>'
        )
    spans = sorted(closed, key=lambda s: -s.duration)[:_FLAME_SPAN_CAP]
    dropped = len(closed) - len(spans)
    spans.sort(key=lambda s: s.index)
    extent = max(s.start + s.duration for s in spans)
    extent = extent if extent > 0 else 1.0
    depth = max(s.depth for s in spans)
    width, row = 1000.0, 18
    height = (depth + 1) * row
    rects = []
    for span in spans:
        x = width * span.start / extent
        w = max(1.0, width * span.duration / extent)
        y = span.depth * row
        tags = ", ".join(
            f"{key}={value}" for key, value in span.tags.items()
        )
        tip = f"{span.name}: {span.duration:.4f}s"
        if tags:
            tip += f" [{tags}]"
        label = ""
        if w > 60:
            label = (
                f'<text x="{x + 4:.1f}" y="{y + 12}" font-size="11" '
                f'fill="var(--text-primary)">{escape(span.name)}</text>'
            )
        rects.append(
            f'<g><rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
            f'height="{row - 2}" rx="3" '
            f'fill="{_slot_color(span.name, order)}">'
            f"<title>{escape(tip)}</title></rect>{label}</g>"
        )
    note = (
        f'<p class="note">showing the {len(spans)} widest spans; '
        f"{dropped} narrower span(s) omitted</p>"
        if dropped > 0
        else ""
    )
    return (
        '<section id="flame"><h2>Flame view</h2>'
        f'<svg viewBox="0 0 {width:.0f} {height}" width="100%" '
        f'height="{height}" role="img" '
        'aria-label="span flame view">'
        + "".join(rects)
        + f"</svg>{note}</section>"
    )


def _sparkline(values: list[float], color: str) -> str:
    width, height, pad = 260.0, 28.0, 2.0
    if len(values) == 1:
        values = values * 2
    low, high = min(values), max(values)
    spread = (high - low) if high > low else 1.0
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (height - 2 * pad) * (v - low) / spread:.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg viewBox="0 0 {width:.0f} {height:.0f}" '
        f'width="{width:.0f}" height="{height:.0f}">'
        f'<polyline points="{points}" fill="none" stroke="{color}" '
        'stroke-width="2" stroke-linejoin="round" '
        'stroke-linecap="round"/></svg>'
    )


def _round_series(
    trace: TraceData,
) -> list[tuple[str, list[float]]]:
    """Per-round numeric series: round duration, then each stage's."""
    rounds = _round_rows(trace)
    if not rounds:
        return []
    series: list[tuple[str, list[float]]] = [
        ("round total (s)", [duration for _t, duration, _s in rounds])
    ]
    stage_names: list[str] = []
    for _tag, _duration, stages in rounds:
        for name, _time in stages:
            if name not in stage_names:
                stage_names.append(name)
    for name in stage_names:
        per_round = []
        for _tag, _duration, stages in rounds:
            per_round.append(
                sum(t for n, t in stages if n == name)
            )
        series.append((f"{name} (s)", per_round))
    return series


def _counters_section(trace: TraceData, order: dict[str, int]) -> str:
    parts = ['<section id="counters"><h2>Counters and round series</h2>']
    series = _round_series(trace)
    if series:
        for label, values in series:
            stage = label.removesuffix(" (s)")
            color = (
                "var(--text-muted)"
                if stage == "round total"
                else _slot_color(stage, order)
            )
            parts.append(
                '<div class="spark-row">'
                f'<div class="spark-label">{escape(label)}</div>'
                f"{_sparkline(values, color)}"
                f'<div class="spark-last">last {values[-1]:.4f}</div>'
                "</div>"
            )
    counters = trace.metrics.get("counters", {})
    gauges = trace.metrics.get("gauges", {})
    histograms = trace.metrics.get("histograms", {})
    if counters or gauges:
        rows = "".join(
            f"<tr><td>{escape(name)}</td><td>counter</td>"
            f'<td class="num">{counters[name]:g}</td></tr>'
            for name in sorted(counters)
        ) + "".join(
            f"<tr><td>{escape(name)}</td><td>gauge</td>"
            f'<td class="num">{gauges[name]:g}</td></tr>'
            for name in sorted(gauges)
        )
        parts.append(
            "<table><thead><tr><th>metric</th><th>kind</th>"
            '<th class="num">value</th></tr></thead>'
            f"<tbody>{rows}</tbody></table>"
        )
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            count = int(h.get("count", 0))
            mean = h.get("total", 0.0) / count if count else 0.0
            rows.append(
                f"<tr><td>{escape(name)}</td>"
                f'<td class="num">{count}</td>'
                f'<td class="num">{mean:.4g}</td>'
                f'<td class="num">{h.get("min", 0.0):.4g}</td>'
                f'<td class="num">{h.get("max", 0.0):.4g}</td></tr>'
            )
        parts.append(
            "<table><thead><tr><th>histogram</th>"
            '<th class="num">count</th><th class="num">mean</th>'
            '<th class="num">min</th><th class="num">max</th>'
            f'</tr></thead><tbody>{"".join(rows)}</tbody></table>'
        )
    if len(parts) == 1:
        parts.append('<p class="note">no metrics recorded</p>')
    parts.append("</section>")
    return "".join(parts)


#: Aggregate charted per series kind in the timeseries section; picked
#: to match the SLO rules (rates for counters, last for gauges, tail
#: latency for samples).
_TIMESERIES_AGGREGATE = {"counter": "rate", "gauge": "last", "sample": "p95"}


def _timeseries_section(trace: TraceData, order: dict[str, int]) -> str:
    """Sparkline-per-series view of the windowed telemetry payload.

    Series names come from the run's own scrape code, but the payload
    travels through user-editable JSONL — everything rendered from it
    is escaped like any other trace-derived string.
    """
    if trace.timeseries is None:
        return ""
    store = TimeseriesStore.from_dict(trace.timeseries)
    parts = [
        '<section id="timeseries"><h2>Windowed telemetry</h2>',
        f'<p class="note">window {store.window:g}s &#183; '
        f"{len(store.series_names())} series &#183; "
        f"{store.dropped} dropped write(s)</p>",
    ]
    drawn = 0
    for name in store.series_names():
        if not store.buckets(name):
            continue
        aggregate = _TIMESERIES_AGGREGATE[store.kind(name)]
        values = store.series_values(name, aggregate)
        finite = [v for v in values if v == v]
        if not finite:
            continue
        label = f"{name} ({aggregate})"
        parts.append(
            '<div class="spark-row">'
            f'<div class="spark-label">{escape(label)}</div>'
            f"{_sparkline(finite, _slot_color(name, order))}"
            f'<div class="spark-last">last {finite[-1]:.4g}</div>'
            "</div>"
        )
        drawn += 1
    if not drawn:
        parts.append('<p class="note">no windowed series recorded</p>')
    parts.append("</section>")
    return "".join(parts)


def _diff_section(diff: TraceDiff) -> str:
    rows = []
    for delta in diff.spans:
        verdict = (
            '<span class="regressed">&#9650; REGRESSED</span>'
            if delta.regressed
            else "ok"
        )
        rows.append(
            f"<tr><td>{escape(delta.name)}</td>"
            f'<td class="num">{delta.calls_a}</td>'
            f'<td class="num">{delta.calls_b}</td>'
            f'<td class="num">{delta.self_a:.4f}</td>'
            f'<td class="num">{delta.self_b:.4f}</td>'
            f'<td class="num">{escape(_fmt_ratio(delta.ratio).strip())}'
            f"</td><td>{verdict}</td></tr>"
        )
    counter_rows = "".join(
        f"<tr><td>{escape(c.name)}</td>"
        f'<td class="num">{c.value_a:g}</td>'
        f'<td class="num">{c.value_b:g}</td>'
        f'<td class="num">{c.delta:+g}</td></tr>'
        for c in diff.counters
        if c.delta != 0
    )
    counters_table = (
        "<h2>Counter drift</h2><table><thead><tr><th>counter</th>"
        f'<th class="num">{escape(diff.label_a)}</th>'
        f'<th class="num">{escape(diff.label_b)}</th>'
        f'<th class="num">&#916;</th></tr></thead>'
        f"<tbody>{counter_rows}</tbody></table>"
        if counter_rows
        else ""
    )
    verdict = (
        '<p class="note">no span regressions</p>'
        if diff.ok
        else (
            f'<p class="regressed">&#9650; {len(diff.regressions)} span '
            "regression(s) beyond threshold "
            f"{diff.threshold:.0%}</p>"
        )
    )
    return (
        '<section id="diff"><h2>Diff: '
        f"{escape(diff.label_a)} &#8594; {escape(diff.label_b)}</h2>"
        f"{verdict}"
        "<table><thead><tr><th>span</th>"
        f'<th class="num">calls {escape(diff.label_a)}</th>'
        f'<th class="num">calls {escape(diff.label_b)}</th>'
        f'<th class="num">self {escape(diff.label_a)} (s)</th>'
        f'<th class="num">self {escape(diff.label_b)} (s)</th>'
        '<th class="num">ratio</th><th>verdict</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>'
        f"{counters_table}</section>"
    )


def render_html(
    trace: TraceData,
    title: str = "repro trace report",
    diff: TraceDiff | None = None,
) -> str:
    """Render one trace (plus an optional diff) to a full HTML page."""
    order: dict[str, int] = {}
    stats = span_stats(trace)
    wall = sum(
        span.duration
        for span in trace.spans
        if span.parent is None and not span.open
    )
    n_rounds = sum(
        1 for span in trace.spans if span.name == "round"
    )
    tiles = [
        _tile("tag", trace.tag or "-"),
        _tile("spans", str(len(trace.spans))),
        _tile("span names", str(len(stats))),
        _tile("wall time (s)", f"{wall:.4f}"),
        _tile("rounds", str(n_rounds)),
    ]
    summary = (
        '<section id="summary"><div class="tiles">'
        + "".join(tiles)
        + "</div></section>"
    )
    style = _STYLE % {
        "light_series": _series_vars(_SERIES_LIGHT, "  "),
        "dark_series": _series_vars(_SERIES_DARK, "    "),
    }
    sections = [
        summary,
        _timeline_section(trace, order),
        _flame_section(trace, order),
        _counters_section(trace, order),
    ]
    timeseries = _timeseries_section(trace, order)
    if timeseries:
        sections.append(timeseries)
    if diff is not None:
        sections.append(_diff_section(diff))
    rounds_note = (
        f"{n_rounds} round(s)" if n_rounds else "no round spans"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" '
        'content="width=device-width, initial-scale=1">'
        f"<title>{escape(title)}</title>"
        f"<style>{style}</style></head>"
        '<body class="viz-root">'
        f"<h1>{escape(title)}</h1>"
        f'<p class="subtitle">trace tag {escape(trace.tag or "-")!s} '
        f"&#183; {len(trace.spans)} spans &#183; {rounds_note}</p>"
        + "".join(sections)
        + "</body></html>\n"
    )
