"""JSONL trace export with a stable, validated schema.

A trace file is newline-delimited JSON with four event types::

    {"type": "header", "schema": "repro-obs-trace/1", "tag": ...}
    {"type": "span", "index": 0, "parent": null, "depth": 0,
     "name": "round", "tags": {...}, "start": 0.0, "duration": 0.01}
    ...
    {"type": "timeseries", "schema": "repro-obs-timeseries/1",
     "window": 1.0, "series": {...}}          # optional, at most one
    {"type": "metrics", "counters": {...}, "gauges": {...},
     "histograms": {...}}

The header is always the first line and the metrics event the last;
runs that scraped live telemetry carry one versioned ``timeseries``
event just before it (see :mod:`repro.obs.timeseries`).
Span events appear in span-*enter* order, which is deterministic for a
seeded run.  Only the fields named in :data:`WALL_TIME_FIELDS` are
host measurements; every other field of every event is identical
between two runs of the same seeded workload, which is what
:func:`deterministic_events` strips down to (and what the determinism
tests compare).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ValidationError
from repro.obs.timeseries import TIMESERIES_SCHEMA
from repro.obs.tracer import SpanRecord, Tracer
from repro.utils.atomic import atomic_write_text

TRACE_SCHEMA = "repro-obs-trace/1"

#: Span fields that measure the host, not the workload.  Excluded from
#: determinism comparisons; everything else must be bit-identical for
#: identical seeds.
WALL_TIME_FIELDS = ("start", "duration")

_SPAN_KEYS = frozenset(
    ("type", "index", "parent", "depth", "name", "tags", "start", "duration")
)


@dataclass
class TraceData:
    """A parsed trace file: header + spans + final metric snapshot.

    ``timeseries`` holds the optional windowed-telemetry payload
    (schema ``repro-obs-timeseries/1``) for traces whose run scraped
    one; ``None`` for traces without live telemetry.
    """

    header: dict
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    timeseries: dict | None = None

    @property
    def tag(self) -> str:
        return str(self.header.get("tag", ""))


def write_trace(tracer: Tracer, path: str | Path, tag: str = "run") -> Path:
    """Dump ``tracer`` to a JSONL trace file; returns the path.

    Open spans are a bug in the instrumented code (a leaked context) —
    they are refused rather than silently exported with NaN durations.
    """
    leaked = tracer.open_spans
    if leaked:
        names = ", ".join(sorted({span.name for span in leaked}))
        raise ValidationError(
            f"cannot export a trace with {len(leaked)} open span(s) "
            f"({names}): exit every span context before exporting"
        )
    path = Path(path)
    lines = [
        json.dumps(
            {
                "type": "header",
                "schema": TRACE_SCHEMA,
                "tag": tag,
                "n_spans": len(tracer.spans),
            },
            sort_keys=True,
        )
    ]
    for span in tracer.spans:
        lines.append(
            json.dumps({"type": "span", **span.to_dict()}, sort_keys=True)
        )
    if tracer.timeseries is not None:
        # One versioned event, always *before* the final metrics line
        # so the metrics event stays the trace terminator readers key
        # truncation detection on.
        lines.append(
            json.dumps(
                {"type": "timeseries", **tracer.timeseries.to_dict()},
                sort_keys=True,
            )
        )
    lines.append(
        json.dumps(
            {"type": "metrics", **tracer.metrics.snapshot()}, sort_keys=True
        )
    )
    return atomic_write_text(path, "\n".join(lines) + "\n")


def _parse_line(line_number: int, line: str) -> dict:
    try:
        event = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValidationError(
            f"trace line {line_number} is not valid JSON: {error}"
        ) from None
    if not isinstance(event, dict) or "type" not in event:
        raise ValidationError(
            f"trace line {line_number} is not an event object with a "
            "'type' field"
        )
    return event


def _validate_span(line_number: int, event: dict) -> SpanRecord:
    missing = sorted(_SPAN_KEYS - set(event))
    unknown = sorted(set(event) - _SPAN_KEYS)
    if missing or unknown:
        detail = []
        if missing:
            detail.append(f"missing {', '.join(missing)}")
        if unknown:
            detail.append(f"unknown {', '.join(unknown)}")
        raise ValidationError(
            f"trace line {line_number}: malformed span event "
            f"({'; '.join(detail)})"
        )
    if not isinstance(event["tags"], dict):
        raise ValidationError(
            f"trace line {line_number}: span tags must be an object"
        )
    try:
        return SpanRecord.from_dict(event)
    except (TypeError, ValueError) as error:
        raise ValidationError(
            f"trace line {line_number}: malformed span event ({error})"
        ) from None


def read_trace(path: str | Path) -> TraceData:
    """Parse and validate a JSONL trace file.

    Raises :class:`~repro.errors.ValidationError` on a missing file, a
    wrong/old schema, malformed events, or a structurally inconsistent
    span list (bad parent references / non-sequential indices).
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"trace file not found: {path}")
    lines = [
        line for line in path.read_text().splitlines() if line.strip()
    ]
    if not lines:
        raise ValidationError(f"{path} is empty, not a trace")
    header = _parse_line(1, lines[0])
    if header.get("type") != "header":
        raise ValidationError(
            f"{path}: first line must be the header event, got "
            f"type={header.get('type')!r}"
        )
    schema = header.get("schema")
    if schema != TRACE_SCHEMA:
        if isinstance(schema, str) and schema.startswith(
            "repro-obs-trace/"
        ):
            # A versioned trace from a different writer: name the
            # mismatch precisely — "upgrade the reader" is a different
            # fix than "this is not a trace at all".
            raise ValidationError(
                f"{path} uses trace schema {schema!r}, but this reader "
                f"understands {TRACE_SCHEMA!r} — re-export the trace or "
                "upgrade repro to a version that reads it"
            )
        raise ValidationError(
            f"{path} is not a readable trace (schema "
            f"{schema!r}, expected {TRACE_SCHEMA!r})"
        )
    spans: list[SpanRecord] = []
    metrics: dict = {}
    timeseries: dict | None = None
    saw_metrics = False
    for line_number, line in enumerate(lines[1:], start=2):
        event = _parse_line(line_number, line)
        kind = event["type"]
        if saw_metrics:
            raise ValidationError(
                f"trace line {line_number}: events after the final "
                "metrics event"
            )
        if kind == "span":
            spans.append(_validate_span(line_number, event))
        elif kind == "timeseries":
            if timeseries is not None:
                raise ValidationError(
                    f"trace line {line_number}: duplicate timeseries "
                    "event"
                )
            schema = event.get("schema")
            if schema != TIMESERIES_SCHEMA:
                raise ValidationError(
                    f"trace line {line_number}: timeseries schema "
                    f"{schema!r}, expected {TIMESERIES_SCHEMA!r}"
                )
            timeseries = {
                key: value
                for key, value in event.items()
                if key != "type"
            }
        elif kind == "metrics":
            metrics = {
                key: value
                for key, value in event.items()
                if key != "type"
            }
            saw_metrics = True
        else:
            raise ValidationError(
                f"trace line {line_number}: unknown event type {kind!r}"
            )
    if not saw_metrics:
        raise ValidationError(
            f"{path}: truncated trace — no final metrics event"
        )
    for position, span in enumerate(spans):
        if span.index != position:
            raise ValidationError(
                f"{path}: span indices must be sequential, got "
                f"{span.index} at position {position}"
            )
        if span.parent is not None and not 0 <= span.parent < span.index:
            raise ValidationError(
                f"{path}: span {span.index} references parent "
                f"{span.parent}, which is not an earlier span"
            )
    return TraceData(
        header=header,
        spans=spans,
        metrics=metrics,
        timeseries=timeseries,
    )


def deterministic_events(trace: TraceData) -> list[dict]:
    """The trace's span events with wall-time fields stripped.

    Two runs of the same seeded workload must produce identical lists
    here — this is the exact comparison the determinism tests (and any
    trace-diff tooling) use.
    """
    events = []
    for span in trace.spans:
        event = span.to_dict()
        for fieldname in WALL_TIME_FIELDS:
            event.pop(fieldname, None)
        events.append(event)
    return events
