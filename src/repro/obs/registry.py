"""Append-only on-disk registry of exported traces.

A trace file observes one run; the registry makes runs *comparable*
across time.  It is a directory (``.repro-runs/`` by default) holding

* one archived copy of every registered trace, stored under its
  content digest (``<run_id>.jsonl``), and
* ``index.jsonl`` — one JSON line per registration, append-only, in
  registration order.

Identity is the trace's *content*: ``run_id`` is a SHA-256 prefix of
the file bytes, so registering the same trace twice is idempotent (the
existing entry is returned, nothing is appended) and an archived trace
can never drift from its index entry.  Metadata (tag, seed, scenario,
git revision) travels in the index, not in the trace file, so the
archived bytes stay exactly what the run exported.

Lookup accepts three spellings, tried in this order by
:func:`resolve_trace`: an existing file path, a ``run_id`` prefix, and
a tag (resolving to the most recently registered run of that tag).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ValidationError
from repro.obs.export import TraceData, read_trace, write_trace
from repro.utils.atomic import atomic_write_bytes, atomic_write_text

DEFAULT_REGISTRY_ROOT = ".repro-runs"
REGISTRY_SCHEMA = "repro-obs-registry/1"
_INDEX_NAME = "index.jsonl"
_DIGEST_CHARS = 16


@dataclass(frozen=True)
class RunEntry:
    """One registered run: where its trace lives plus its metadata."""

    run_id: str
    tag: str
    n_spans: int
    seed: int | None = None
    scenario: str | None = None
    git_rev: str | None = None
    registered_at: float = 0.0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": REGISTRY_SCHEMA,
            "run_id": self.run_id,
            "tag": self.tag,
            "n_spans": self.n_spans,
            "seed": self.seed,
            "scenario": self.scenario,
            "git_rev": self.git_rev,
            "registered_at": self.registered_at,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunEntry":
        return cls(
            run_id=str(payload["run_id"]),
            tag=str(payload["tag"]),
            n_spans=int(payload["n_spans"]),
            seed=(
                int(payload["seed"])
                if payload.get("seed") is not None
                else None
            ),
            scenario=(
                str(payload["scenario"])
                if payload.get("scenario") is not None
                else None
            ),
            git_rev=(
                str(payload["git_rev"])
                if payload.get("git_rev") is not None
                else None
            ),
            registered_at=float(payload.get("registered_at", 0.0)),
            extra=dict(payload.get("extra", {})),
        )


def content_id(payload: object, chars: int = _DIGEST_CHARS) -> str:
    """Durable content-addressed id for a JSON-serializable payload.

    Canonical JSON (sorted keys, no whitespace variance) hashed with
    SHA-256, truncated like the registry's trace ``run_id``s.  Used to
    tag generated scenarios (see :mod:`repro.spec.lattice`) with ids
    that are stable across processes, hosts, and insertion order.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:chars]


def current_git_rev(cwd: str | Path | None = None) -> str | None:
    """The short HEAD revision, or ``None`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    rev = completed.stdout.strip()
    return rev or None


class RunRegistry:
    """The on-disk run store.  Cheap to construct; lazy on disk."""

    def __init__(self, root: str | Path = DEFAULT_REGISTRY_ROOT) -> None:
        self.root = Path(root)

    @property
    def index_path(self) -> Path:
        return self.root / _INDEX_NAME

    def trace_path(self, entry: RunEntry | str) -> Path:
        """Where the archived trace for ``entry`` lives."""
        run_id = entry.run_id if isinstance(entry, RunEntry) else entry
        return self.root / f"{run_id}.jsonl"

    # -- registration ----------------------------------------------------

    def register(
        self,
        trace_path: str | Path,
        tag: str | None = None,
        seed: int | None = None,
        scenario: str | None = None,
        git_rev: str | None = None,
        **extra: object,
    ) -> RunEntry:
        """Archive a trace file and append its index entry.

        The trace is validated (:func:`repro.obs.export.read_trace`)
        before anything touches the registry, so the archive never
        holds an unreadable file.  Registering a byte-identical trace
        again returns the existing entry untouched — the index is
        append-only and never gains duplicates.
        """
        trace_path = Path(trace_path)
        trace = read_trace(trace_path)
        content = trace_path.read_bytes()
        run_id = hashlib.sha256(content).hexdigest()[:_DIGEST_CHARS]
        existing = self._by_id(run_id)
        if existing is not None:
            return existing
        entry = RunEntry(
            run_id=run_id,
            tag=tag if tag is not None else trace.tag,
            n_spans=len(trace.spans),
            seed=seed,
            scenario=scenario,
            git_rev=git_rev,
            registered_at=time.time(),
            extra=dict(extra),
        )
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(self.trace_path(entry), content)
        # The index append stays a plain append: a single short write
        # of one line is the correct primitive for an append-only log,
        # and rewriting the whole index per registration would race
        # concurrent registrars.
        with self.index_path.open("a") as handle:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        return entry

    def register_tracer(
        self,
        tracer,
        tag: str = "run",
        seed: int | None = None,
        scenario: str | None = None,
        git_rev: str | None = None,
        **extra: object,
    ) -> RunEntry:
        """Export a live tracer straight into the registry.

        Writes the trace to a scratch file inside the registry root,
        registers it (renaming it to its digest), and removes the
        scratch copy.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        scratch = self.root / f".incoming-{id(tracer)}.jsonl"
        try:
            write_trace(tracer, scratch, tag=tag)
            return self.register(
                scratch,
                tag=tag,
                seed=seed,
                scenario=scenario,
                git_rev=git_rev,
                **extra,
            )
        finally:
            scratch.unlink(missing_ok=True)

    # -- lookup ----------------------------------------------------------

    def entries(self, tag: str | None = None) -> list[RunEntry]:
        """All index entries in registration order (optionally by tag)."""
        if not self.index_path.exists():
            return []
        entries = []
        for line_number, line in enumerate(
            self.index_path.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
                entry = RunEntry.from_dict(payload)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                raise ValidationError(
                    f"{self.index_path} line {line_number} is not a valid "
                    "registry entry — the index is corrupt"
                ) from None
            if payload.get("schema") != REGISTRY_SCHEMA:
                raise ValidationError(
                    f"{self.index_path} line {line_number} has schema "
                    f"{payload.get('schema')!r}, expected "
                    f"{REGISTRY_SCHEMA!r}"
                )
            if tag is None or entry.tag == tag:
                entries.append(entry)
        return entries

    def latest(self, tag: str | None = None) -> RunEntry | None:
        """The most recently registered entry (optionally by tag)."""
        entries = self.entries(tag=tag)
        return entries[-1] if entries else None

    def get(self, ref: str) -> RunEntry:
        """Entry whose ``run_id`` starts with ``ref`` (unambiguously)."""
        matches = [
            entry
            for entry in self.entries()
            if entry.run_id.startswith(ref)
        ]
        if not matches:
            raise ValidationError(
                f"no registered run matches id {ref!r} "
                f"(registry: {self.root})"
            )
        if len(matches) > 1:
            ids = ", ".join(entry.run_id for entry in matches)
            raise ValidationError(
                f"run id {ref!r} is ambiguous: matches {ids}"
            )
        return matches[0]

    def _by_id(self, run_id: str) -> RunEntry | None:
        for entry in self.entries():
            if entry.run_id == run_id:
                return entry
        return None

    def read(self, entry: RunEntry | str) -> TraceData:
        """Parse the archived trace behind an entry (or run id)."""
        path = self.trace_path(entry)
        if not path.exists():
            run_id = entry.run_id if isinstance(entry, RunEntry) else entry
            raise ValidationError(
                f"registry index lists run {run_id} but its trace file "
                f"is missing: {path}"
            )
        return read_trace(path)

    # -- maintenance -----------------------------------------------------

    def prune(self, keep: int, tag: str | None = None) -> list[RunEntry]:
        """Drop all but the newest ``keep`` runs (optionally one tag).

        Removes both the archived trace files and their index lines
        (the index is rewritten preserving order) and returns the
        entries that were removed.  Entries of other tags are never
        touched when ``tag`` is given.
        """
        if keep < 0:
            raise ValidationError(f"keep must be >= 0, got {keep}")
        all_entries = self.entries()
        candidates = [
            entry
            for entry in all_entries
            if tag is None or entry.tag == tag
        ]
        doomed = candidates[: max(0, len(candidates) - keep)]
        if not doomed:
            return []
        doomed_ids = {entry.run_id for entry in doomed}
        survivors = [
            entry
            for entry in all_entries
            if entry.run_id not in doomed_ids
        ]
        lines = [
            json.dumps(entry.to_dict(), sort_keys=True)
            for entry in survivors
        ]
        atomic_write_text(
            self.index_path, "\n".join(lines) + "\n" if lines else ""
        )
        for entry in doomed:
            self.trace_path(entry).unlink(missing_ok=True)
        return doomed


def resolve_trace(
    ref: str, registry: RunRegistry | None = None
) -> tuple[Path, str]:
    """Turn a CLI trace reference into ``(path, label)``.

    ``ref`` may be a trace file path, a registered run-id prefix, or a
    tag (most recent run of that tag wins).  The label names what was
    matched, for diff/report output.
    """
    path = Path(ref)
    if path.exists():
        return path, str(ref)
    registry = registry if registry is not None else RunRegistry()
    entries = registry.entries()
    by_prefix = [e for e in entries if e.run_id.startswith(ref)]
    if len(by_prefix) == 1:
        entry = by_prefix[0]
        return registry.trace_path(entry), f"{entry.tag}@{entry.run_id}"
    if len(by_prefix) > 1:
        ids = ", ".join(entry.run_id for entry in by_prefix)
        raise ValidationError(f"run id {ref!r} is ambiguous: matches {ids}")
    latest = registry.latest(tag=ref)
    if latest is not None:
        return (
            registry.trace_path(latest),
            f"{latest.tag}@{latest.run_id}",
        )
    raise ValidationError(
        f"{ref!r} is neither a trace file, a registered run id, nor a "
        f"registered tag (registry: {registry.root})"
    )
