"""Windowed, ring-buffered time-series metric store.

The flat :class:`~repro.obs.metrics.Metrics` registry answers *how
much work did the whole run do*; this store answers *how did the run
look over time* — the live-health view a platform operator steers on
(throughput per window, worker-benefit dispersion per window,
participation per window).  Producers scrape into it on the
**simulated** clock (event times in the stream dispatcher, round
indices in the engine), so every recorded value is deterministic for a
seeded run and safe to feed SLO evaluation.

Three series kinds, mirroring the flat registry:

* **counter** — per-window sums; rates derive as ``sum / window``;
* **gauge** — per-window last value plus a mean over writes;
* **sample** — exact per-window sample reservoirs for quantile
  queries (p50/p95/p99 are interpolated exactly, never sketched).

Windows are aligned: a write at time ``t`` lands in bucket
``floor(t / window)``.  Each series keeps at most ``capacity`` of its
most recent windows — recording into a window that has already been
evicted is counted in :attr:`TimeseriesStore.dropped` rather than
resurrecting history.

Serialization (:meth:`to_dict` / :meth:`from_dict`) is canonical:
sample reservoirs are emitted sorted, so two stores holding the same
multiset of observations serialize identically regardless of the
order merges happened in — this is what makes the parallel-sweep
scrape bit-identical to a serial one.

Layering: utils/errors only, like the rest of ``repro.obs`` (R301).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ValidationError

#: Schema tag for the timeseries event embedded in trace files.
TIMESERIES_SCHEMA = "repro-obs-timeseries/1"

#: The three series kinds and the aggregates each answers.
SERIES_KINDS = ("counter", "gauge", "sample")

_COUNTER_AGGREGATES = ("sum", "rate")
_GAUGE_AGGREGATES = ("last", "mean")
_SAMPLE_AGGREGATES = ("count", "mean", "min", "max")


def exact_percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending sample list.

    Matches ``numpy.percentile``'s default (linear) method exactly so
    the stream reservoir and the windowed store agree bit-for-bit;
    implemented locally because ``repro.obs`` sits below the layers
    that are allowed to assume numpy-heavy call sites.
    """
    if not 0.0 <= q <= 100.0:
        raise ValidationError(f"percentile must lie in [0, 100], got {q}")
    n = len(sorted_values)
    if n == 0:
        return float("nan")
    if n == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (n - 1)
    low = int(math.floor(rank))
    high = min(low + 1, n - 1)
    fraction = rank - low
    return float(
        sorted_values[low]
        + fraction * (sorted_values[high] - sorted_values[low])
    )


class _Series:
    """One named series: a kind plus its retained window payloads."""

    __slots__ = ("kind", "windows", "newest", "oldest")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        #: bucket -> payload.  counter: float sum; gauge:
        #: [last, total, n]; sample: list of floats (insertion order).
        self.windows: dict[int, object] = {}
        #: Highest bucket ever written, and a lower bound on the
        #: lowest retained bucket — kept so the write path never scans
        #: the whole ring (``max(windows)`` per write is measurable in
        #: the dispatcher's per-window flush).
        self.newest: int | None = None
        self.oldest = 0


class TimeseriesStore:
    """Aligned-window metric store with per-series ring eviction."""

    def __init__(self, window: float = 1.0, capacity: int = 512) -> None:
        window = float(window)
        if not math.isfinite(window) or window <= 0.0:
            raise ValidationError(
                f"timeseries window must be a positive finite number of "
                f"simulated seconds, got {window}"
            )
        capacity = int(capacity)
        if capacity < 1:
            raise ValidationError(
                f"timeseries capacity must be >= 1 window, got {capacity}"
            )
        self.window = window
        self.capacity = capacity
        #: Writes refused because their window was already evicted.
        self.dropped = 0
        self._series: dict[str, _Series] = {}

    # -- recording ----------------------------------------------------

    def bucket(self, t: float) -> int:
        """The aligned window index a write at time ``t`` lands in."""
        return int(math.floor(float(t) / self.window))

    def bucket_time(self, bucket: int) -> float:
        """A representative time inside ``bucket`` (its midpoint).

        Producers that count in *logical* steps rather than simulated
        seconds (the engine's round index) use this to address bucket
        ``i`` without caring what the configured window width is.
        """
        return (bucket + 0.5) * self.window

    def _window(self, name: str, kind: str, t: float):
        """``(windows, bucket)`` for a write, creating the series and
        the window slot as needed; None when the write lands in a
        window the ring already evicted."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = _Series(kind)
        elif series.kind != kind:
            raise ValidationError(
                f"series {name!r} is a {series.kind}, not a {kind}"
            )
        bucket = self.bucket(t)
        windows = series.windows
        if bucket not in windows:
            newest = series.newest
            if newest is None:
                series.newest = bucket
                series.oldest = bucket
            elif bucket <= newest - self.capacity:
                self.dropped += 1
                return None
            elif bucket > newest:
                series.newest = bucket
                horizon = bucket - self.capacity
                if series.oldest <= horizon:
                    # ``oldest`` is a lower bound, so walking it
                    # forward is O(evicted) for a monotone clock; a
                    # jump far past the ring falls back to one scan.
                    if horizon - series.oldest > len(windows):
                        for stale in [
                            b for b in windows if b <= horizon
                        ]:
                            del windows[stale]
                    else:
                        stale = series.oldest
                        while stale <= horizon:
                            windows.pop(stale, None)
                            stale += 1
                    series.oldest = horizon + 1
            elif bucket < series.oldest:
                series.oldest = bucket
            if kind == "counter":
                windows[bucket] = 0.0
            elif kind == "gauge":
                windows[bucket] = [0.0, 0.0, 0]
            else:
                windows[bucket] = []
        return windows, bucket

    def count(self, name: str, t: float, value: float = 1.0) -> None:
        """Add ``value`` to the counter series at time ``t``."""
        slot = self._window(name, "counter", t)
        if slot is None:
            return
        windows, bucket = slot
        windows[bucket] += float(value)

    def gauge(self, name: str, t: float, value: float) -> None:
        """Write a gauge value at time ``t`` (window keeps last + mean)."""
        slot = self._window(name, "gauge", t)
        if slot is None:
            return
        payload = slot[0][slot[1]]
        payload[0] = float(value)
        payload[1] += float(value)
        payload[2] += 1

    def observe(self, name: str, t: float, value: float) -> None:
        """Append a sample at time ``t`` (window keeps exact values)."""
        slot = self._window(name, "sample", t)
        if slot is None:
            return
        slot[0][slot[1]].append(float(value))

    def extend(self, name: str, t: float, values: Iterable[float]) -> None:
        """Append many samples at time ``t`` in one call.

        Batch form of :meth:`observe` for hot paths that buffer a
        window's worth of samples before flushing (the stream
        dispatcher's telemetry scrape); recorded order matches
        repeated ``observe`` calls.
        """
        slot = self._window(name, "sample", t)
        if slot is None:
            return
        slot[0][slot[1]].extend(float(v) for v in values)

    # -- queries ------------------------------------------------------

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def kind(self, name: str) -> str:
        series = self._series.get(name)
        if series is None:
            raise ValidationError(f"no series named {name!r}")
        return series.kind

    def buckets(self, name: str) -> list[int]:
        """Retained window indices of one series, ascending; empty
        list for a series that was never recorded."""
        series = self._series.get(name)
        if series is None:
            return []
        return sorted(series.windows)

    def value(self, name: str, bucket: int, aggregate: str) -> float:
        """One aggregate of one series window; NaN when the window (or
        the whole series) holds no data."""
        series = self._series.get(name)
        if series is None or bucket not in series.windows:
            return float("nan")
        payload = series.windows[bucket]
        if series.kind == "counter":
            if aggregate == "sum":
                return float(payload)
            if aggregate == "rate":
                return float(payload) / self.window
        elif series.kind == "gauge":
            if aggregate == "last":
                return float(payload[0])
            if aggregate == "mean":
                return payload[1] / payload[2] if payload[2] else float("nan")
        else:
            if aggregate == "count":
                return float(len(payload))
            if not payload:
                return float("nan")
            if aggregate == "mean":
                return float(sum(payload) / len(payload))
            if aggregate == "min":
                return float(min(payload))
            if aggregate == "max":
                return float(max(payload))
            if aggregate.startswith("p"):
                try:
                    q = float(aggregate[1:])
                except ValueError:
                    q = None
                if q is not None:
                    return exact_percentile(sorted(payload), q)
        raise ValidationError(
            f"aggregate {aggregate!r} does not apply to {series.kind} "
            f"series {name!r} (counters: {'/'.join(_COUNTER_AGGREGATES)}; "
            f"gauges: {'/'.join(_GAUGE_AGGREGATES)}; samples: "
            f"{'/'.join(_SAMPLE_AGGREGATES)} or pNN)"
        )

    def series_values(self, name: str, aggregate: str) -> list[float]:
        """``value(...)`` over every retained window, bucket-ascending."""
        return [
            self.value(name, bucket, aggregate)
            for bucket in self.buckets(name)
        ]

    # -- serialization and merge --------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-ready payload (samples sorted ascending)."""
        series_payload = {}
        for name in sorted(self._series):
            series = self._series[name]
            windows = {}
            for bucket in sorted(series.windows):
                payload = series.windows[bucket]
                if series.kind == "counter":
                    windows[str(bucket)] = float(payload)
                elif series.kind == "gauge":
                    windows[str(bucket)] = [
                        float(payload[0]),
                        float(payload[1]),
                        int(payload[2]),
                    ]
                else:
                    windows[str(bucket)] = sorted(payload)
            series_payload[name] = {
                "kind": series.kind,
                "windows": windows,
            }
        return {
            "schema": TIMESERIES_SCHEMA,
            "window": self.window,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "series": series_payload,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TimeseriesStore":
        schema = payload.get("schema")
        if schema != TIMESERIES_SCHEMA:
            raise ValidationError(
                f"not a timeseries payload (schema {schema!r}, expected "
                f"{TIMESERIES_SCHEMA!r})"
            )
        store = cls(
            window=payload.get("window", 1.0),
            capacity=payload.get("capacity", 512),
        )
        store.dropped = int(payload.get("dropped", 0))
        series_payload = payload.get("series", {})
        if not isinstance(series_payload, dict):
            raise ValidationError("timeseries 'series' must be an object")
        for name, body in series_payload.items():
            kind = body.get("kind")
            if kind not in SERIES_KINDS:
                raise ValidationError(
                    f"series {name!r} has unknown kind {kind!r}"
                )
            series = _Series(kind)
            for raw_bucket, window_payload in body.get(
                "windows", {}
            ).items():
                bucket = int(raw_bucket)
                if kind == "counter":
                    series.windows[bucket] = float(window_payload)
                elif kind == "gauge":
                    last, total, n = window_payload
                    series.windows[bucket] = [
                        float(last), float(total), int(n),
                    ]
                else:
                    series.windows[bucket] = [
                        float(v) for v in window_payload
                    ]
            if series.windows:
                series.newest = max(series.windows)
                series.oldest = min(series.windows)
            store._series[name] = series
        return store

    def merge(self, payload: "TimeseriesStore | dict") -> None:
        """Fold another store (or its :meth:`to_dict` payload) in.

        Counter windows add, gauge windows add their (total, n) and
        take the incoming last, sample windows concatenate.  Because
        serialization sorts samples and the scraped values are
        seed-deterministic, any merge order produces the same exported
        payload — the property the parallel-sweep tests pin.
        """
        other = (
            payload
            if isinstance(payload, TimeseriesStore)
            else TimeseriesStore.from_dict(payload)
        )
        if other.window != self.window:
            raise ValidationError(
                f"cannot merge timeseries with window {other.window} "
                f"into one with window {self.window}"
            )
        self.dropped += other.dropped
        for name, incoming in other._series.items():
            for bucket in sorted(incoming.windows):
                value = incoming.windows[bucket]
                if incoming.kind == "counter":
                    self.count(name, self.bucket_time(bucket), value)
                elif incoming.kind == "gauge":
                    slot = self._window(
                        name, "gauge", self.bucket_time(bucket)
                    )
                    if slot is None:
                        continue
                    payload_slot = slot[0][slot[1]]
                    payload_slot[0] = float(value[0])
                    payload_slot[1] += float(value[1])
                    payload_slot[2] += int(value[2])
                else:
                    for sample in value:
                        self.observe(
                            name, self.bucket_time(bucket), sample
                        )
