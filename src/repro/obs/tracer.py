"""Nestable wall-clock spans.

A :class:`Tracer` records a flat, ordered list of :class:`SpanRecord`
entries; nesting is encoded structurally (``parent``/``depth``) rather
than by building a tree, so export is a straight dump and replay tools
can reconstruct whatever view they need.  Span *identity* fields
(``index``, ``parent``, ``depth``, ``name``, ``tags``) are fully
deterministic for a seeded run; only the two wall-time fields
(``start``, ``duration``) vary between hosts — see
:data:`repro.obs.export.WALL_TIME_FIELDS`.

The tracer itself is cheap but not free; the free path lives in
:mod:`repro.obs` (module-level :func:`repro.obs.span` returns a shared
no-op context manager when tracing is disabled).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.obs.metrics import Metrics
from repro.obs.timeseries import TimeseriesStore


@dataclass
class SpanRecord:
    """One completed (or in-flight) span.

    ``duration`` is NaN while the span is still open; exporters refuse
    to write open spans (an open span means the instrumented code is
    still running — or leaked a context).
    """

    index: int
    parent: int | None
    depth: int
    name: str
    tags: dict[str, object] = field(default_factory=dict)
    #: Seconds since the tracer's origin (wall-time field).
    start: float = 0.0
    #: Seconds the span lasted (wall-time field; NaN while open).
    duration: float = float("nan")

    @property
    def open(self) -> bool:
        return math.isnan(self.duration)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "name": self.name,
            "tags": dict(self.tags),
            "start": self.start,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            index=int(payload["index"]),
            parent=(
                int(payload["parent"])
                if payload.get("parent") is not None
                else None
            ),
            depth=int(payload["depth"]),
            name=str(payload["name"]),
            tags=dict(payload.get("tags", {})),
            start=float(payload["start"]),
            duration=float(payload["duration"]),
        )


class _SpanContext:
    """The context manager :meth:`Tracer.span` hands out.

    Appends its record at *enter* (so indices follow enter order, which
    is deterministic) and stamps the duration at exit.  ``tag`` lets
    instrumented code attach facts discovered mid-span — e.g. which
    resilience tier finally delivered.
    """

    __slots__ = ("_tracer", "_record", "_t0")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record
        self._t0 = 0.0

    def tag(self, **tags: object) -> "_SpanContext":
        self._record.tags.update(tags)
        return self

    def __enter__(self) -> "_SpanContext":
        self._t0 = time.perf_counter()
        self._record.start = self._t0 - self._tracer._origin
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._record.duration = time.perf_counter() - self._t0
        if exc_type is not None and "error" not in self._record.tags:
            self._record.tags["error"] = exc_type.__name__
        self._tracer._pop(self._record.index)
        return False


class Tracer:
    """Span recorder plus a :class:`~repro.obs.metrics.Metrics` registry.

    One tracer covers one logical run; enable it globally through
    :func:`repro.obs.tracing` (or :func:`repro.obs.enable`) so library
    code picks it up without plumbing.

    ``sink`` is the live-streaming hook: a callable invoked with each
    :class:`SpanRecord` the moment that span *closes* (duration already
    stamped), so a long run can surface progress — per-round lines,
    tickers — while it is still running instead of only at export
    time.  The sink observes; it must not mutate the record.  Sink
    errors propagate (a broken progress printer should fail loudly,
    not silently skew what the user sees).
    """

    def __init__(self, sink=None) -> None:
        self.metrics = Metrics()
        self.spans: list[SpanRecord] = []
        #: Optional windowed time-series store; created lazily by
        #: :func:`repro.obs.timeseries_store` (or installed up front by
        #: whoever owns the run, e.g. the monitor CLI choosing the
        #: window width).  ``None`` means no live telemetry collected.
        self.timeseries: TimeseriesStore | None = None
        self.sink = sink
        self._stack: list[int] = []
        self._origin = time.perf_counter()

    def span(self, name: str, /, **tags: object) -> _SpanContext:
        """Open a nested span; use as a context manager.

        ``name`` is positional-only so ``name=...`` can be a tag.
        """
        index = len(self.spans)
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            index=index,
            parent=parent,
            depth=len(self._stack),
            name=name,
            tags=dict(tags),
        )
        self.spans.append(record)
        self._stack.append(index)
        return _SpanContext(self, record)

    def _pop(self, index: int) -> None:
        # Exiting out of order (a leaked inner span) unwinds to the
        # exiting span; the leaked spans keep their NaN duration and
        # the exporter reports them.
        while self._stack and self._stack[-1] != index:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self.sink is not None:
            self.sink(self.spans[index])

    @property
    def open_spans(self) -> list[SpanRecord]:
        """Spans entered but never exited (normally empty)."""
        return [record for record in self.spans if record.open]

    def adopt(
        self,
        spans: list[SpanRecord],
        snapshot: dict | None = None,
        timeseries: dict | None = None,
    ) -> None:
        """Merge spans (and a metrics snapshot) from another tracer.

        Used to fold worker-process traces back into the parent: the
        adopted spans are re-indexed after the existing ones, their
        roots are parented under the currently open span (if any), and
        their depths shift accordingly.  Counter/histogram snapshots
        accumulate; gauges take the adopted value.  ``timeseries`` is
        a :meth:`TimeseriesStore.to_dict` payload scraped in the
        worker; its windows fold into this tracer's store (created on
        first adoption if absent).
        """
        offset = len(self.spans)
        base_parent = self._stack[-1] if self._stack else None
        base_depth = len(self._stack)
        for record in spans:
            adopted = SpanRecord(
                index=record.index + offset,
                parent=(
                    record.parent + offset
                    if record.parent is not None
                    else base_parent
                ),
                depth=record.depth + base_depth,
                name=record.name,
                tags=dict(record.tags),
                start=record.start,
                duration=record.duration,
            )
            self.spans.append(adopted)
        if snapshot is not None:
            self.metrics.merge_snapshot(snapshot)
        if timeseries is not None:
            if self.timeseries is None:
                self.timeseries = TimeseriesStore.from_dict(timeseries)
            else:
                self.timeseries.merge(timeseries)
