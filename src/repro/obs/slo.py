"""Declarative SLOs with multi-window burn-rate alerting.

A :class:`SloRule` names one aggregate of one
:class:`~repro.obs.timeseries.TimeseriesStore` series and bounds it
(ceiling or floor).  Evaluation is the standard two-horizon burn-rate
scheme: at each window the monitor computes the fraction of recent
windows in breach over a *short* horizon (fast detection) and a *long*
horizon (sustained-problem confirmation), and drives a per-rule
``ok -> warn -> page`` state machine:

* **warn** — the short-horizon breach fraction reached ``warn_burn``;
* **page** — *both* horizons reached ``page_burn`` (a sustained
  breach, not a single bad window);
* recovery walks back down the same ladder as the fractions drop.

Every state *transition* emits an :class:`AlertEvent`; the JSONL alert
log (:func:`write_alert_log`) is the durable artifact a CI gate or an
operator reads.  Because the feeding store records on the simulated
clock, identical seeds produce identical alert logs.

The default catalogue (:func:`default_rules`) covers the operational
signals (latency p95/p99 ceilings, assignments/sec floor, drop-rate
ceiling) and the paper-grounded market-health signals: a per-window
worker-benefit Gini ceiling, a participation floor, and a
worker-starvation ceiling — the "platform slowly destroys its worker
pool" failure mode the mutual-benefit objective exists to prevent.

Layering: utils/errors only, like the rest of ``repro.obs`` (R301).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ValidationError
from repro.obs.timeseries import TimeseriesStore
from repro.utils.atomic import atomic_write_text

#: Schema tag of the JSONL alert log.
ALERT_SCHEMA = "repro-obs-alerts/1"

#: Alert severity ladder, mildest first.
ALERT_STATES = ("ok", "warn", "page")

#: Series names the producers scrape and the default catalogue reads.
LATENCY_SERIES = "stream.wait"
THROUGHPUT_SERIES = "stream.assigned"
DROP_SERIES = "stream.dropped"
GINI_SERIES = "market.benefit_gini"
PARTICIPATION_SERIES = "market.participation"
STARVATION_SERIES = "market.starvation"


@dataclass(frozen=True)
class SloRule:
    """One bounded aggregate of one timeseries."""

    name: str
    series: str
    aggregate: str
    #: ``"ceiling"`` (breach when value > threshold) or ``"floor"``
    #: (breach when value < threshold).
    bound: str
    threshold: float
    short_windows: int = 3
    long_windows: int = 6
    #: Short-horizon breach fraction that raises ``warn``.
    warn_burn: float = 0.5
    #: Breach fraction both horizons must reach to ``page``.
    page_burn: float = 0.75
    description: str = ""

    def __post_init__(self) -> None:
        if self.bound not in ("ceiling", "floor"):
            raise ValidationError(
                f"rule {self.name!r}: bound must be 'ceiling' or "
                f"'floor', got {self.bound!r}"
            )
        if not math.isfinite(self.threshold):
            raise ValidationError(
                f"rule {self.name!r}: threshold must be finite, got "
                f"{self.threshold}"
            )
        if self.short_windows < 1 or self.long_windows < 1:
            raise ValidationError(
                f"rule {self.name!r}: horizons must be >= 1 window"
            )
        if self.long_windows < self.short_windows:
            raise ValidationError(
                f"rule {self.name!r}: long horizon "
                f"({self.long_windows}) must cover the short one "
                f"({self.short_windows})"
            )
        for label, burn in (
            ("warn_burn", self.warn_burn),
            ("page_burn", self.page_burn),
        ):
            if not 0.0 < burn <= 1.0:
                raise ValidationError(
                    f"rule {self.name!r}: {label} must lie in (0, 1], "
                    f"got {burn}"
                )

    def breached(self, value: float) -> bool:
        """Whether one window value violates the bound (NaN never
        breaches — no data is not a breach)."""
        if math.isnan(value):
            return False
        if self.bound == "ceiling":
            return value > self.threshold
        return value < self.threshold

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "series": self.series,
            "aggregate": self.aggregate,
            "bound": self.bound,
            "threshold": self.threshold,
            "short_windows": self.short_windows,
            "long_windows": self.long_windows,
            "warn_burn": self.warn_burn,
            "page_burn": self.page_burn,
            "description": self.description,
        }


@dataclass(frozen=True)
class AlertEvent:
    """One state transition of one rule, at one evaluated window."""

    rule: str
    series: str
    bucket: int
    time: float
    #: New state after the transition.
    state: str
    previous: str
    short_burn: float
    long_burn: float
    #: The rule aggregate's value in the evaluated window.
    value: float
    threshold: float
    bound: str

    @property
    def severity(self) -> int:
        return ALERT_STATES.index(self.state)

    def to_dict(self) -> dict:
        return {
            "type": "alert",
            "rule": self.rule,
            "series": self.series,
            "bucket": self.bucket,
            "time": self.time,
            "state": self.state,
            "previous": self.previous,
            "short_burn": self.short_burn,
            "long_burn": self.long_burn,
            "value": self.value,
            "threshold": self.threshold,
            "bound": self.bound,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AlertEvent":
        return cls(
            rule=str(payload["rule"]),
            series=str(payload["series"]),
            bucket=int(payload["bucket"]),
            time=float(payload["time"]),
            state=str(payload["state"]),
            previous=str(payload["previous"]),
            short_burn=float(payload["short_burn"]),
            long_burn=float(payload["long_burn"]),
            value=float(payload["value"]),
            threshold=float(payload["threshold"]),
            bound=str(payload["bound"]),
        )


class SloMonitor:
    """Evaluates a rule set against a store, window by window."""

    def __init__(
        self, rules: tuple[SloRule, ...] | list[SloRule],
        store: TimeseriesStore,
    ) -> None:
        rules = tuple(rules)
        names = [rule.name for rule in rules]
        duplicates = sorted(
            {name for name in names if names.count(name) > 1}
        )
        if duplicates:
            raise ValidationError(
                f"duplicate SLO rule name(s): {', '.join(duplicates)}"
            )
        self.rules = rules
        self.store = store
        self.states: dict[str, str] = {
            rule.name: "ok" for rule in rules
        }
        self.events: list[AlertEvent] = []

    def evaluate(self, bucket: int) -> list[AlertEvent]:
        """Advance every rule's state machine to ``bucket``; returns
        the transitions this window caused (already appended to
        :attr:`events`)."""
        emitted: list[AlertEvent] = []
        for rule in self.rules:
            short = _burn_fraction(self.store, rule, bucket,
                                   rule.short_windows)
            long = _burn_fraction(self.store, rule, bucket,
                                  rule.long_windows)
            if math.isnan(short) and math.isnan(long):
                continue
            if (
                not math.isnan(short)
                and not math.isnan(long)
                and short >= rule.page_burn
                and long >= rule.page_burn
            ):
                target = "page"
            elif not math.isnan(short) and short >= rule.warn_burn:
                target = "warn"
            else:
                target = "ok"
            previous = self.states[rule.name]
            if target == previous:
                continue
            self.states[rule.name] = target
            event = AlertEvent(
                rule=rule.name,
                series=rule.series,
                bucket=bucket,
                time=self.store.bucket_time(bucket),
                state=target,
                previous=previous,
                short_burn=short,
                long_burn=long,
                value=self.store.value(rule.series, bucket,
                                       rule.aggregate),
                threshold=rule.threshold,
                bound=rule.bound,
            )
            self.events.append(event)
            emitted.append(event)
        return emitted

    def run(self) -> list[AlertEvent]:
        """Evaluate every retained window that any rule's series
        touches, in time order; returns all transitions."""
        buckets: set[int] = set()
        for rule in self.rules:
            buckets.update(self.store.buckets(rule.series))
        for bucket in sorted(buckets):
            self.evaluate(bucket)
        return self.events

    @property
    def paged(self) -> bool:
        """Whether any rule ever reached ``page``."""
        return any(event.state == "page" for event in self.events)

    @property
    def worst_state(self) -> str:
        worst = 0
        for event in self.events:
            worst = max(worst, event.severity)
        return ALERT_STATES[worst]


def _burn_fraction(
    store: TimeseriesStore, rule: SloRule, bucket: int, horizon: int
) -> float:
    """Breach fraction over the ``horizon`` windows ending at
    ``bucket``; NaN when no window in the horizon holds data.

    The denominator is the full horizon width, not the observed-window
    count: windows with no data count as healthy.  Dividing by observed
    windows would let the very first recorded window alone saturate
    both horizons (burn 1/1 = 1.0) and page on a cold start — a
    "sustained" verdict needs the horizon actually sustained.
    """
    observed = 0
    breached = 0
    for b in range(bucket - horizon + 1, bucket + 1):
        value = store.value(rule.series, b, rule.aggregate)
        if math.isnan(value):
            continue
        observed += 1
        if rule.breached(value):
            breached += 1
    if observed == 0:
        return float("nan")
    return breached / horizon


def default_rules(
    *,
    latency_p95: float | None = None,
    latency_p99: float | None = None,
    throughput_floor: float | None = None,
    drop_rate: float | None = None,
    gini_ceiling: float | None = None,
    participation_floor: float | None = None,
    starvation_ceiling: float | None = None,
    short_windows: int = 3,
    long_windows: int = 6,
    warn_burn: float = 0.5,
    page_burn: float = 0.75,
) -> tuple[SloRule, ...]:
    """The standard catalogue; rules with a ``None`` threshold are
    omitted, so callers enable exactly the signals they configure."""
    horizon = {
        "short_windows": short_windows,
        "long_windows": long_windows,
        "warn_burn": warn_burn,
        "page_burn": page_burn,
    }
    catalogue: list[SloRule] = []
    if latency_p95 is not None:
        catalogue.append(SloRule(
            name="latency-p95", series=LATENCY_SERIES, aggregate="p95",
            bound="ceiling", threshold=latency_p95,
            description="p95 time-to-assignment ceiling (simulated s)",
            **horizon,
        ))
    if latency_p99 is not None:
        catalogue.append(SloRule(
            name="latency-p99", series=LATENCY_SERIES, aggregate="p99",
            bound="ceiling", threshold=latency_p99,
            description="p99 time-to-assignment ceiling (simulated s)",
            **horizon,
        ))
    if throughput_floor is not None:
        catalogue.append(SloRule(
            name="throughput", series=THROUGHPUT_SERIES,
            aggregate="rate", bound="floor",
            threshold=throughput_floor,
            description="assignments per simulated second floor",
            **horizon,
        ))
    if drop_rate is not None:
        catalogue.append(SloRule(
            name="drop-rate", series=DROP_SERIES, aggregate="rate",
            bound="ceiling", threshold=drop_rate,
            description="backpressure drops per simulated second "
                        "ceiling",
            **horizon,
        ))
    if gini_ceiling is not None:
        catalogue.append(SloRule(
            name="benefit-gini", series=GINI_SERIES, aggregate="last",
            bound="ceiling", threshold=gini_ceiling,
            description="per-window worker-benefit Gini ceiling "
                        "(earnings dispersion)",
            **horizon,
        ))
    if participation_floor is not None:
        catalogue.append(SloRule(
            name="participation", series=PARTICIPATION_SERIES,
            aggregate="last", bound="floor",
            threshold=participation_floor,
            description="fraction of online workers assigned per "
                        "window floor",
            **horizon,
        ))
    if starvation_ceiling is not None:
        catalogue.append(SloRule(
            name="starvation", series=STARVATION_SERIES,
            aggregate="last", bound="ceiling",
            threshold=starvation_ceiling,
            description="fraction of online workers with no recent "
                        "assignment ceiling",
            **horizon,
        ))
    return tuple(catalogue)


def write_alert_log(
    events: list[AlertEvent], path: str | Path, tag: str = "run"
) -> Path:
    """Durable JSONL alert log: a header line then one line per
    transition, in emission order."""
    lines = [
        json.dumps(
            {
                "type": "header",
                "schema": ALERT_SCHEMA,
                "tag": tag,
                "n_alerts": len(events),
            },
            sort_keys=True,
        )
    ]
    lines.extend(
        json.dumps(event.to_dict(), sort_keys=True) for event in events
    )
    return atomic_write_text(Path(path), "\n".join(lines) + "\n")


def read_alert_log(path: str | Path) -> list[AlertEvent]:
    """Parse and validate a JSONL alert log."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"alert log not found: {path}")
    lines = [
        line for line in path.read_text().splitlines() if line.strip()
    ]
    if not lines:
        raise ValidationError(f"{path} is empty, not an alert log")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ValidationError(
            f"{path} line 1 is not valid JSON: {error}"
        ) from None
    if (
        not isinstance(header, dict)
        or header.get("type") != "header"
        or header.get("schema") != ALERT_SCHEMA
    ):
        raise ValidationError(
            f"{path} is not an alert log (expected a header with "
            f"schema {ALERT_SCHEMA!r})"
        )
    events = []
    for line_number, line in enumerate(lines[1:], start=2):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"{path} line {line_number} is not valid JSON: {error}"
            ) from None
        if not isinstance(payload, dict) or payload.get("type") != "alert":
            raise ValidationError(
                f"{path} line {line_number}: expected an alert event"
            )
        try:
            events.append(AlertEvent.from_dict(payload))
        except (KeyError, TypeError, ValueError) as error:
            raise ValidationError(
                f"{path} line {line_number}: malformed alert event "
                f"({error})"
            ) from None
    return events
