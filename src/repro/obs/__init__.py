"""repro.obs — tracing and metrics for instrumented runs.

Library code instruments itself through the module-level helpers::

    from repro import obs

    with obs.span("solve", solver="flow") as sp:
        assignment = solver.solve(problem)
        sp.tag(edges=len(assignment))
    obs.count("auction.bids", rounds)

All of them are **near-zero-cost no-ops until a tracer is enabled**:
``span`` returns one shared null context manager and the metric
helpers return immediately, so uninstrumented production runs pay one
global load and one ``is None`` test per call site.  Tests and the CLI
turn collection on around a region::

    with obs.tracing() as tracer:
        Simulation(scenario).run(seed=0)
    obs.write_trace(tracer, "run.jsonl")

Layering: this package sits directly above ``repro.utils``/``errors``
and imports nothing else, so every other layer — solvers included —
may import it freely (enforced by lint rule R301).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.diff import (
    DEFAULT_DIFF_THRESHOLD,
    DEFAULT_NOISE_FLOOR,
    CounterDelta,
    SpanDelta,
    SpanStat,
    TraceDiff,
    diff_traces,
    qualified_names,
    render_diff,
    round_stats,
    span_stats,
)
from repro.obs.export import (
    TRACE_SCHEMA,
    WALL_TIME_FIELDS,
    TraceData,
    deterministic_events,
    read_trace,
    write_trace,
)
from repro.obs.html import render_html
from repro.obs.metrics import HistogramSummary, Metrics, RunReport
from repro.obs.profile import DEFAULT_INTERVAL, SpanProfiler
from repro.obs.registry import (
    DEFAULT_REGISTRY_ROOT,
    RunEntry,
    RunRegistry,
    content_id,
    current_git_rev,
    resolve_trace,
)
from repro.obs.slo import (
    ALERT_SCHEMA,
    ALERT_STATES,
    AlertEvent,
    SloMonitor,
    SloRule,
    default_rules,
    read_alert_log,
    write_alert_log,
)
from repro.obs.summary import summarize
from repro.obs.timeseries import TIMESERIES_SCHEMA, TimeseriesStore
from repro.obs.tracer import SpanRecord, Tracer

__all__ = [
    "ALERT_SCHEMA",
    "ALERT_STATES",
    "DEFAULT_DIFF_THRESHOLD",
    "DEFAULT_INTERVAL",
    "DEFAULT_NOISE_FLOOR",
    "DEFAULT_REGISTRY_ROOT",
    "TIMESERIES_SCHEMA",
    "TRACE_SCHEMA",
    "WALL_TIME_FIELDS",
    "AlertEvent",
    "CounterDelta",
    "HistogramSummary",
    "Metrics",
    "RunEntry",
    "RunRegistry",
    "RunReport",
    "SloMonitor",
    "SloRule",
    "SpanDelta",
    "SpanProfiler",
    "SpanRecord",
    "SpanStat",
    "TimeseriesStore",
    "TraceData",
    "TraceDiff",
    "Tracer",
    "active",
    "content_id",
    "count",
    "current_git_rev",
    "default_rules",
    "deterministic_events",
    "diff_traces",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "observe",
    "observe_many",
    "qualified_names",
    "read_alert_log",
    "read_trace",
    "render_diff",
    "render_html",
    "resolve_trace",
    "round_stats",
    "span",
    "span_stats",
    "summarize",
    "timeseries_store",
    "tracing",
    "write_alert_log",
    "write_trace",
]


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()
_ACTIVE: Tracer | None = None


def enable(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable() -> Tracer | None:
    """Stop collecting; returns the tracer that was active (if any)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active() -> Tracer | None:
    """The currently active tracer, or ``None`` when disabled."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Enable tracing for a ``with`` block, restoring the previous
    state (including a previously active tracer) on exit."""
    previous = _ACTIVE
    current = enable(tracer)
    try:
        yield current
    finally:
        enable(previous) if previous is not None else disable()


def span(name: str, /, **tags: object):
    """A nestable span on the active tracer (no-op when disabled).

    ``name`` is positional-only so ``name=...`` stays usable as a tag
    (e.g. ``obs.span("bench.case", name=case.name)``).
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **tags)


def count(name: str, value: float = 1.0) -> None:
    """Add to a counter on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Histogram sample on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.observe(name, value)


def observe_many(name: str, values) -> None:
    """Fold a batch of histogram samples (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.observe_many(name, values)


def timeseries_store(
    window: float = 1.0, capacity: int = 512
) -> TimeseriesStore | None:
    """Get-or-create the windowed store on the active tracer.

    ``None`` when tracing is disabled — producers guard their scrape
    with one ``is None`` test, the same near-zero disabled cost as the
    other helpers.  An existing store is returned as-is (its window
    wins): whoever owns the run — the monitor CLI, a test — creates
    the store first to pick the window width, and every scrape site
    then feeds the same aligned windows.
    """
    tracer = _ACTIVE
    if tracer is None:
        return None
    if tracer.timeseries is None:
        tracer.timeseries = TimeseriesStore(
            window=window, capacity=capacity
        )
    return tracer.timeseries
