"""Cross-run trace diffing with span-level regression detection.

The perf baseline gate (:mod:`repro.perf.baseline`) watches one wall
time per bench case; this differ watches every *span*.  Two traces are
aligned by **qualified span name** — the span's ancestor names joined
with dots, so the ``assign`` stage inside a ``round`` span reads
``round.assign`` — and, within a name, by the enclosing round's
``index`` tag.  For each qualified name the differ compares call
counts, total *self* time (duration minus child durations, clamped at
zero), and for each counter its totals.

Wall time is a host measurement, so regression detection carries two
knobs:

* ``noise_floor`` — seconds of self time below which a span can never
  regress (sub-floor spans are timing noise by definition);
* ``threshold`` — the allowed growth fraction: a span regresses when
  its self time exceeds ``baseline * (1 + threshold)`` *and* the
  absolute growth clears the noise floor.

Counters are deterministic for seeded runs, so counter deltas carry no
noise floor — any drift is real work-done drift and is reported (but
never fails the diff by itself; the exit signal is time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.obs.export import TraceData

DEFAULT_DIFF_THRESHOLD = 0.5
DEFAULT_NOISE_FLOOR = 0.05


@dataclass(frozen=True)
class SpanStat:
    """Aggregated view of one qualified span name in one trace."""

    name: str
    calls: int = 0
    total_time: float = 0.0
    self_time: float = 0.0


@dataclass(frozen=True)
class SpanDelta:
    """One qualified span name, compared across two traces."""

    name: str
    calls_a: int
    calls_b: int
    self_a: float
    self_b: float
    regressed: bool

    @property
    def delta(self) -> float:
        return self.self_b - self.self_a

    @property
    def ratio(self) -> float:
        """Self-time growth factor (inf for a span new in B)."""
        if self.self_a <= 0.0:
            return float("inf") if self.self_b > 0.0 else 1.0
        return self.self_b / self.self_a


@dataclass(frozen=True)
class CounterDelta:
    """One counter, compared across two traces."""

    name: str
    value_a: float
    value_b: float

    @property
    def delta(self) -> float:
        return self.value_b - self.value_a


@dataclass(frozen=True)
class TraceDiff:
    """The full comparison of two traces (A = baseline, B = candidate)."""

    label_a: str
    label_b: str
    threshold: float
    noise_floor: float
    spans: list[SpanDelta] = field(default_factory=list)
    counters: list[CounterDelta] = field(default_factory=list)
    #: (round tag, qualified name) self times for the side-by-side
    #: view; ``None`` marks a (round, name) absent from that trace.
    rounds: list[tuple[object, str, float | None, float | None]] = field(
        default_factory=list
    )

    @property
    def regressions(self) -> list[SpanDelta]:
        return [delta for delta in self.spans if delta.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _self_times(trace: TraceData) -> list[float]:
    """Per-span self time, clamped at zero (clock jitter can make a
    child-duration sum exceed its parent's measured duration)."""
    child_time = [0.0] * len(trace.spans)
    for span in trace.spans:
        if span.parent is not None and not span.open:
            child_time[span.parent] += span.duration
    return [
        0.0 if span.open else max(0.0, span.duration - child_time[span.index])
        for span in trace.spans
    ]


def qualified_names(trace: TraceData) -> list[str]:
    """Each span's dotted ancestor path (``round.assign``), in order."""
    names: list[str] = []
    for span in trace.spans:
        if span.parent is None:
            names.append(span.name)
        else:
            names.append(f"{names[span.parent]}.{span.name}")
    return names


def _round_tags(trace: TraceData) -> list[object]:
    """The enclosing ``round`` span's ``index`` tag per span (or None)."""
    tags: list[object] = []
    for span in trace.spans:
        if span.name == "round":
            tags.append(span.tags.get("index"))
        elif span.parent is not None:
            tags.append(tags[span.parent])
        else:
            tags.append(None)
    return tags


def span_stats(trace: TraceData) -> dict[str, SpanStat]:
    """Per-qualified-name call count, total time, and self time."""
    names = qualified_names(trace)
    self_times = _self_times(trace)
    stats: dict[str, SpanStat] = {}
    for span, name, self_time in zip(trace.spans, names, self_times):
        previous = stats.get(name, SpanStat(name=name))
        stats[name] = SpanStat(
            name=name,
            calls=previous.calls + 1,
            total_time=previous.total_time
            + (0.0 if span.open else span.duration),
            self_time=previous.self_time + self_time,
        )
    return stats


def round_stats(trace: TraceData) -> dict[tuple[object, str], float]:
    """Self time per (round tag, qualified name), rounds only."""
    names = qualified_names(trace)
    self_times = _self_times(trace)
    tags = _round_tags(trace)
    per_round: dict[tuple[object, str], float] = {}
    for name, self_time, tag in zip(names, self_times, tags):
        if tag is None:
            continue
        key = (tag, name)
        per_round[key] = per_round.get(key, 0.0) + self_time
    return per_round


def diff_traces(
    trace_a: TraceData,
    trace_b: TraceData,
    threshold: float = DEFAULT_DIFF_THRESHOLD,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    label_a: str = "A",
    label_b: str = "B",
) -> TraceDiff:
    """Compare candidate ``trace_b`` against baseline ``trace_a``."""
    if threshold < 0:
        raise ValidationError(f"threshold must be >= 0, got {threshold}")
    if noise_floor < 0:
        raise ValidationError(
            f"noise floor must be >= 0, got {noise_floor}"
        )
    stats_a = span_stats(trace_a)
    stats_b = span_stats(trace_b)
    deltas: list[SpanDelta] = []
    for name in sorted(set(stats_a) | set(stats_b)):
        a = stats_a.get(name, SpanStat(name=name))
        b = stats_b.get(name, SpanStat(name=name))
        growth = b.self_time - a.self_time
        regressed = (
            growth > noise_floor
            and b.self_time > a.self_time * (1.0 + threshold)
        )
        deltas.append(
            SpanDelta(
                name=name,
                calls_a=a.calls,
                calls_b=b.calls,
                self_a=a.self_time,
                self_b=b.self_time,
                regressed=regressed,
            )
        )
    deltas.sort(key=lambda d: (not d.regressed, -abs(d.delta), d.name))

    counters_a = trace_a.metrics.get("counters", {})
    counters_b = trace_b.metrics.get("counters", {})
    counters = [
        CounterDelta(
            name=name,
            value_a=float(counters_a.get(name, 0.0)),
            value_b=float(counters_b.get(name, 0.0)),
        )
        for name in sorted(set(counters_a) | set(counters_b))
    ]

    per_round_a = round_stats(trace_a)
    per_round_b = round_stats(trace_b)
    rounds = [
        (
            tag,
            name,
            per_round_a.get((tag, name)),
            per_round_b.get((tag, name)),
        )
        for tag, name in sorted(
            set(per_round_a) | set(per_round_b),
            key=lambda key: (str(key[0]), key[1]),
        )
    ]
    return TraceDiff(
        label_a=label_a,
        label_b=label_b,
        threshold=threshold,
        noise_floor=noise_floor,
        spans=deltas,
        counters=counters,
        rounds=rounds,
    )


def _fmt_ratio(ratio: float) -> str:
    if math.isinf(ratio):
        return "    new"
    return f"{ratio:6.2f}x"


def render_diff(diff: TraceDiff, top: int = 15) -> str:
    """Human rendering: span table, counter drift, verdict."""
    lines = [
        f"trace diff: {diff.label_a} -> {diff.label_b} "
        f"(threshold {diff.threshold:.0%}, noise floor "
        f"{diff.noise_floor * 1000:.0f}ms)",
        "",
        f"  {'span':<34s} {'calls':>11s} {'self A(s)':>9s} "
        f"{'self B(s)':>9s} {'ratio':>7s}",
    ]
    shown = diff.spans[:top]
    for delta in shown:
        calls = f"{delta.calls_a}->{delta.calls_b}"
        marker = "  REGRESSED" if delta.regressed else ""
        lines.append(
            f"  {delta.name:<34s} {calls:>11s} {delta.self_a:9.4f} "
            f"{delta.self_b:9.4f} {_fmt_ratio(delta.ratio)}{marker}"
        )
    hidden = len(diff.spans) - len(shown)
    if hidden > 0:
        lines.append(f"  ... {hidden} more span name(s) not shown")
    drifted = [c for c in diff.counters if c.delta != 0]
    if drifted:
        lines += ["", "counter drift (deterministic work done):"]
        for counter in drifted:
            lines.append(
                f"  {counter.name:<40s} {counter.value_a:>12g} -> "
                f"{counter.value_b:>12g} ({counter.delta:+g})"
            )
    lines.append("")
    if diff.ok:
        lines.append("no span regressions")
    else:
        names = ", ".join(delta.name for delta in diff.regressions)
        lines.append(
            f"{len(diff.regressions)} span regression(s): {names}"
        )
    return "\n".join(lines)
