"""Human-readable replay of an exported trace.

``python -m repro trace <run.jsonl>`` parses a trace (validating it
against the schema as a side effect) and prints three views:

* **top spans** — span names ranked by *self* time (duration minus
  child durations), with call counts and totals, so the most expensive
  stage is the first line regardless of nesting;
* **counters** — every counter's total, plus gauges and histogram
  summaries when present;
* **per-round table** — one row per ``round`` span with its duration
  and the durations of its direct children (assign / simulate /
  aggregate / estimate), the drill-down view the simulation engine's
  instrumentation is shaped for.

Traces that carry a ``repro-obs-timeseries/1`` event get a fourth
view: one line per windowed series with its kind, retained window
count, and a kind-appropriate summary (counter totals and final rate,
gauge last/mean, sample count and p95).
"""

from __future__ import annotations

from repro.obs.export import TraceData
from repro.obs.timeseries import TimeseriesStore


def _by_name(trace: TraceData) -> list[tuple[str, int, float, float]]:
    """(name, calls, total seconds, self seconds), sorted by self time."""
    child_time: dict[int, float] = {}
    for span in trace.spans:
        if span.parent is not None and not span.open:
            child_time[span.parent] = (
                child_time.get(span.parent, 0.0) + span.duration
            )
    grouped: dict[str, tuple[int, float, float]] = {}
    for span in trace.spans:
        if span.open:
            continue
        # Clamped at zero: when child durations sum past the parent's
        # measured duration (clock jitter at microsecond scales), a
        # negative "self time" is measurement noise, not a credit.
        self_time = max(
            0.0, span.duration - child_time.get(span.index, 0.0)
        )
        calls, total, self_total = grouped.get(span.name, (0, 0.0, 0.0))
        grouped[span.name] = (
            calls + 1,
            total + span.duration,
            self_total + self_time,
        )
    return sorted(
        (
            (name, calls, total, self_total)
            for name, (calls, total, self_total) in grouped.items()
        ),
        key=lambda row: (-row[3], row[0]),
    )


def _round_rows(
    trace: TraceData,
) -> list[tuple[object, float | None, list]]:
    """(round tag, duration, [(child name, duration), ...]) per round.

    Open spans (still running, or leaked) are *rendered*, not dropped:
    an open round or stage carries ``None`` for its duration and the
    table marks it ``(open)`` — silence would misread as "this stage
    never ran".
    """
    children: dict[int, list] = {}
    for span in trace.spans:
        if span.parent is not None:
            children.setdefault(span.parent, []).append(span)
    rows = []
    for span in trace.spans:
        if span.name != "round":
            continue
        stages = [
            (child.name, None if child.open else child.duration)
            for child in children.get(span.index, [])
        ]
        rows.append(
            (
                span.tags.get("index", "?"),
                None if span.open else span.duration,
                stages,
            )
        )
    return rows


def _timeseries_lines(trace: TraceData) -> list[str]:
    """The windowed-telemetry view; empty when the trace has none."""
    if trace.timeseries is None:
        return []
    store = TimeseriesStore.from_dict(trace.timeseries)
    names = store.series_names()
    lines = [
        "",
        f"timeseries (window={store.window:g}s, "
        f"{len(names)} series, dropped writes={store.dropped}):",
        f"  {'series':<28s} {'kind':<8s} {'windows':>7s}  summary",
    ]
    for name in names:
        kind = store.kind(name)
        buckets = store.buckets(name)
        if not buckets:
            detail = "(no windows retained)"
        elif kind == "counter":
            sums = store.series_values(name, "sum")
            detail = (
                f"total={sum(sums):g} "
                f"last rate={sums[-1] / store.window:g}/s"
            )
        elif kind == "gauge":
            lasts = store.series_values(name, "last")
            means = store.series_values(name, "mean")
            mean = sum(means) / len(means) if means else float("nan")
            detail = f"last={lasts[-1]:.4g} mean={mean:.4g}"
        else:
            counts = store.series_values(name, "count")
            p95 = store.value(name, buckets[-1], "p95")
            detail = f"count={sum(counts):g} last p95={p95:.4g}"
        lines.append(
            f"  {name:<28s} {kind:<8s} {len(buckets):7d}  {detail}"
        )
    return lines


def summarize(trace: TraceData, top: int = 10) -> str:
    """Render the summary text for one parsed trace."""
    lines = [
        f"trace tag={trace.tag!r} spans={len(trace.spans)}",
        "",
        f"top spans by self time (top {top}):",
        f"  {'name':<28s} {'calls':>6s} {'total(s)':>9s} {'self(s)':>9s}",
    ]
    for name, calls, total, self_total in _by_name(trace)[:top]:
        lines.append(
            f"  {name:<28s} {calls:6d} {total:9.4f} {self_total:9.4f}"
        )
    counters = trace.metrics.get("counters", {})
    gauges = trace.metrics.get("gauges", {})
    histograms = trace.metrics.get("histograms", {})
    if counters:
        lines += ["", "counter totals:"]
        for name in sorted(counters):
            lines.append(f"  {name:<40s} {counters[name]:>12g}")
    if gauges:
        lines += ["", "gauges:"]
        for name in sorted(gauges):
            lines.append(f"  {name:<40s} {gauges[name]:>12g}")
    if histograms:
        lines += ["", "histograms (count / mean / min / max):"]
        for name in sorted(histograms):
            h = histograms[name]
            count = int(h.get("count", 0))
            mean = h.get("total", 0.0) / count if count else float("nan")
            lines.append(
                f"  {name:<32s} {count:6d} {mean:10.4g} "
                f"{h.get('min', float('nan')):10.4g} "
                f"{h.get('max', float('nan')):10.4g}"
            )
    lines += _timeseries_lines(trace)
    rounds = _round_rows(trace)
    if rounds:
        stage_names: list[str] = []
        for _tag, _duration, stages in rounds:
            for name, _time in stages:
                if name not in stage_names:
                    stage_names.append(name)
        header = f"  {'round':>5s} {'total(s)':>9s}" + "".join(
            f" {name[:10]:>10s}" for name in stage_names
        )
        lines += ["", "per-round breakdown:", header]

        def fmt(value: float | None, width: int) -> str:
            if value is None:
                return f" {'(open)':>{width}s}"
            return f" {value:{width}.4f}"

        for tag, duration, stages in rounds:
            by_stage: dict[str, float | None] = {}
            for name, stage_duration in stages:
                if stage_duration is None or by_stage.get(name, 0.0) is None:
                    by_stage[name] = None  # an open stage taints the cell
                else:
                    by_stage[name] = (
                        by_stage.get(name, 0.0) + stage_duration
                    )
            row = f"  {str(tag):>5s}" + fmt(duration, 9)
            for name in stage_names:
                if name in by_stage:
                    row += fmt(by_stage[name], 10)
                else:
                    row += f" {'-':>10s}"
            lines.append(row)
    return "\n".join(lines)
